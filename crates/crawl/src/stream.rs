//! Streaming page extraction: the full [`PageExtract`] straight from
//! tokenizer events, with no DOM materialisation.
//!
//! [`extract_streaming`] produces output identical to
//! `extract(&parse(html))` — the same visible text and histogram (it runs
//! on `langcrux-html`'s shared streaming walk), the same accessibility
//! elements in the same document order, the same `<html lang>` — without
//! allocating a token buffer or a node arena. This is the crawl path's
//! per-visit hot loop: selection and Kizuki consume the carried histogram
//! and the extracted elements, so the tree the parser would build is pure
//! overhead. The DOM-based [`extract`](crate::extract::extract) remains
//! the reference oracle; equivalence is pinned by unit tests on
//! adversarial HTML, a property test, and a corpus sweep.
//!
//! What the single pass tracks beyond the visible-text skip-stack:
//!
//! * **Capture buffers** for elements whose accessibility text is their
//!   inner text (`<title>`, button/link fallbacks, `<summary>`,
//!   `<object>`, `<label>`): text runs append to every open capture, so
//!   nested captures see exactly the text the DOM's `text_content` would.
//! * **Deferred label association**: `<label for=…>` texts are recorded
//!   in document order and joined to `input`/`select` slots only at the
//!   end of the pass — a label may follow the control it names.
//! * **SVG context**: a `<title>` inside any `<svg>` never becomes the
//!   document title; the first *direct* `<title>` child of an
//!   `<svg role="img">` without `aria-label` becomes its name.

use crate::extract::{ExtractedElement, PageExtract, TextSource};
use crate::regions::RegionTracker;
use langcrux_html::stream::{stream_extract, StreamSink};
use langcrux_html::tokenizer::Attribute;
use langcrux_lang::a11y::ElementKind;
use std::collections::HashMap;

/// Extract all accessibility elements plus page-level facts directly from
/// the HTML text, without building a DOM. Identical output to
/// `extract(&parse(html))`.
///
/// ```
/// use langcrux_crawl::{extract, extract_streaming};
/// use langcrux_html::parse;
///
/// let html = r#"<html lang="bn"><head><title>খবর</title></head>
///     <body><p>বাংলা সংবাদ</p><img src="a.jpg"></body></html>"#;
/// let page = extract_streaming(html);
/// assert_eq!(page.declared_lang.as_deref(), Some("bn"));
/// assert_eq!(page, extract(&parse(html)));
/// ```
pub fn extract_streaming(html: &str) -> PageExtract {
    let (visible_text, visible_hist, sink) = stream_extract(html, ExtractSink::new());
    let mut out = sink.finish();
    out.visible_text = visible_text;
    out.visible_hist = visible_hist;
    out
}

/// What happens to a capture buffer when its element closes.
enum CaptureKind {
    /// The document-title slot (`elements[0]`).
    DocTitle,
    /// `visible_fallback` of the element at this index (button/link).
    Fallback(usize),
    /// Inner-text fallback for `summary`/`object`: fills `text` when the
    /// buffer is non-blank and no attribute source was found.
    TextIfMissing(usize),
    /// First direct `<title>` child of an `<svg role="img">`.
    SvgTitle(usize),
    /// A `<label for=…>` body; `(start_seq, target_id)` — ordered by
    /// element start so the first label in document order wins.
    LabelFor(usize, String),
}

struct Capture {
    buf: String,
    kind: CaptureKind,
}

/// Per-open-element record on the sink's own stack (kept in lockstep with
/// the walk's balanced start/end events).
struct Open {
    /// Captures opened by this element (they sit at the tail of the
    /// capture stack and complete when it closes).
    captures_opened: usize,
    /// `Some(element index)` for an `<svg role="img">` without
    /// `aria-label`, until its first direct `<title>` child claims it.
    svg_slot: Option<usize>,
    is_svg: bool,
}

struct ExtractSink {
    elements: Vec<ExtractedElement>,
    declared_lang: Option<String>,
    html_seen: bool,
    /// True until the first `<title>` outside any `<svg>` claims the
    /// document-title slot.
    doc_title_pending: bool,
    /// Open `<svg>` ancestors (their `<title>`s are never the document
    /// title).
    svg_depth: usize,
    stack: Vec<Open>,
    captures: Vec<Capture>,
    /// Completed `(start_seq, for_target, text)` label bodies.
    label_entries: Vec<(usize, String, String)>,
    /// `(element index, control id)` pairs awaiting label association.
    fixups: Vec<(usize, String)>,
    /// Element start counter (document order of starts).
    seq: usize,
    /// Per-subtree language regions, fed from the same event stream.
    regions: RegionTracker,
}

fn attr_of<'a>(attrs: &'a [Attribute], name: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|a| a.name == name)
        .map(|a| a.value.as_str())
}

/// The streaming twin of the DOM path's `attr_element`: first present
/// attribute source wins.
fn attr_element(
    attrs: &[Attribute],
    kind: ElementKind,
    sources: &[(&str, TextSource)],
) -> ExtractedElement {
    for (attr, source) in sources {
        if let Some(v) = attr_of(attrs, attr) {
            return ExtractedElement {
                kind,
                text: Some(v.to_string()),
                source: Some(*source),
                visible_fallback: None,
            };
        }
    }
    ExtractedElement {
        kind,
        text: None,
        source: None,
        visible_fallback: None,
    }
}

impl ExtractSink {
    fn new() -> Self {
        ExtractSink {
            // The document-title slot is always elements[0]; it is filled
            // in place when the first eligible <title> closes.
            elements: vec![ExtractedElement {
                kind: ElementKind::DocumentTitle,
                text: None,
                source: None,
                visible_fallback: None,
            }],
            declared_lang: None,
            html_seen: false,
            doc_title_pending: true,
            svg_depth: 0,
            stack: Vec::new(),
            captures: Vec::new(),
            label_entries: Vec::new(),
            fixups: Vec::new(),
            seq: 0,
            regions: RegionTracker::default(),
        }
    }

    fn open_capture(&mut self, open: &mut Open, kind: CaptureKind) {
        self.captures.push(Capture {
            buf: String::new(),
            kind,
        });
        open.captures_opened += 1;
    }

    fn complete_capture(&mut self, capture: Capture) {
        let Capture { buf, kind } = capture;
        match kind {
            CaptureKind::DocTitle => {
                self.elements[0] = ExtractedElement {
                    kind: ElementKind::DocumentTitle,
                    text: Some(buf),
                    source: Some(TextSource::TextContent),
                    visible_fallback: None,
                };
            }
            CaptureKind::Fallback(idx) => {
                self.elements[idx].visible_fallback = Some(buf);
            }
            CaptureKind::TextIfMissing(idx) => {
                let el = &mut self.elements[idx];
                if el.text.is_none() && !buf.trim().is_empty() {
                    el.text = Some(buf);
                    el.source = Some(TextSource::TextContent);
                }
            }
            CaptureKind::SvgTitle(idx) => {
                let el = &mut self.elements[idx];
                if el.text.is_none() {
                    el.text = Some(buf);
                    el.source = Some(TextSource::TitleChild);
                }
            }
            CaptureKind::LabelFor(seq, target) => {
                self.label_entries.push((seq, target, buf));
            }
        }
    }

    /// Resolve deferred label associations and hand back the element list.
    fn finish(mut self) -> PageExtract {
        // First label in document (start) order wins per target — captures
        // complete in close order, which differs for nested labels.
        self.label_entries.sort_by_key(|(seq, _, _)| *seq);
        let mut label_for: HashMap<String, String> = HashMap::new();
        for (_, target, text) in self.label_entries {
            label_for.entry(target).or_insert(text);
        }
        for (idx, id) in self.fixups {
            if let Some(label) = label_for.get(&id) {
                let el = &mut self.elements[idx];
                el.text = Some(label.clone());
                el.source = Some(TextSource::AssociatedLabel);
            }
        }
        PageExtract {
            visible_text: String::new(),
            visible_hist: Default::default(),
            declared_lang: self.declared_lang,
            elements: self.elements,
            regions: self.regions.finish(),
        }
    }
}

impl StreamSink for ExtractSink {
    fn element_start(&mut self, name: &str, attrs: &[Attribute], visible: bool) {
        self.regions.element_start(name, attrs, visible);
        self.seq += 1;
        let seq = self.seq;
        let mut open = Open {
            captures_opened: 0,
            svg_slot: None,
            is_svg: name == "svg",
        };
        match name {
            "html" if !self.html_seen => {
                self.html_seen = true;
                self.declared_lang = attr_of(attrs, "lang").map(|s| s.to_string());
            }
            "title" => {
                // Parent checks run against the stack top — the element
                // this title nests under.
                if let Some(idx) = self.stack.last_mut().and_then(|p| p.svg_slot.take()) {
                    self.open_capture(&mut open, CaptureKind::SvgTitle(idx));
                } else if self.svg_depth == 0 && self.doc_title_pending {
                    self.doc_title_pending = false;
                    self.open_capture(&mut open, CaptureKind::DocTitle);
                }
            }
            "img" => self.elements.push(attr_element(
                attrs,
                ElementKind::ImageAlt,
                &[("alt", TextSource::Alt)],
            )),
            "iframe" | "frame" => self.elements.push(attr_element(
                attrs,
                ElementKind::FrameTitle,
                &[("title", TextSource::TitleAttr)],
            )),
            "button" => {
                self.elements.push(attr_element(
                    attrs,
                    ElementKind::ButtonName,
                    &[
                        ("aria-label", TextSource::AriaLabel),
                        ("title", TextSource::TitleAttr),
                    ],
                ));
                let idx = self.elements.len() - 1;
                self.open_capture(&mut open, CaptureKind::Fallback(idx));
            }
            "a" if attr_of(attrs, "href").is_some() => {
                self.elements.push(attr_element(
                    attrs,
                    ElementKind::LinkName,
                    &[
                        ("aria-label", TextSource::AriaLabel),
                        ("title", TextSource::TitleAttr),
                    ],
                ));
                let idx = self.elements.len() - 1;
                self.open_capture(&mut open, CaptureKind::Fallback(idx));
            }
            "summary" => {
                let el = attr_element(
                    attrs,
                    ElementKind::SummaryName,
                    &[("aria-label", TextSource::AriaLabel)],
                );
                let missing = el.text.is_none();
                self.elements.push(el);
                if missing {
                    let idx = self.elements.len() - 1;
                    self.open_capture(&mut open, CaptureKind::TextIfMissing(idx));
                }
            }
            "svg" if attr_of(attrs, "role") == Some("img") => {
                let el = attr_element(
                    attrs,
                    ElementKind::SvgImgAlt,
                    &[("aria-label", TextSource::AriaLabel)],
                );
                let missing = el.text.is_none();
                self.elements.push(el);
                if missing {
                    open.svg_slot = Some(self.elements.len() - 1);
                }
            }
            "object" => {
                let el = attr_element(
                    attrs,
                    ElementKind::ObjectAlt,
                    &[("aria-label", TextSource::AriaLabel)],
                );
                let missing = el.text.is_none();
                self.elements.push(el);
                if missing {
                    let idx = self.elements.len() - 1;
                    self.open_capture(&mut open, CaptureKind::TextIfMissing(idx));
                }
            }
            "select" => {
                let el = attr_element(
                    attrs,
                    ElementKind::SelectName,
                    &[("aria-label", TextSource::AriaLabel)],
                );
                let missing = el.text.is_none();
                self.elements.push(el);
                if missing {
                    if let Some(id) = attr_of(attrs, "id") {
                        self.fixups.push((self.elements.len() - 1, id.to_string()));
                    }
                }
            }
            "input" => {
                let input_type = attr_of(attrs, "type")
                    .unwrap_or("text")
                    .to_ascii_lowercase();
                match input_type.as_str() {
                    "image" => self.elements.push(attr_element(
                        attrs,
                        ElementKind::InputImageAlt,
                        &[("alt", TextSource::Alt)],
                    )),
                    "submit" | "button" | "reset" => self.elements.push(attr_element(
                        attrs,
                        ElementKind::InputButtonName,
                        &[
                            ("value", TextSource::Value),
                            ("aria-label", TextSource::AriaLabel),
                        ],
                    )),
                    "hidden" => {}
                    _ => {
                        // Text-like controls: the `label` audit target.
                        let el = attr_element(
                            attrs,
                            ElementKind::Label,
                            &[("aria-label", TextSource::AriaLabel)],
                        );
                        let missing = el.text.is_none();
                        self.elements.push(el);
                        if missing {
                            if let Some(id) = attr_of(attrs, "id") {
                                self.fixups.push((self.elements.len() - 1, id.to_string()));
                            }
                        }
                    }
                }
            }
            "label" => {
                if let Some(target) = attr_of(attrs, "for") {
                    self.open_capture(&mut open, CaptureKind::LabelFor(seq, target.to_string()));
                }
            }
            _ => {}
        }
        if open.is_svg {
            self.svg_depth += 1;
        }
        self.stack.push(open);
    }

    fn element_end(&mut self, name: &str) {
        self.regions.element_end(name);
        let open = self.stack.pop().expect("balanced element events");
        if open.is_svg {
            self.svg_depth -= 1;
        }
        for _ in 0..open.captures_opened {
            let capture = self.captures.pop().expect("capture stack in sync");
            self.complete_capture(capture);
        }
    }

    fn text(&mut self, text: &str, visible: bool) {
        self.regions.text(text, visible);
        // Every open capture owns this text: the DOM's text_content is
        // unconditional over descendants, including invisible subtrees.
        for capture in &mut self.captures {
            capture.buf.push_str(text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use langcrux_html::parse;

    fn assert_matches_dom(html: &str) {
        let dom = extract(&parse(html));
        let streamed = extract_streaming(html);
        assert_eq!(streamed, dom, "PageExtract diverged on {html:?}");
    }

    #[test]
    fn matches_dom_on_representative_pages() {
        for html in [
            "",
            "<html lang=\"th\"><head><title>หน้าแรก</title></head><body><p>สวัสดี</p></body></html>",
            r#"<img src=a><img src=b alt=""><img src=c alt="a cat">"#,
            r#"<button aria-label="закрыть">X</button><button>Open</button>"#,
            r#"<a href="/x">go</a><a name="anchor">not a link</a>"#,
            r#"<label for="name">Ваше имя</label><input type="text" id="name">
               <input type="text" id="unlabelled"><input type="text" aria-label="phone">"#,
            r#"<input type="image" src="b.png" alt="buy"><input type="submit" value="전송">
               <input type="hidden" value="x"><input>"#,
            r#"<details><summary>รายละเอียด</summary></details>
               <details><summary></summary></details>
               <object data="f.pdf">annual report</object>"#,
            r#"<head><title>Page</title></head>
               <svg role="img"><title>home icon</title></svg><svg><circle/></svg>"#,
            r#"<select id="s1"></select><label for="s1">choose</label>"#,
        ] {
            assert_matches_dom(html);
        }
    }

    #[test]
    fn matches_dom_on_structural_edge_cases() {
        for html in [
            // Label appears after the control it names.
            r#"<input id="late"><label for="late">привет</label>"#,
            // Nested labels for the same target: document order wins.
            r#"<label for="x">a<label for="x">b</label></label><input id="x">"#,
            // Button whose text_content crosses broken nesting.
            "<button>a<div>b</button>c",
            // Unclosed button swallows the page tail, like the DOM tree.
            "<button>start<p>rest of page",
            // Link inside a button: both capture their inner text.
            r#"<button><a href="/x">inner</a>outer</button>"#,
            // svg title after a sibling element is still a direct child.
            r#"<svg role="img"><circle/><title>late title</title></svg>"#,
            // Nested svg: title is a child of <g>, not of the svg itself.
            r#"<svg role="img"><g><title>not direct</title></g></svg>"#,
            // A second <html> never re-declares lang.
            r#"<html><body></body></html><html lang="de"></html>"#,
            // Title inside svg is not the document title; the next one is.
            r#"<svg><title>icon</title></svg><title>real</title>"#,
            // Self-closing title and button.
            "<title/><button/>",
            // Hidden subtrees still contribute accessibility elements.
            r#"<div hidden><img src=x><button>b</button></div>"#,
            // Duplicate ids: HashMap association, first label in document
            // order wins for both controls.
            r#"<label for="d">one</label><label for="d">two</label>
               <input id="d"><select id="d"></select>"#,
        ] {
            assert_matches_dom(html);
        }
    }

    #[test]
    fn matches_dom_on_adversarial_markup() {
        for html in [
            // Mis-nested end tag inside raw text: '</scrip' does not close.
            "<script>a</scrip>b</script><p>after</p>",
            "<title>t</titl>still title</title><body>x</body>",
            // Entities split by a tag: neither path decodes across runs.
            "a&am<b>p;</b>",
            "<p>&#24<span>53;</span></p>",
            // Entity at the very end of a capture.
            "<button>x &amp</button>",
            // Hidden-subtree attributes in every hiding form.
            r#"<div hidden=hidden><p>a</p></div><div aria-hidden="TRUE">b</div>
               <div style="display : none">c</div>ok"#,
            // Unterminated raw text swallows to EOF.
            "<script>everything<p>else",
            "<title>unterminated title<p>tail",
            // End tags with no open element.
            "</div></p></body>text",
            // Attributes on end tags are ignored.
            "<div>a</div class=x>b",
        ] {
            assert_matches_dom(html);
        }
    }

    #[test]
    fn streaming_is_the_crawl_default() {
        // The exported names used by browser/serve resolve to this module.
        let page = extract_streaming("<html lang=bn><body><p>টেক্সট</p></body></html>");
        assert_eq!(page.declared_lang.as_deref(), Some("bn"));
        assert_eq!(page.visible_text, "টেক্সট");
        assert_eq!(
            page.visible_hist,
            langcrux_lang::script::ScriptHistogram::of(&page.visible_text)
        );
    }
}
