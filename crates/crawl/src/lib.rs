//! # langcrux-crawl
//!
//! The crawling layer of the reproduction: a Puppeteer-equivalent page
//! visitor (fetch → parse → extract) and a worker-pool crawler.
//!
//! The paper "develop\[s\] a web crawler using Puppeteer, which simulates web
//! browsing conditions in a Chromium environment … capturing network-level
//! metadata, page structure, and accessibility indicators" (§2, Data
//! Collection). This crate produces the same artefacts from the simulated
//! internet:
//!
//! * [`mod@extract`] — visible text, `<html lang>`, and the twelve
//!   accessibility element kinds with their missing/empty/text states
//!   (the extraction contract of DESIGN.md); the DOM-walking reference
//!   implementation.
//! * [`stream`] — the same extraction streamed from tokenizer events with
//!   no DOM materialisation ([`extract_streaming`]); the crawl path's
//!   per-visit hot loop, byte-identical to the DOM path by test.
//! * [`regions`] — per-subtree language regions of the visible text
//!   (chrome landmarks, explicit `lang` subtrees), derived identically on
//!   both extraction paths; the carrier for translation-gap detection.
//! * [`browser`] — single-page visits under a production retry
//!   discipline: capped exponential backoff with deterministic jitter,
//!   per-visit fetch deadlines, and restricted-content detection.
//! * [`breaker`] — a per-host circuit breaker (closed → open → half-open)
//!   timed on the virtual clock.
//! * [`clock`] — the deterministic [`VirtualClock`] all waiting is
//!   counted against; nothing in the crawl layer ever sleeps.
//! * [`pool`] — a shared work-stealing worker pool with deterministic,
//!   scheduling-independent results; also the executor behind the
//!   `langcrux-core` pipeline's `(country, chunk)` sharding.

pub mod breaker;
pub mod browser;
pub mod clock;
pub mod extract;
pub mod pool;
pub mod regions;
pub mod stream;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use browser::{Browser, BrowserConfig, Visit, VisitError, VisitTrace};
pub use clock::VirtualClock;
pub use extract::{
    char_len, char_word_counts, extract, word_count, ExtractedElement, PageExtract, TextSource,
};
pub use pool::{
    crawl_hosts, default_threads, run_work_stealing, run_work_stealing_with, CrawlConfig,
    CrawlOutcome, CrawlStats,
};
pub use regions::LangRegion;
pub use stream::extract_streaming;
