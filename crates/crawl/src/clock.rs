//! A deterministic virtual clock for the crawl layer.
//!
//! The simulated internet reports latency but never sleeps; the crawl
//! layer still needs a notion of elapsed time for backoff waits, circuit
//! breaker cooldowns and fetch deadlines. [`VirtualClock`] is that notion:
//! a logical millisecond counter advanced by injected latency and waits,
//! so "time" is a pure function of the work performed — a crawl spends
//! identical virtual time at every worker count and on every host,
//! and tests over timing behaviour are exact instead of flaky.
//!
//! Each pool worker owns one clock (it lives inside its [`Browser`]);
//! per-visit *decisions* (deadlines, breaker cooldowns) use a visit-local
//! elapsed counter so they never depend on what the worker crawled
//! before — that is what keeps verdicts pure in `(seed, host, vantage)`
//! and the dataset byte-identical across worker counts.
//!
//! [`Browser`]: crate::Browser

/// Monotone logical clock counting virtual milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current logical time in virtual milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advance by `ms` virtual milliseconds (latency paid, waits served).
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(120);
        clock.advance(0);
        clock.advance(333);
        assert_eq!(clock.now_ms(), 453);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut clock = VirtualClock::new();
        clock.advance(u64::MAX - 1);
        clock.advance(500);
        assert_eq!(clock.now_ms(), u64::MAX);
    }
}
