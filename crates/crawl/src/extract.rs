//! Accessibility-element extraction (DOM path — the streaming path's
//! reference oracle).
//!
//! Implements the extraction contract of DESIGN.md §3: for each of the
//! twelve element kinds, which attribute(s) provide its *accessibility
//! text*, in priority order. "Missing" means no source is present at all;
//! "Empty" means a source is present but whitespace-only — the distinction
//! Table 2 reports. For buttons and links the visible inner text is
//! captured separately (screen readers fall back to it, which §3 of the
//! paper identifies as the likely cause of high missing rates).
//!
//! The crawl hot path uses [`crate::stream::extract_streaming`], which
//! produces an identical [`PageExtract`] directly from tokenizer events;
//! this DOM-walking implementation stays as the test oracle and for
//! callers that already hold a parsed [`Document`].

use crate::regions::{LangRegion, RegionTracker};
use langcrux_html::dom::{Document, NodeId, NodeKind};
use langcrux_html::visible::visible_text_histogram;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::script::ScriptHistogram;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which source provided the accessibility text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextSource {
    AriaLabel,
    Alt,
    TitleAttr,
    Value,
    AssociatedLabel,
    TitleChild,
    TextContent,
}

/// One extracted accessibility element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedElement {
    pub kind: ElementKind,
    /// `None` = missing; `Some(s)` with whitespace-only `s` = empty.
    pub text: Option<String>,
    /// Source of `text` when present.
    pub source: Option<TextSource>,
    /// Visible inner text for elements with a fallback (buttons, links).
    pub visible_fallback: Option<String>,
}

impl ExtractedElement {
    /// Missing: no accessibility text source at all.
    pub fn is_missing(&self) -> bool {
        self.text.is_none()
    }

    /// Empty: a source exists but holds only whitespace.
    pub fn is_empty_text(&self) -> bool {
        self.text.as_deref().is_some_and(|t| t.trim().is_empty())
    }

    /// Present and non-whitespace.
    pub fn content(&self) -> Option<&str> {
        self.text
            .as_deref()
            .map(str::trim)
            .filter(|t| !t.is_empty())
    }
}

/// Everything the crawler extracts from one page.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PageExtract {
    /// Whitespace-normalised visible text of the page.
    pub visible_text: String,
    /// Script histogram of `visible_text`, computed during the same DOM
    /// walk that produced it (always equal to
    /// `ScriptHistogram::of(&visible_text)`). Selection and analysis
    /// consume this instead of re-scanning the text.
    pub visible_hist: ScriptHistogram,
    /// The `<html lang=…>` declaration, if any.
    pub declared_lang: Option<String>,
    /// All accessibility elements in document order.
    pub elements: Vec<ExtractedElement>,
    /// Per-subtree language regions of the visible text (document order),
    /// the input to translation-gap detection. See [`crate::regions`].
    pub regions: Vec<LangRegion>,
}

impl PageExtract {
    /// Elements of one kind.
    pub fn of_kind(&self, kind: ElementKind) -> impl Iterator<Item = &ExtractedElement> {
        self.elements.iter().filter(move |e| e.kind == kind)
    }

    /// All non-empty accessibility texts (the input to filtering/langid).
    pub fn texts(&self) -> impl Iterator<Item = (&ExtractedElement, &str)> {
        self.elements
            .iter()
            .filter_map(|e| e.content().map(|t| (e, t)))
    }
}

/// Number of whitespace-delimited tokens (the paper's Table 2 word count;
/// scriptio-continua labels count as one token, which matches how the
/// paper's CJK medians behave).
pub fn word_count(text: &str) -> usize {
    text.split_whitespace().count()
}

/// Character count (Unicode scalar values), the Table 2 text length.
pub fn char_len(text: &str) -> usize {
    text.chars().count()
}

/// Character count and word count in a single pass over the text —
/// equivalent to `(char_len(text), word_count(text))` without walking the
/// string twice. This is the per-element hot path of `process_site`.
pub fn char_word_counts(text: &str) -> (usize, usize) {
    let mut chars = 0usize;
    let mut words = 0usize;
    let mut in_word = false;
    for c in text.chars() {
        chars += 1;
        if c.is_whitespace() {
            in_word = false;
        } else if !in_word {
            words += 1;
            in_word = true;
        }
    }
    (chars, words)
}

/// Extract all accessibility elements plus page-level facts from a DOM.
pub fn extract(doc: &Document) -> PageExtract {
    let (visible_text, visible_hist) = visible_text_histogram(doc);
    let mut tracker = RegionTracker::default();
    langcrux_html::walk_events(doc, &mut tracker);
    let mut out = PageExtract {
        visible_text,
        visible_hist,
        regions: tracker.finish(),
        ..PageExtract::default()
    };

    // <html lang>.
    if let Some(html) = doc.elements_named("html").next() {
        out.declared_lang = doc.attr(html, "lang").map(|s| s.to_string());
    }

    // label[for] → text map for form-control association.
    let mut label_for: HashMap<String, String> = HashMap::new();
    for label in doc.elements_named("label") {
        if let Some(target) = doc.attr(label, "for") {
            label_for
                .entry(target.to_string())
                .or_insert_with(|| doc.text_content(label));
        }
    }

    // document-title: exactly one logical slot per page.
    let title = doc.elements_named("title").find(|&t| {
        // Ignore <title> children of <svg>.
        doc.ancestors(t).all(|a| doc.tag_name(a) != Some("svg"))
    });
    out.elements.push(match title {
        Some(t) => ExtractedElement {
            kind: ElementKind::DocumentTitle,
            text: Some(doc.text_content(t)),
            source: Some(TextSource::TextContent),
            visible_fallback: None,
        },
        None => ExtractedElement {
            kind: ElementKind::DocumentTitle,
            text: None,
            source: None,
            visible_fallback: None,
        },
    });

    for id in doc.elements() {
        let Some(tag) = doc.tag_name(id) else {
            continue;
        };
        match tag {
            "img" => out.elements.push(attr_element(
                doc,
                id,
                ElementKind::ImageAlt,
                &[("alt", TextSource::Alt)],
                None,
            )),
            "iframe" | "frame" => out.elements.push(attr_element(
                doc,
                id,
                ElementKind::FrameTitle,
                &[("title", TextSource::TitleAttr)],
                None,
            )),
            "button" => {
                let fallback = Some(doc.text_content(id));
                out.elements.push(attr_element(
                    doc,
                    id,
                    ElementKind::ButtonName,
                    &[
                        ("aria-label", TextSource::AriaLabel),
                        ("title", TextSource::TitleAttr),
                    ],
                    fallback,
                ));
            }
            "a" if doc.attr(id, "href").is_some() => {
                let fallback = Some(doc.text_content(id));
                out.elements.push(attr_element(
                    doc,
                    id,
                    ElementKind::LinkName,
                    &[
                        ("aria-label", TextSource::AriaLabel),
                        ("title", TextSource::TitleAttr),
                    ],
                    fallback,
                ));
            }
            "summary" => {
                let mut el = attr_element(
                    doc,
                    id,
                    ElementKind::SummaryName,
                    &[("aria-label", TextSource::AriaLabel)],
                    None,
                );
                if el.text.is_none() {
                    let inner = doc.text_content(id);
                    if !inner.trim().is_empty() {
                        el.text = Some(inner);
                        el.source = Some(TextSource::TextContent);
                    }
                }
                out.elements.push(el);
            }
            "svg" if doc.attr(id, "role") == Some("img") => {
                let mut el = attr_element(
                    doc,
                    id,
                    ElementKind::SvgImgAlt,
                    &[("aria-label", TextSource::AriaLabel)],
                    None,
                );
                if el.text.is_none() {
                    if let Some(t) = doc
                        .node(id)
                        .children
                        .iter()
                        .copied()
                        .find(|&c| doc.tag_name(c) == Some("title"))
                    {
                        el.text = Some(doc.text_content(t));
                        el.source = Some(TextSource::TitleChild);
                    }
                }
                out.elements.push(el);
            }
            "object" => {
                let mut el = attr_element(
                    doc,
                    id,
                    ElementKind::ObjectAlt,
                    &[("aria-label", TextSource::AriaLabel)],
                    None,
                );
                if el.text.is_none() {
                    let inner = doc.text_content(id);
                    if !inner.trim().is_empty() {
                        el.text = Some(inner);
                        el.source = Some(TextSource::TextContent);
                    }
                }
                out.elements.push(el);
            }
            "select" => {
                let mut el = attr_element(
                    doc,
                    id,
                    ElementKind::SelectName,
                    &[("aria-label", TextSource::AriaLabel)],
                    None,
                );
                if el.text.is_none() {
                    if let Some(label) = doc.attr(id, "id").and_then(|i| label_for.get(i)) {
                        el.text = Some(label.clone());
                        el.source = Some(TextSource::AssociatedLabel);
                    }
                }
                out.elements.push(el);
            }
            "input" => {
                let input_type = doc.attr(id, "type").unwrap_or("text").to_ascii_lowercase();
                match input_type.as_str() {
                    "image" => out.elements.push(attr_element(
                        doc,
                        id,
                        ElementKind::InputImageAlt,
                        &[("alt", TextSource::Alt)],
                        None,
                    )),
                    "submit" | "button" | "reset" => out.elements.push(attr_element(
                        doc,
                        id,
                        ElementKind::InputButtonName,
                        &[
                            ("value", TextSource::Value),
                            ("aria-label", TextSource::AriaLabel),
                        ],
                        None,
                    )),
                    "hidden" => {}
                    _ => {
                        // Text-like controls: the `label` audit target.
                        let mut el = attr_element(
                            doc,
                            id,
                            ElementKind::Label,
                            &[("aria-label", TextSource::AriaLabel)],
                            None,
                        );
                        if el.text.is_none() {
                            if let Some(label) = doc.attr(id, "id").and_then(|i| label_for.get(i)) {
                                el.text = Some(label.clone());
                                el.source = Some(TextSource::AssociatedLabel);
                            }
                        }
                        out.elements.push(el);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn attr_element(
    doc: &Document,
    id: NodeId,
    kind: ElementKind,
    sources: &[(&str, TextSource)],
    visible_fallback: Option<String>,
) -> ExtractedElement {
    for (attr, source) in sources {
        if let Some(v) = doc.attr(id, attr) {
            return ExtractedElement {
                kind,
                text: Some(v.to_string()),
                source: Some(*source),
                visible_fallback,
            };
        }
    }
    // Sanity: `id` really is an element (attr lookups above need it too).
    debug_assert!(matches!(doc.node(id).kind, NodeKind::Element { .. }));
    ExtractedElement {
        kind,
        text: None,
        source: None,
        visible_fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_html::parse;

    fn extract_str(html: &str) -> PageExtract {
        extract(&parse(html))
    }

    #[test]
    fn image_alt_states() {
        let ex = extract_str(r#"<img src=a><img src=b alt=""><img src=c alt="a cat">"#);
        let imgs: Vec<_> = ex.of_kind(ElementKind::ImageAlt).collect();
        assert_eq!(imgs.len(), 3);
        assert!(imgs[0].is_missing());
        assert!(imgs[1].is_empty_text() && !imgs[1].is_missing());
        assert_eq!(imgs[2].content(), Some("a cat"));
        assert_eq!(imgs[2].source, Some(TextSource::Alt));
    }

    #[test]
    fn button_uses_aria_label_with_fallback() {
        let ex = extract_str(r#"<button aria-label="закрыть">X</button><button>Open</button>"#);
        let buttons: Vec<_> = ex.of_kind(ElementKind::ButtonName).collect();
        assert_eq!(buttons[0].content(), Some("закрыть"));
        assert_eq!(buttons[0].visible_fallback.as_deref(), Some("X"));
        assert!(buttons[1].is_missing());
        assert_eq!(buttons[1].visible_fallback.as_deref(), Some("Open"));
    }

    #[test]
    fn link_requires_href() {
        let ex = extract_str(r#"<a href="/x">go</a><a name="anchor">not a link</a>"#);
        assert_eq!(ex.of_kind(ElementKind::LinkName).count(), 1);
    }

    #[test]
    fn document_title_extraction() {
        let ex = extract_str("<head><title>Новости дня</title></head>");
        let t: Vec<_> = ex.of_kind(ElementKind::DocumentTitle).collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].content(), Some("Новости дня"));

        let ex = extract_str("<head></head><body></body>");
        assert!(ex
            .of_kind(ElementKind::DocumentTitle)
            .next()
            .unwrap()
            .is_missing());
    }

    #[test]
    fn svg_title_child_not_document_title() {
        let ex = extract_str(
            r#"<head><title>Page</title></head>
               <svg role="img"><title>home icon</title></svg>
               <svg><circle/></svg>"#,
        );
        assert_eq!(
            ex.of_kind(ElementKind::DocumentTitle)
                .next()
                .unwrap()
                .content(),
            Some("Page")
        );
        let svgs: Vec<_> = ex.of_kind(ElementKind::SvgImgAlt).collect();
        // Only the role="img" svg counts.
        assert_eq!(svgs.len(), 1);
        assert_eq!(svgs[0].content(), Some("home icon"));
        assert_eq!(svgs[0].source, Some(TextSource::TitleChild));
    }

    #[test]
    fn label_association() {
        let ex = extract_str(
            r#"<label for="name">Ваше имя</label><input type="text" id="name">
               <input type="text" id="unlabelled">
               <input type="text" aria-label="phone">"#,
        );
        let labels: Vec<_> = ex.of_kind(ElementKind::Label).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[0].content(), Some("Ваше имя"));
        assert_eq!(labels[0].source, Some(TextSource::AssociatedLabel));
        assert!(labels[1].is_missing());
        assert_eq!(labels[2].content(), Some("phone"));
    }

    #[test]
    fn input_kinds_split_by_type() {
        let ex = extract_str(
            r#"<input type="image" src="b.png" alt="buy">
               <input type="submit" value="전송">
               <input type="hidden" value="x">
               <input>"#,
        );
        assert_eq!(ex.of_kind(ElementKind::InputImageAlt).count(), 1);
        assert_eq!(
            ex.of_kind(ElementKind::InputButtonName)
                .next()
                .unwrap()
                .content(),
            Some("전송")
        );
        // hidden input is skipped; bare input is a Label slot.
        assert_eq!(ex.of_kind(ElementKind::Label).count(), 1);
    }

    #[test]
    fn summary_and_object_fallback_text() {
        let ex = extract_str(
            r#"<details><summary>รายละเอียด</summary></details>
               <details><summary></summary></details>
               <object data="f.pdf">annual report</object>"#,
        );
        let summaries: Vec<_> = ex.of_kind(ElementKind::SummaryName).collect();
        assert_eq!(summaries[0].content(), Some("รายละเอียด"));
        assert!(summaries[1].is_missing());
        assert_eq!(
            ex.of_kind(ElementKind::ObjectAlt).next().unwrap().content(),
            Some("annual report")
        );
    }

    #[test]
    fn declared_lang_and_visible_text() {
        let ex = extract_str(r#"<html lang="th"><body><p>สวัสดี</p></body></html>"#);
        assert_eq!(ex.declared_lang.as_deref(), Some("th"));
        assert_eq!(ex.visible_text, "สวัสดี");
    }

    #[test]
    fn carried_histogram_matches_visible_text() {
        let ex = extract_str(
            r#"<html lang="bn"><body><p>বাংলা সংবাদ and english</p>
               <div hidden>hidden русский</div><p>১২৩ 456</p></body></html>"#,
        );
        assert_eq!(ex.visible_hist, ScriptHistogram::of(&ex.visible_text));
        assert!(ex.visible_hist.total > 0);
    }

    #[test]
    fn fused_char_word_counts_match_separate_passes() {
        for text in [
            "",
            "   ",
            "three word label",
            "ภาพข่าว",
            " leading and trailing ",
            "tab\tand\nnewline",
            "ক খ গ",
        ] {
            assert_eq!(
                char_word_counts(text),
                (char_len(text), word_count(text)),
                "{text:?}"
            );
        }
    }

    #[test]
    fn texts_iterator_skips_missing_and_empty() {
        let ex = extract_str(r#"<img alt="one"><img><img alt="">"#);
        let texts: Vec<&str> = ex.texts().map(|(_, t)| t).collect();
        assert_eq!(texts, vec!["one"]);
    }

    #[test]
    fn word_and_char_counts() {
        assert_eq!(word_count("three word label"), 3);
        assert_eq!(word_count("ภาพข่าว"), 1);
        assert_eq!(word_count("  "), 0);
        assert_eq!(char_len("ক খ"), 3);
        assert_eq!(char_len(""), 0);
    }
}
