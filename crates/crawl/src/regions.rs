//! Per-subtree language regions: the extraction-side carrier for
//! translation-gap detection.
//!
//! The paper's core axis is declared vs. actual language, measured over
//! the whole page. Partially localised sites — translated body text
//! wrapped in untranslated navigation chrome, or subtrees whose `lang`
//! attribute disagrees with their content — are invisible to a page-level
//! histogram. This module attributes every visible text character to the
//! *innermost language region* it renders in, so `langcrux-audit` can
//! compare script evidence per region instead of per page.
//!
//! A region opens at:
//!
//! * the document root (`<html>`, role `"page"`), carrying the declared
//!   page language;
//! * a chrome landmark (`nav`/`header`/`footer`/`main`/`aside`),
//!   inheriting the effective language context;
//! * any element carrying a `lang` attribute — even one matching the
//!   inherited language (role = tag name, `explicit = true`): a subtree
//!   tagged `lang=bn` whose content turns out to be English is exactly
//!   the mismatch the audit layer wants isolated.
//!
//! Text attributes to the innermost open region only — a `nav` region's
//! histogram never double-counts into the page region. Hidden subtrees
//! contribute nothing (the `visible` flags of the shared walk).
//!
//! `RegionTracker` implements [`StreamSink`] and is fed from *both*
//! extraction paths — the tokenizer walk via `ExtractSink` and the DOM
//! oracle via [`langcrux_html::walk_events`] — so the derived regions are
//! identical by construction wherever the two walks deliver the same
//! events (pinned in `langcrux-html`).

use langcrux_html::stream::StreamSink;
use langcrux_html::tokenizer::Attribute;
use langcrux_lang::script::ScriptHistogram;
use serde::{Deserialize, Serialize};

/// One visible-text region with a constant language context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LangRegion {
    /// Structural role: `"page"` for the document root, the landmark name
    /// for chrome regions, or the tag name for explicit `lang` subtrees.
    pub role: String,
    /// Effective declared language as a lowercased primary subtag
    /// (`"bn"`, `"en"`), explicit or inherited; `None` when no `lang`
    /// context is in scope.
    pub lang: Option<String>,
    /// Whether `lang` comes from a `lang` attribute on this region's own
    /// root element rather than inherited context.
    pub explicit: bool,
    /// Script histogram of the visible text attributed to this region.
    pub hist: ScriptHistogram,
}

/// Chrome landmarks that open a region of their own.
fn is_landmark(name: &str) -> bool {
    matches!(name, "nav" | "header" | "footer" | "main" | "aside")
}

/// Normalise a `lang` attribute to its lowercased primary subtag.
fn primary_subtag(value: &str) -> Option<String> {
    let primary = value.trim().split(['-', '_']).next().unwrap_or("");
    (!primary.is_empty()).then(|| primary.to_ascii_lowercase())
}

/// Per-open-element bookkeeping (one frame per `element_start`).
struct Frame {
    opened_region: bool,
    pushed_lang: bool,
}

/// Event-driven region builder; see the module docs.
#[derive(Default)]
pub(crate) struct RegionTracker {
    regions: Vec<LangRegion>,
    /// Indices into `regions` for currently open regions, innermost last.
    active: Vec<usize>,
    frames: Vec<Frame>,
    /// Effective explicit-lang stack (primary subtags, innermost last).
    langs: Vec<String>,
}

impl RegionTracker {
    /// Close out the walk and return regions that saw any visible text,
    /// in document order of opening.
    pub(crate) fn finish(self) -> Vec<LangRegion> {
        self.regions
            .into_iter()
            .filter(|r| r.hist.total > 0)
            .collect()
    }

    fn open_region(&mut self, role: &str, lang: Option<String>, explicit: bool) {
        self.regions.push(LangRegion {
            role: role.to_string(),
            lang,
            explicit,
            hist: ScriptHistogram::default(),
        });
        self.active.push(self.regions.len() - 1);
    }
}

impl StreamSink for RegionTracker {
    fn element_start(&mut self, name: &str, attrs: &[Attribute], visible: bool) {
        let mut frame = Frame {
            opened_region: false,
            pushed_lang: false,
        };
        if visible {
            let lang_attr = attrs
                .iter()
                .find(|a| a.name == "lang")
                .and_then(|a| primary_subtag(&a.value));
            let inherited = self.langs.last().cloned();
            let root = name == "html" && self.regions.is_empty();
            if root || lang_attr.is_some() || is_landmark(name) {
                let role = if root { "page" } else { name };
                let lang = lang_attr.clone().or(inherited);
                self.open_region(role, lang, lang_attr.is_some());
                frame.opened_region = true;
            }
            if let Some(lang) = lang_attr {
                self.langs.push(lang);
                frame.pushed_lang = true;
            }
        }
        self.frames.push(frame);
    }

    fn element_end(&mut self, _name: &str) {
        let frame = self.frames.pop().expect("balanced element events");
        if frame.opened_region {
            self.active.pop();
        }
        if frame.pushed_lang {
            self.langs.pop();
        }
    }

    fn text(&mut self, text: &str, visible: bool) {
        if !visible {
            return;
        }
        let idx = match self.active.last() {
            Some(&idx) => idx,
            None => {
                // Visible text before (or outside) any region-opening
                // element: attribute it to an implicit page region.
                self.open_region("page", self.langs.last().cloned(), false);
                // The implicit region has no closing element; leave it
                // active for the rest of the document.
                *self.active.last().expect("region just opened")
            }
        };
        let hist = &mut self.regions[idx].hist;
        for c in text.chars() {
            hist.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::stream::extract_streaming;
    use langcrux_html::parse;
    use langcrux_lang::script::Script;

    fn regions_of(html: &str) -> Vec<LangRegion> {
        let streamed = extract_streaming(html);
        let dom = extract(&parse(html));
        assert_eq!(streamed.regions, dom.regions, "region parity on {html:?}");
        streamed.regions
    }

    #[test]
    fn page_region_carries_declared_lang() {
        let regions = regions_of("<html lang=bn-IN><body><p>বাংলা</p></body></html>");
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].role, "page");
        assert_eq!(regions[0].lang.as_deref(), Some("bn"));
        assert!(regions[0].explicit);
        assert!(regions[0].hist.count(Script::Bengali) > 0);
    }

    #[test]
    fn landmarks_open_their_own_regions() {
        let regions = regions_of(
            "<html lang=bn><body><nav>Home About</nav>\
             <main><p>বাংলা সংবাদ</p></main><footer>Contact</footer></body></html>",
        );
        let roles: Vec<&str> = regions.iter().map(|r| r.role.as_str()).collect();
        assert_eq!(roles, vec!["nav", "main", "footer"]);
        // Landmark regions inherit the page language, not explicitly.
        assert!(regions.iter().all(|r| r.lang.as_deref() == Some("bn")));
        assert!(regions.iter().all(|r| !r.explicit));
        assert!(regions[0].hist.count(Script::Latin) > 0);
        assert!(regions[1].hist.count(Script::Bengali) > 0);
    }

    #[test]
    fn lang_attrs_open_explicit_regions() {
        let regions = regions_of(
            "<html lang=bn><body><p>বাংলা</p>\
             <section lang=en>English callout</section>\
             <section lang=bn>ভুল নয়</section></body></html>",
        );
        // page + one explicit region per lang-tagged section — including
        // the one matching the page language, so mistagged content stays
        // separable from its surroundings.
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[1].role, "section");
        assert_eq!(regions[1].lang.as_deref(), Some("en"));
        assert!(regions[1].explicit);
        assert_eq!(
            regions[1].hist.count(Script::Latin),
            "Englishcallout".chars().count()
        );
        assert_eq!(regions[2].lang.as_deref(), Some("bn"));
        assert!(regions[2].explicit);
        assert!(regions[2].hist.count(Script::Bengali) > 0);
    }

    #[test]
    fn text_attributes_to_innermost_region_only() {
        let regions = regions_of("<html lang=th><body>ก่อน<nav>เมนู</nav>หลัง</body></html>");
        assert_eq!(regions.len(), 2);
        let page = &regions[0];
        let nav = &regions[1];
        assert_eq!(page.hist.count(Script::Thai), 8); // ก่อน + หลัง
        assert_eq!(nav.hist.count(Script::Thai), 4);
    }

    #[test]
    fn hidden_subtrees_contribute_nothing() {
        let regions =
            regions_of("<html lang=bn><body><nav hidden>secret nav</nav><p>বাংলা</p></body></html>");
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].role, "page");
    }

    #[test]
    fn bare_fragment_gets_an_implicit_page_region() {
        let regions = regions_of("plain text only");
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].role, "page");
        assert_eq!(regions[0].lang, None);
        assert!(!regions[0].explicit);
    }

    #[test]
    fn whitespace_only_regions_are_dropped() {
        let regions = regions_of("<html lang=bn><body><nav>  </nav><p>বাংলা</p></body></html>");
        // The nav saw only whitespace (Common chars) but did see text, so
        // it is retained; an empty nav would not be.
        assert_eq!(regions.len(), 2);
        let empty = regions_of("<html lang=bn><body><nav></nav><p>বাংলা</p></body></html>");
        assert_eq!(empty.len(), 1);
    }
}
