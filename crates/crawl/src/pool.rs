//! Parallel execution: a shared work-stealing worker pool.
//!
//! The crawl workload is CPU-bound simulation (render + parse + extract),
//! so — per the workspace's networking guides — it runs on OS threads
//! rather than an async runtime. The executor here is deliberately
//! general: [`run_work_stealing`] shards any indexed task list across
//! `threads` workers, each owning a deque of task indices; an idle worker
//! steals from the back of the longest remaining queue. Results are
//! returned in task order regardless of scheduling, which is what lets the
//! pipeline in `langcrux-core` keep its deterministic study-order merge
//! while sharding (country, candidate-chunk) units across every core.

use crate::browser::{Browser, BrowserConfig, Visit, VisitError};
use langcrux_net::{Internet, Url, Vantage};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of workers to use when the caller does not care: all cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run `f` over every task on a work-stealing pool of `threads` workers.
///
/// Tasks are distributed as contiguous blocks (one per worker) for
/// locality; a worker that drains its own deque steals single tasks from
/// the back of the longest surviving queue. The output vector is in task
/// order — `result[i] == f(i, &tasks[i])` — so callers observe the same
/// outcome at every thread count (determinism guarantee).
pub fn run_work_stealing<T, R, F>(threads: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_work_stealing_with(threads, tasks, |_| (), |(), i, t| f(i, t))
}

/// [`run_work_stealing`] with **per-worker state**: `init(worker)` runs
/// once on each worker thread and the resulting value is passed mutably to
/// every task that worker executes (stolen tasks included).
///
/// This is how the crawl threads reusable resources through the pool —
/// each worker holds one [`Browser`] (with its recycled fetch buffer)
/// across every visit it performs, instead of rebuilding per task. The
/// determinism contract is unchanged *provided* task results do not depend
/// on the state's history, which holds for browsers (a visit depends only
/// on `(corpus seed, host, vantage)`).
pub fn run_work_stealing_with<T, R, S, I, F>(threads: usize, tasks: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(tasks.len().max(1));
    if threads == 1 {
        let mut state = init(0);
        return tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // Depth-fence each task so trace spans nest identically
                // whether the task runs inline here (under the caller's
                // open orchestration span) or on a pool worker.
                let _fence = langcrux_obs::trace::task_fence();
                f(&mut state, i, t)
            })
            .collect();
    }

    // One deque per worker, seeded with a contiguous block of task indices.
    let queues: Vec<Mutex<VecDeque<usize>>> = {
        let per_worker = tasks.len().div_ceil(threads);
        (0..threads)
            .map(|w| {
                let start = w * per_worker;
                let end = ((w + 1) * per_worker).min(tasks.len());
                Mutex::new((start..end.max(start)).collect())
            })
            .collect()
    };
    let queues = &queues;
    let f = &f;
    let init = &init;

    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = init(w);
                    let mut results: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own work first (front), then steal from the back
                        // of the longest other queue. The own-queue guard is
                        // a statement-scoped binding so it is RELEASED
                        // before stealing — holding it while locking other
                        // queues deadlocks two mutually-stealing workers.
                        let own = queues[w].lock().expect("queue lock").pop_front();
                        let next = match own {
                            Some(i) => Some(i),
                            None => steal(queues, w),
                        };
                        match next {
                            Some(i) => {
                                let _fence = langcrux_obs::trace::task_fence();
                                results.push((i, f(&mut state, i, &tasks[i])));
                            }
                            None => break,
                        }
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    indexed.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), tasks.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Steal one task from the back of the fullest queue other than `own`.
///
/// Returns `None` only after observing every other queue empty in a full
/// scan; a victim drained between the length scan and the pop triggers a
/// rescan rather than retiring the worker while work remains elsewhere.
fn steal(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    loop {
        let mut best: Option<(usize, usize)> = None; // (queue, remaining)
        for (q, queue) in queues.iter().enumerate() {
            if q == own {
                continue;
            }
            let len = queue.lock().expect("queue lock").len();
            if len > 0 && best.is_none_or(|(_, b)| len > b) {
                best = Some((q, len));
            }
        }
        let (victim, _) = best?;
        if let Some(task) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(task);
        }
        // Raced with the victim's owner; rescan.
    }
}

/// Pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    pub threads: usize,
    pub browser: BrowserConfig,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            threads: default_threads().min(16),
            browser: BrowserConfig::default(),
        }
    }
}

/// Aggregate crawl telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    pub attempted: u64,
    pub succeeded: u64,
    pub failed: u64,
    pub restricted: u64,
    pub retried_visits: u64,
    pub total_bytes: u64,
    pub total_latency_ms: u64,
}

/// Result of crawling a host list.
pub struct CrawlOutcome {
    /// `(host, result)` sorted by host for determinism.
    pub visits: Vec<(String, Result<Visit, VisitError>)>,
    pub stats: CrawlStats,
}

impl CrawlOutcome {
    /// Iterate only the successful visits.
    pub fn successes(&self) -> impl Iterator<Item = (&str, &Visit)> {
        self.visits
            .iter()
            .filter_map(|(h, r)| r.as_ref().ok().map(|v| (h.as_str(), v)))
    }
}

/// Crawl `hosts` from `vantage` using the work-stealing pool.
pub fn crawl_hosts(
    internet: &Internet,
    vantage: Vantage,
    hosts: &[String],
    config: CrawlConfig,
) -> CrawlOutcome {
    // One browser per worker: the body buffer (and any downstream render
    // arena it triggers) is recycled across every host the worker visits.
    let results = run_work_stealing_with(
        config.threads,
        hosts,
        |_| Browser::new(internet, config.browser),
        |browser, _, host: &String| browser.visit(&Url::from_host(host), vantage),
    );

    let mut visits: Vec<(String, Result<Visit, VisitError>)> =
        hosts.iter().cloned().zip(results).collect();
    visits.sort_by(|a, b| a.0.cmp(&b.0));

    let mut stats = CrawlStats {
        attempted: hosts.len() as u64,
        ..CrawlStats::default()
    };
    for (_, result) in &visits {
        match result {
            Ok(v) => {
                stats.succeeded += 1;
                stats.total_bytes += v.html_bytes as u64;
                stats.total_latency_ms += u64::from(v.latency_ms);
                if v.attempts > 1 {
                    stats.retried_visits += 1;
                }
            }
            Err(VisitError::Restricted) => {
                stats.restricted += 1;
                stats.failed += 1;
            }
            Err(_) => stats.failed += 1,
        }
    }
    CrawlOutcome { visits, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::Country;
    use langcrux_net::{ContentServer, ContentVariant, FaultPlan};

    fn server(tag: String) -> Box<dyn ContentServer> {
        Box::new(move |_v: ContentVariant, _p: &str| {
            format!("<html><head><title>{tag}</title></head><body><p>{tag}</p></body></html>")
        })
    }

    fn build_net(hosts: usize, plan: FaultPlan) -> (Internet, Vec<String>) {
        let mut net = Internet::new(21, plan);
        let mut names = Vec::new();
        for i in 0..hosts {
            let host = format!("site{i}.jp");
            net.register_simple(&host, Country::Japan, server(host.clone()));
            names.push(host);
        }
        (net, names)
    }

    #[test]
    fn work_stealing_preserves_task_order() {
        let tasks: Vec<u64> = (0..500).collect();
        for threads in [1, 2, 7] {
            let out = run_work_stealing(threads, &tasks, |i, t| {
                assert_eq!(i as u64, *t);
                t * 3
            });
            assert_eq!(out, tasks.iter().map(|t| t * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn work_stealing_handles_skewed_task_costs() {
        // A few heavy tasks at the front force idle workers to steal.
        let tasks: Vec<u64> = (0..64).collect();
        let out = run_work_stealing(8, &tasks, |_, t| {
            if *t < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            *t
        });
        assert_eq!(out, tasks);
    }

    #[test]
    fn work_stealing_survives_heavy_contention() {
        // Many near-zero-cost tasks across many rounds maximise the
        // window where several workers drain their deques and steal from
        // each other simultaneously — the regression shape for the
        // hold-own-lock-while-stealing deadlock.
        for round in 0..50 {
            let tasks: Vec<u64> = (0..200).collect();
            let out = run_work_stealing(8, &tasks, |_, t| *t);
            assert_eq!(out.len(), 200, "round {round}");
        }
    }

    #[test]
    fn per_worker_state_is_initialised_once_and_reused() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let tasks: Vec<u64> = (0..300).collect();
        for threads in [1, 2, 6] {
            inits.store(0, Ordering::SeqCst);
            let out = run_work_stealing_with(
                threads,
                &tasks,
                |w| {
                    inits.fetch_add(1, Ordering::SeqCst);
                    // Per-worker scratch: tasks served per state.
                    (w, 0usize)
                },
                |state, i, t| {
                    state.1 += 1;
                    assert_eq!(i as u64, *t);
                    *t * 2
                },
            );
            assert_eq!(out, tasks.iter().map(|t| t * 2).collect::<Vec<_>>());
            assert!(
                inits.load(Ordering::SeqCst) <= threads,
                "init ran more than once per worker"
            );
        }
    }

    #[test]
    fn work_stealing_empty_and_tiny() {
        let none: Vec<u32> = Vec::new();
        assert!(run_work_stealing(4, &none, |_, t| *t).is_empty());
        assert_eq!(run_work_stealing(8, &[9u32], |_, t| *t), vec![9]);
    }

    #[test]
    fn crawl_collects_all_hosts() {
        let (net, hosts) = build_net(40, FaultPlan::RELIABLE);
        let outcome = crawl_hosts(
            &net,
            Vantage::Residential(Country::Japan),
            &hosts,
            CrawlConfig {
                threads: 4,
                browser: BrowserConfig::default(),
            },
        );
        assert_eq!(outcome.visits.len(), 40);
        assert_eq!(outcome.stats.succeeded, 40);
        assert_eq!(outcome.stats.failed, 0);
        assert!(outcome.stats.total_bytes > 0);
    }

    #[test]
    fn parallel_equals_serial() {
        let (net, hosts) = build_net(60, FaultPlan::HOSTILE);
        let run = |threads: usize| {
            let outcome = crawl_hosts(
                &net,
                Vantage::Cloud,
                &hosts,
                CrawlConfig {
                    threads,
                    browser: BrowserConfig::default(),
                },
            );
            outcome
                .visits
                .iter()
                .map(|(h, r)| (h.clone(), r.is_ok()))
                .collect::<Vec<_>>()
        };
        // Determinism: outcome (per host) must not depend on thread count.
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn stats_count_failures() {
        let (net, hosts) = build_net(80, FaultPlan::HOSTILE);
        let outcome = crawl_hosts(&net, Vantage::Cloud, &hosts, CrawlConfig::default());
        assert_eq!(outcome.stats.attempted, 80);
        assert_eq!(
            outcome.stats.succeeded + outcome.stats.failed,
            outcome.visits.len() as u64
        );
        // A hostile plan with retries should still recover most hosts.
        assert!(outcome.stats.succeeded > 60);
    }

    #[test]
    fn empty_host_list() {
        let (net, _) = build_net(1, FaultPlan::RELIABLE);
        let outcome = crawl_hosts(&net, Vantage::Cloud, &[], CrawlConfig::default());
        assert!(outcome.visits.is_empty());
        assert_eq!(outcome.stats.attempted, 0);
    }

    #[test]
    fn successes_iterator() {
        let (net, hosts) = build_net(10, FaultPlan::RELIABLE);
        let outcome = crawl_hosts(&net, Vantage::Cloud, &hosts, CrawlConfig::default());
        assert_eq!(outcome.successes().count(), 10);
        for (host, visit) in outcome.successes() {
            assert!(visit.extract.visible_text.contains(host));
        }
    }
}
