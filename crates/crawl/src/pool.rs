//! Parallel crawling.
//!
//! The crawl workload is CPU-bound simulation (render + parse + extract),
//! so — per the workspace's networking guides — it runs on a worker pool of
//! OS threads rather than an async runtime: a crossbeam channel feeds
//! hostnames to scoped worker threads, each owning a [`Browser`], and a
//! second channel collects results. Results are re-sorted by host so the
//! outcome is independent of scheduling order (determinism guarantee).

use crate::browser::{Browser, BrowserConfig, Visit, VisitError};
use crossbeam::channel;
use langcrux_net::{Internet, Url, Vantage};
use serde::{Deserialize, Serialize};

/// Pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    pub threads: usize,
    pub browser: BrowserConfig,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            browser: BrowserConfig::default(),
        }
    }
}

/// Aggregate crawl telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    pub attempted: u64,
    pub succeeded: u64,
    pub failed: u64,
    pub restricted: u64,
    pub retried_visits: u64,
    pub total_bytes: u64,
    pub total_latency_ms: u64,
}

/// Result of crawling a host list.
pub struct CrawlOutcome {
    /// `(host, result)` sorted by host for determinism.
    pub visits: Vec<(String, Result<Visit, VisitError>)>,
    pub stats: CrawlStats,
}

impl CrawlOutcome {
    /// Iterate only the successful visits.
    pub fn successes(&self) -> impl Iterator<Item = (&str, &Visit)> {
        self.visits
            .iter()
            .filter_map(|(h, r)| r.as_ref().ok().map(|v| (h.as_str(), v)))
    }
}

/// Crawl `hosts` from `vantage` using a worker pool.
pub fn crawl_hosts(
    internet: &Internet,
    vantage: Vantage,
    hosts: &[String],
    config: CrawlConfig,
) -> CrawlOutcome {
    let threads = config.threads.max(1).min(hosts.len().max(1));
    let (work_tx, work_rx) = channel::unbounded::<String>();
    let (result_tx, result_rx) = channel::unbounded::<(String, Result<Visit, VisitError>)>();

    for host in hosts {
        work_tx.send(host.clone()).expect("queue open");
    }
    drop(work_tx);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let browser = Browser::new(internet, config.browser);
            scope.spawn(move |_| {
                while let Ok(host) = work_rx.recv() {
                    let result = browser.visit(&Url::from_host(&host), vantage);
                    if result_tx.send((host, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx);
    })
    .expect("crawl worker panicked");

    let mut visits: Vec<(String, Result<Visit, VisitError>)> = result_rx.iter().collect();
    visits.sort_by(|a, b| a.0.cmp(&b.0));

    let mut stats = CrawlStats {
        attempted: hosts.len() as u64,
        ..CrawlStats::default()
    };
    for (_, result) in &visits {
        match result {
            Ok(v) => {
                stats.succeeded += 1;
                stats.total_bytes += v.html_bytes as u64;
                stats.total_latency_ms += u64::from(v.latency_ms);
                if v.attempts > 1 {
                    stats.retried_visits += 1;
                }
            }
            Err(VisitError::Restricted) => {
                stats.restricted += 1;
                stats.failed += 1;
            }
            Err(_) => stats.failed += 1,
        }
    }
    CrawlOutcome { visits, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::Country;
    use langcrux_net::{ContentServer, ContentVariant, FaultPlan};

    fn server(tag: String) -> Box<dyn ContentServer> {
        Box::new(move |_v: ContentVariant, _p: &str| {
            format!("<html><head><title>{tag}</title></head><body><p>{tag}</p></body></html>")
        })
    }

    fn build_net(hosts: usize, plan: FaultPlan) -> (Internet, Vec<String>) {
        let mut net = Internet::new(21, plan);
        let mut names = Vec::new();
        for i in 0..hosts {
            let host = format!("site{i}.jp");
            net.register_simple(&host, Country::Japan, server(host.clone()));
            names.push(host);
        }
        (net, names)
    }

    #[test]
    fn crawl_collects_all_hosts() {
        let (net, hosts) = build_net(40, FaultPlan::RELIABLE);
        let outcome = crawl_hosts(
            &net,
            Vantage::Residential(Country::Japan),
            &hosts,
            CrawlConfig {
                threads: 4,
                browser: BrowserConfig::default(),
            },
        );
        assert_eq!(outcome.visits.len(), 40);
        assert_eq!(outcome.stats.succeeded, 40);
        assert_eq!(outcome.stats.failed, 0);
        assert!(outcome.stats.total_bytes > 0);
    }

    #[test]
    fn parallel_equals_serial() {
        let (net, hosts) = build_net(60, FaultPlan::HOSTILE);
        let run = |threads: usize| {
            let outcome = crawl_hosts(
                &net,
                Vantage::Cloud,
                &hosts,
                CrawlConfig {
                    threads,
                    browser: BrowserConfig::default(),
                },
            );
            outcome
                .visits
                .iter()
                .map(|(h, r)| (h.clone(), r.is_ok()))
                .collect::<Vec<_>>()
        };
        // Determinism: outcome (per host) must not depend on thread count.
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn stats_count_failures() {
        let (net, hosts) = build_net(80, FaultPlan::HOSTILE);
        let outcome = crawl_hosts(&net, Vantage::Cloud, &hosts, CrawlConfig::default());
        assert_eq!(outcome.stats.attempted, 80);
        assert_eq!(
            outcome.stats.succeeded + outcome.stats.failed,
            outcome.visits.len() as u64
        );
        // A hostile plan with retries should still recover most hosts.
        assert!(outcome.stats.succeeded > 60);
    }

    #[test]
    fn empty_host_list() {
        let (net, _) = build_net(1, FaultPlan::RELIABLE);
        let outcome = crawl_hosts(&net, Vantage::Cloud, &[], CrawlConfig::default());
        assert!(outcome.visits.is_empty());
        assert_eq!(outcome.stats.attempted, 0);
    }

    #[test]
    fn successes_iterator() {
        let (net, hosts) = build_net(10, FaultPlan::RELIABLE);
        let outcome = crawl_hosts(&net, Vantage::Cloud, &hosts, CrawlConfig::default());
        assert_eq!(outcome.successes().count(), 10);
        for (host, visit) in outcome.successes() {
            assert!(visit.extract.visible_text.contains(host));
        }
    }
}
