//! Browser simulation: fetch → streaming tokenize→extract, under a
//! production retry discipline.
//!
//! [`Browser::visit`] performs one page load the way the paper's Puppeteer
//! harness does: issue the request from the configured vantage, retry
//! transient failures, and stream the returned HTML through the
//! tokenize→extract path ([`crate::stream`]) to produce the visible
//! text plus accessibility elements — no DOM is built per visit.
//! Restricted responses (bot walls, VPN detection) are surfaced as
//! [`VisitError::Restricted`] so the selection layer can apply the
//! paper's replacement rule.
//!
//! ## Retry discipline
//!
//! Retries are no longer immediate: each failed attempt waits out a
//! capped exponential backoff with deterministic jitter, every attempt is
//! charged its injected round-trip latency against a per-visit fetch
//! deadline, and a per-host circuit breaker ([`crate::breaker`]) opens
//! after consecutive failures, half-open-probes after a cooldown, and
//! re-closes on success. All waiting is *virtual* — counted on the
//! worker's [`VirtualClock`], never slept — and every decision is a pure
//! function of `(seed, host, attempt)`, so a crawl loses exactly the same
//! requests at every worker count (the sequential-replay determinism
//! contract of the pipeline).

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::clock::VirtualClock;
use crate::extract::PageExtract;
use crate::stream::extract_streaming;
use langcrux_lang::rng;
use langcrux_net::{ContentVariant, FetchError, Internet, Request, Url, Vantage};
use langcrux_obs as obs;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Initial capacity of a browser's reusable body buffer (a typical
/// generated page; the buffer grows past this once and stays).
const BODY_BUF_CAPACITY: usize = 16 * 1024;

/// Derivation stream tag for backoff jitter (disjoint from the
/// `RollPurpose` streams the fault dice consume).
const BACKOFF_STREAM: u64 = 0xB0FF;

/// A successful page visit.
#[derive(Debug, Clone)]
pub struct Visit {
    pub url: Url,
    pub variant: ContentVariant,
    pub extract: PageExtract,
    /// Total latency across attempts, milliseconds.
    pub latency_ms: u32,
    /// 1 + number of retries consumed.
    pub attempts: u32,
    /// Size of the fetched body.
    pub html_bytes: usize,
}

/// Why a visit failed for good.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitError {
    /// Network failure that survived all retries.
    Fetch(FetchError),
    /// The site served a restricted/bot-wall page (e.g. VPN detected).
    Restricted,
    /// The per-visit virtual-time budget ran out before a good response.
    DeadlineExceeded,
    /// The per-host circuit breaker was open past the visit deadline.
    CircuitOpen,
}

impl std::fmt::Display for VisitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VisitError::Fetch(e) => write!(f, "fetch failed: {e}"),
            VisitError::Restricted => f.write_str("restricted content served"),
            VisitError::DeadlineExceeded => f.write_str("fetch deadline exceeded"),
            VisitError::CircuitOpen => f.write_str("circuit breaker open"),
        }
    }
}

impl std::error::Error for VisitError {}

/// Crawl-level browser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrowserConfig {
    /// Retries after the first attempt for retryable errors.
    pub max_retries: u32,
    /// Backoff before the first retry (virtual ms); doubles per retry.
    pub backoff_base_ms: u64,
    /// Cap on a single backoff wait (virtual ms).
    pub backoff_cap_ms: u64,
    /// Upper bound on the deterministic jitter added to each backoff.
    pub backoff_jitter_ms: u64,
    /// Per-visit budget of virtual milliseconds (attempt latencies plus
    /// all waits). Generous by default: the deadline exists to bound
    /// pathological retry chains, not to race healthy fetches.
    pub fetch_deadline_ms: u64,
    /// Consecutive failures that open the per-host circuit breaker.
    pub breaker_threshold: u32,
    /// Virtual ms an open breaker cools down before a half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            max_retries: 2,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            backoff_jitter_ms: 50,
            fetch_deadline_ms: 30_000,
            breaker_threshold: 3,
            breaker_cooldown_ms: 1_000,
        }
    }
}

/// What one visit did, regardless of outcome — the raw material of the
/// pipeline's `CrawlLedger`. All waits are virtual milliseconds.
///
/// Serializable so distributed workers can ship each probe's trace back
/// to the coordinator, which folds them into the ledger exactly as the
/// single-process replay would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisitTrace {
    /// Fetch attempts issued (1 + retries).
    pub attempts: u32,
    /// Virtual ms spent in exponential-backoff waits.
    pub backoff_wait_ms: u64,
    /// Virtual ms spent waiting out breaker cooldowns.
    pub breaker_wait_ms: u64,
    /// Total virtual ms the visit consumed (latency + all waits).
    pub virtual_ms: u64,
    /// The served body arrived truncated.
    pub truncated: bool,
    /// The served body arrived with a garbled span.
    pub garbled: bool,
    /// Breaker trips during this visit (incl. re-opens).
    pub breaker_opened: u32,
    /// Half-open probes admitted.
    pub breaker_probes: u32,
    /// Successful probes that re-closed the breaker.
    pub breaker_reclosed: u32,
}

/// A headless-browser stand-in bound to the simulated internet.
///
/// The browser owns a reusable body buffer: every visit fetches through
/// [`Internet::fetch_into`] into the same allocation (content servers with
/// a `serve_into` override render straight into it), so a long-lived
/// browser — one per crawl worker — performs zero per-visit body
/// allocations. [`visit`](Browser::visit) therefore takes `&mut self`.
///
/// It also owns the worker's [`VirtualClock`], advanced by every visit's
/// virtual cost (telemetry only — per-visit decisions use a visit-local
/// counter, which is what keeps verdicts order-independent).
pub struct Browser<'net> {
    internet: &'net Internet,
    config: BrowserConfig,
    /// Body buffer recycled across visits.
    body: String,
    /// This worker's logical clock (sum of all visits' virtual time).
    clock: VirtualClock,
}

impl<'net> Browser<'net> {
    pub fn new(internet: &'net Internet, config: BrowserConfig) -> Self {
        Browser {
            internet,
            config,
            body: String::with_capacity(BODY_BUF_CAPACITY),
            clock: VirtualClock::new(),
        }
    }

    /// Virtual milliseconds this browser has spent across all visits.
    pub fn clock_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Load a page from `vantage`, with backoff/breaker/deadline
    /// handling on transient failures.
    pub fn visit(&mut self, url: &Url, vantage: Vantage) -> Result<Visit, VisitError> {
        self.visit_traced(url, vantage).0
    }

    /// [`visit`](Browser::visit), also returning the visit's
    /// [`VisitTrace`] for ledger accounting.
    pub fn visit_traced(
        &mut self,
        url: &Url,
        vantage: Vantage,
    ) -> (Result<Visit, VisitError>, VisitTrace) {
        let mut trace = VisitTrace::default();
        // Span key: host hash, same derivation as the fault dice. All
        // virtual_ms fields attached below are pure in (seed, host,
        // vantage), keeping the trace-structure determinism contract.
        let span_key = obs::trace::key_str(&url.host);
        let mut fetch_span = obs::trace::span("crawl.fetch", span_key);
        // Visit-scoped breaker = per-host breaker: the pipeline visits
        // each host once, and visit-local state keeps decisions pure in
        // (seed, host, attempt) — see crate::breaker.
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            threshold: self.config.breaker_threshold.max(1),
            cooldown_ms: self.config.breaker_cooldown_ms,
        });
        let mut request = Request::new(url.clone(), vantage);
        let mut latency_total = 0u32;
        // Virtual ms consumed by this visit alone.
        let mut elapsed = 0u64;

        let result = loop {
            match breaker.admit(elapsed) {
                Admission::Allow | Admission::Probe => {}
                Admission::Wait { until_ms } => {
                    if until_ms >= self.config.fetch_deadline_ms {
                        // Waiting out the cooldown would blow the deadline:
                        // the host is effectively down for this visit.
                        break Err(VisitError::CircuitOpen);
                    }
                    trace.breaker_wait_ms += until_ms - elapsed;
                    obs::trace::virtual_wait("crawl.breaker_wait", span_key, until_ms - elapsed);
                    elapsed = until_ms;
                    continue; // re-admit: the breaker half-opens now
                }
            }
            trace.attempts += 1;
            // Every attempt burns its round-trip budget, success or not
            // (a timed-out request cost real time on a real crawl).
            let cost = u64::from(self.internet.attempt_cost_ms(&url.host, request.attempt));
            let outcome = self.internet.fetch_into(&request, &mut self.body);
            elapsed += cost;
            match outcome {
                Ok(meta) => {
                    breaker.record_success();
                    latency_total = latency_total.saturating_add(meta.latency_ms);
                    trace.truncated |= meta.truncated;
                    trace.garbled |= meta.garbled;
                    if meta.variant == ContentVariant::Restricted {
                        break Err(VisitError::Restricted);
                    }
                    // Streaming tokenize→extract: no DOM is materialised
                    // on the crawl path (identical output to the DOM walk
                    // — see crate::stream).
                    let page = {
                        let _extract_span = obs::trace::span("crawl.extract", span_key);
                        extract_streaming(&self.body)
                    };
                    break Ok(Visit {
                        url: url.clone(),
                        variant: meta.variant,
                        extract: page,
                        latency_ms: latency_total,
                        attempts: request.attempt + 1,
                        html_bytes: self.body.len(),
                    });
                }
                Err(e) if e.is_retryable() && request.attempt < self.config.max_retries => {
                    breaker.record_failure(elapsed);
                    let wait = self.backoff_ms(&url.host, request.attempt);
                    obs::trace::virtual_wait("crawl.backoff", span_key, wait);
                    trace.backoff_wait_ms += wait;
                    elapsed += wait;
                    if elapsed >= self.config.fetch_deadline_ms {
                        break Err(VisitError::DeadlineExceeded);
                    }
                    request = request.retry();
                }
                Err(e) => {
                    breaker.record_failure(elapsed);
                    break Err(VisitError::Fetch(e));
                }
            }
        };

        trace.virtual_ms = elapsed;
        fetch_span.set_virtual_ms(elapsed);
        drop(fetch_span);
        trace.breaker_opened = breaker.opened;
        trace.breaker_probes = breaker.probes;
        trace.breaker_reclosed = breaker.reclosed;
        self.clock.advance(elapsed);
        (result, trace)
    }

    /// Capped exponential backoff before retry `attempt_done + 1`, with
    /// deterministic jitter derived from `(seed, host, attempt)` — the
    /// same derivation discipline as the fault dice, so backoff schedules
    /// are reproducible and order-independent.
    fn backoff_ms(&self, host: &str, attempt_done: u32) -> u64 {
        let doubled = self
            .config
            .backoff_base_ms
            .saturating_mul(1u64 << attempt_done.min(16));
        let wait = doubled.min(self.config.backoff_cap_ms);
        if self.config.backoff_jitter_ms == 0 {
            return wait;
        }
        let mut r = rng::rng_for(
            self.internet.seed(),
            &[
                rng::stream_id(host),
                u64::from(attempt_done),
                BACKOFF_STREAM,
            ],
        );
        wait + r.gen_range(0..=self.config.backoff_jitter_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::Country;
    use langcrux_net::{vpn_vantage, ContentServer, FaultPlan};

    fn page_server() -> Box<dyn ContentServer> {
        Box::new(|variant: ContentVariant, _path: &str| match variant {
            ContentVariant::Localized => "<html lang=bn><head><title>খবর</title></head>\
                 <body><p>বাংলা সংবাদ</p><img src=a alt=\"ছবি এক\"></body></html>"
                .to_string(),
            ContentVariant::Global => "<html lang=en><head><title>News</title></head>\
                 <body><p>english news</p><img src=a alt=\"photo\"></body></html>"
                .to_string(),
            ContentVariant::Restricted => "<html><body>denied</body></html>".to_string(),
        })
    }

    fn net(plan: FaultPlan) -> Internet {
        let mut net = Internet::new(11, plan);
        net.register_simple("khobor.bd", Country::Bangladesh, page_server());
        net
    }

    #[test]
    fn visit_extracts_localized_page() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let visit = browser
            .visit(
                &Url::from_host("khobor.bd"),
                vpn_vantage(Country::Bangladesh).unwrap(),
            )
            .unwrap();
        assert_eq!(visit.variant, ContentVariant::Localized);
        assert_eq!(visit.extract.declared_lang.as_deref(), Some("bn"));
        assert!(visit.extract.visible_text.contains("বাংলা"));
        assert_eq!(visit.attempts, 1);
        assert!(visit.html_bytes > 0);
    }

    #[test]
    fn cloud_vantage_sees_global() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let visit = browser
            .visit(&Url::from_host("khobor.bd"), Vantage::Cloud)
            .unwrap();
        assert_eq!(visit.variant, ContentVariant::Global);
        assert!(visit.extract.visible_text.contains("english"));
    }

    #[test]
    fn unknown_host_fails_without_retry_burn() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let (result, trace) = browser.visit_traced(&Url::from_host("missing.bd"), Vantage::Cloud);
        assert_eq!(
            result.unwrap_err(),
            VisitError::Fetch(FetchError::UnknownHost("missing.bd".into()))
        );
        assert_eq!(trace.attempts, 1);
        assert_eq!(trace.backoff_wait_ms, 0);
    }

    #[test]
    fn restricted_is_not_a_visit() {
        let mut plan = FaultPlan::RELIABLE;
        plan.extra_vpn_detection = 1.0;
        let mut net = Internet::new(11, plan);
        net.register("wary.bd", Country::Bangladesh, 1.0, 0.0, page_server());
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let err = browser
            .visit(
                &Url::from_host("wary.bd"),
                vpn_vantage(Country::Bangladesh).unwrap(),
            )
            .unwrap_err();
        assert_eq!(err, VisitError::Restricted);
    }

    #[test]
    fn retries_recover_transient_faults_with_backoff() {
        // Hostile network: find a host that fails on attempt 0 but
        // succeeds within 3 retries, and confirm visit() recovers it —
        // now also paying a backoff wait for every retry consumed.
        let mut net = Internet::new(5, FaultPlan::HOSTILE);
        for i in 0..60 {
            net.register_simple(&format!("r{i}.bd"), Country::Bangladesh, page_server());
        }
        let mut browser = Browser::new(
            &net,
            BrowserConfig {
                max_retries: 3,
                ..BrowserConfig::default()
            },
        );
        let mut recovered = 0;
        for i in 0..60 {
            let url = Url::from_host(&format!("r{i}.bd"));
            let (result, trace) = browser.visit_traced(&url, Vantage::Cloud);
            if let Ok(v) = result {
                if v.attempts > 1 {
                    recovered += 1;
                    assert!(trace.backoff_wait_ms > 0, "retry without backoff");
                    assert!(trace.virtual_ms >= trace.backoff_wait_ms);
                }
            }
        }
        assert!(recovered > 0, "no visit needed a retry on a hostile net");
        assert!(browser.clock_ms() > 0, "worker clock never advanced");
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let net = net(FaultPlan::RELIABLE);
        let browser = Browser::new(&net, BrowserConfig::default());
        let config = BrowserConfig::default();
        for attempt in 0..10 {
            let a = browser.backoff_ms("khobor.bd", attempt);
            let b = browser.backoff_ms("khobor.bd", attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(a <= config.backoff_cap_ms + config.backoff_jitter_ms);
            let floor = (config.backoff_base_ms << attempt.min(16)).min(config.backoff_cap_ms);
            assert!(a >= floor, "attempt {attempt}: {a} < {floor}");
        }
        // Different hosts jitter differently (decorrelated streams).
        let other = (0..50).any(|i| {
            browser.backoff_ms(&format!("h{i}.bd"), 0) != browser.backoff_ms("khobor.bd", 0)
        });
        assert!(other, "all hosts drew identical jitter");
    }

    #[test]
    fn total_failure_breaks_the_breaker_and_respects_deadline() {
        // A plan that always times out: the visit must exhaust retries,
        // trip the breaker, and stay within the virtual deadline math.
        let plan = FaultPlan {
            timeout_chance: 1.0,
            ..FaultPlan::RELIABLE
        };
        let mut net = Internet::new(3, plan);
        net.register_simple("down.bd", Country::Bangladesh, page_server());
        let mut browser = Browser::new(
            &net,
            BrowserConfig {
                max_retries: 5,
                breaker_threshold: 2,
                ..BrowserConfig::default()
            },
        );
        let (result, trace) = browser.visit_traced(&Url::from_host("down.bd"), Vantage::Cloud);
        // With threshold 2 < retries, the breaker opens mid-visit and the
        // remaining attempts ride through cooldown waits (half-open probes).
        assert!(trace.breaker_opened >= 1, "{trace:?}");
        assert!(trace.breaker_probes >= 1, "{trace:?}");
        assert!(trace.breaker_wait_ms > 0, "{trace:?}");
        assert_eq!(trace.breaker_reclosed, 0);
        match result.unwrap_err() {
            VisitError::Fetch(FetchError::Timeout)
            | VisitError::DeadlineExceeded
            | VisitError::CircuitOpen => {}
            other => panic!("unexpected terminal error: {other:?}"),
        }
    }

    #[test]
    fn tight_deadline_cuts_the_visit_short() {
        let plan = FaultPlan {
            timeout_chance: 1.0,
            ..FaultPlan::RELIABLE
        };
        let mut net = Internet::new(3, plan);
        net.register_simple("down.bd", Country::Bangladesh, page_server());
        let mut browser = Browser::new(
            &net,
            BrowserConfig {
                max_retries: 50,
                fetch_deadline_ms: 500,
                ..BrowserConfig::default()
            },
        );
        let (result, trace) = browser.visit_traced(&Url::from_host("down.bd"), Vantage::Cloud);
        match result.unwrap_err() {
            VisitError::DeadlineExceeded | VisitError::CircuitOpen => {}
            other => panic!("expected a deadline cut, got {other:?}"),
        }
        assert!(
            trace.attempts < 50,
            "deadline failed to bound the retry chain: {trace:?}"
        );
        assert!(trace.virtual_ms < 500 + 2_050 + 50, "{trace:?}");
    }

    #[test]
    fn traced_visit_surfaces_body_damage() {
        let plan = FaultPlan {
            truncate_chance: 1.0,
            ..FaultPlan::RELIABLE
        };
        let mut net = Internet::new(11, plan);
        net.register_simple("cut.bd", Country::Bangladesh, page_server());
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let (result, trace) = browser.visit_traced(&Url::from_host("cut.bd"), Vantage::Cloud);
        let visit = result.expect("truncated page still parses");
        assert!(trace.truncated);
        assert!(!trace.garbled);
        // The streaming extractor ran over genuinely partial HTML.
        assert!(visit.html_bytes > 0);
    }

    #[test]
    fn reliable_visits_spend_exactly_the_latency() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let (result, trace) = browser.visit_traced(&Url::from_host("khobor.bd"), Vantage::Cloud);
        let visit = result.unwrap();
        assert_eq!(trace.attempts, 1);
        assert_eq!(trace.virtual_ms, u64::from(visit.latency_ms));
        assert_eq!(trace.backoff_wait_ms + trace.breaker_wait_ms, 0);
        assert_eq!(browser.clock_ms(), trace.virtual_ms);
    }
}
