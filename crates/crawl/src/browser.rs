//! Browser simulation: fetch → streaming tokenize→extract.
//!
//! [`Browser::visit`] performs one page load the way the paper's Puppeteer
//! harness does: issue the request from the configured vantage, retry
//! transient failures, and stream the returned HTML through the
//! tokenize→extract path ([`crate::stream`]) to produce the visible
//! text plus accessibility elements — no DOM is built per visit. Restricted responses (bot walls, VPN
//! detection) are surfaced as [`VisitError::Restricted`] so the selection
//! layer can apply the paper's replacement rule.

use crate::extract::PageExtract;
use crate::stream::extract_streaming;
use langcrux_net::{ContentVariant, FetchError, Internet, Request, Url, Vantage};
use serde::{Deserialize, Serialize};

/// Initial capacity of a browser's reusable body buffer (a typical
/// generated page; the buffer grows past this once and stays).
const BODY_BUF_CAPACITY: usize = 16 * 1024;

/// A successful page visit.
#[derive(Debug, Clone)]
pub struct Visit {
    pub url: Url,
    pub variant: ContentVariant,
    pub extract: PageExtract,
    /// Total latency across attempts, milliseconds.
    pub latency_ms: u32,
    /// 1 + number of retries consumed.
    pub attempts: u32,
    /// Size of the fetched body.
    pub html_bytes: usize,
}

/// Why a visit failed for good.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitError {
    /// Network failure that survived all retries.
    Fetch(FetchError),
    /// The site served a restricted/bot-wall page (e.g. VPN detected).
    Restricted,
}

impl std::fmt::Display for VisitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VisitError::Fetch(e) => write!(f, "fetch failed: {e}"),
            VisitError::Restricted => f.write_str("restricted content served"),
        }
    }
}

impl std::error::Error for VisitError {}

/// Crawl-level browser configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrowserConfig {
    /// Retries after the first attempt for retryable errors.
    pub max_retries: u32,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig { max_retries: 2 }
    }
}

/// A headless-browser stand-in bound to the simulated internet.
///
/// The browser owns a reusable body buffer: every visit fetches through
/// [`Internet::fetch_into`] into the same allocation (content servers with
/// a `serve_into` override render straight into it), so a long-lived
/// browser — one per crawl worker — performs zero per-visit body
/// allocations. [`visit`](Browser::visit) therefore takes `&mut self`.
pub struct Browser<'net> {
    internet: &'net Internet,
    config: BrowserConfig,
    /// Body buffer recycled across visits.
    body: String,
}

impl<'net> Browser<'net> {
    pub fn new(internet: &'net Internet, config: BrowserConfig) -> Self {
        Browser {
            internet,
            config,
            body: String::with_capacity(BODY_BUF_CAPACITY),
        }
    }

    /// Load a page from `vantage`, with retries on transient failures.
    pub fn visit(&mut self, url: &Url, vantage: Vantage) -> Result<Visit, VisitError> {
        let mut request = Request::new(url.clone(), vantage);
        let mut latency_total = 0u32;
        loop {
            match self.internet.fetch_into(&request, &mut self.body) {
                Ok(meta) => {
                    latency_total += meta.latency_ms;
                    if meta.variant == ContentVariant::Restricted {
                        return Err(VisitError::Restricted);
                    }
                    // Streaming tokenize→extract: no DOM is materialised
                    // on the crawl path (identical output to the DOM walk
                    // — see crate::stream).
                    let page = extract_streaming(&self.body);
                    return Ok(Visit {
                        url: url.clone(),
                        variant: meta.variant,
                        extract: page,
                        latency_ms: latency_total,
                        attempts: request.attempt + 1,
                        html_bytes: self.body.len(),
                    });
                }
                Err(e) if e.is_retryable() && request.attempt < self.config.max_retries => {
                    request = request.retry();
                }
                Err(e) => return Err(VisitError::Fetch(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_lang::Country;
    use langcrux_net::{vpn_vantage, ContentServer, FaultPlan};

    fn page_server() -> Box<dyn ContentServer> {
        Box::new(|variant: ContentVariant, _path: &str| match variant {
            ContentVariant::Localized => "<html lang=bn><head><title>খবর</title></head>\
                 <body><p>বাংলা সংবাদ</p><img src=a alt=\"ছবি এক\"></body></html>"
                .to_string(),
            ContentVariant::Global => "<html lang=en><head><title>News</title></head>\
                 <body><p>english news</p><img src=a alt=\"photo\"></body></html>"
                .to_string(),
            ContentVariant::Restricted => "<html><body>denied</body></html>".to_string(),
        })
    }

    fn net(plan: FaultPlan) -> Internet {
        let mut net = Internet::new(11, plan);
        net.register_simple("khobor.bd", Country::Bangladesh, page_server());
        net
    }

    #[test]
    fn visit_extracts_localized_page() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let visit = browser
            .visit(
                &Url::from_host("khobor.bd"),
                vpn_vantage(Country::Bangladesh).unwrap(),
            )
            .unwrap();
        assert_eq!(visit.variant, ContentVariant::Localized);
        assert_eq!(visit.extract.declared_lang.as_deref(), Some("bn"));
        assert!(visit.extract.visible_text.contains("বাংলা"));
        assert_eq!(visit.attempts, 1);
        assert!(visit.html_bytes > 0);
    }

    #[test]
    fn cloud_vantage_sees_global() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let visit = browser
            .visit(&Url::from_host("khobor.bd"), Vantage::Cloud)
            .unwrap();
        assert_eq!(visit.variant, ContentVariant::Global);
        assert!(visit.extract.visible_text.contains("english"));
    }

    #[test]
    fn unknown_host_fails_without_retry_burn() {
        let net = net(FaultPlan::RELIABLE);
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let err = browser
            .visit(&Url::from_host("missing.bd"), Vantage::Cloud)
            .unwrap_err();
        assert_eq!(
            err,
            VisitError::Fetch(FetchError::UnknownHost("missing.bd".into()))
        );
    }

    #[test]
    fn restricted_is_not_a_visit() {
        let mut plan = FaultPlan::RELIABLE;
        plan.extra_vpn_detection = 1.0;
        let mut net = Internet::new(11, plan);
        net.register("wary.bd", Country::Bangladesh, 1.0, 0.0, page_server());
        let mut browser = Browser::new(&net, BrowserConfig::default());
        let err = browser
            .visit(
                &Url::from_host("wary.bd"),
                vpn_vantage(Country::Bangladesh).unwrap(),
            )
            .unwrap_err();
        assert_eq!(err, VisitError::Restricted);
    }

    #[test]
    fn retries_recover_transient_faults() {
        // Hostile network: find a host that fails on attempt 0 but
        // succeeds within 2 retries, and confirm visit() recovers it.
        let mut net = Internet::new(5, FaultPlan::HOSTILE);
        for i in 0..60 {
            net.register_simple(&format!("r{i}.bd"), Country::Bangladesh, page_server());
        }
        let mut browser = Browser::new(&net, BrowserConfig { max_retries: 3 });
        let mut recovered = 0;
        for i in 0..60 {
            let url = Url::from_host(&format!("r{i}.bd"));
            if let Ok(v) = browser.visit(&url, Vantage::Cloud) {
                if v.attempts > 1 {
                    recovered += 1;
                }
            }
        }
        assert!(recovered > 0, "no visit needed a retry on a hostile net");
    }
}
