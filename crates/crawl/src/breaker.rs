//! A per-host circuit breaker over the virtual clock.
//!
//! Classic three-state breaker (closed → open → half-open), with all
//! timing in virtual milliseconds: after `threshold` *consecutive*
//! failures the breaker opens and refuses admission for `cooldown_ms`;
//! the first admission after the cooldown is a half-open probe; a
//! successful probe re-closes the breaker, a failed one re-opens it for
//! another cooldown.
//!
//! The browser instantiates one breaker per visit. Since the pipeline
//! visits every host exactly once, this *is* per-host state — and keeping
//! it visit-scoped (instead of a long-lived per-worker host map) is what
//! preserves determinism: breaker decisions depend only on this visit's
//! own attempt history, never on which other hosts a worker happened to
//! crawl first.

/// Breaker tuning (thresholds come from [`BrowserConfig`]).
///
/// [`BrowserConfig`]: crate::BrowserConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// Virtual milliseconds an open breaker holds before half-opening.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown_ms: 1_000,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Answer to an admission request at a given virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed breaker: proceed normally.
    Allow,
    /// Cooldown has elapsed: proceed as the single half-open probe.
    Probe,
    /// Still cooling down; ask again at `until_ms`.
    Wait { until_ms: u64 },
}

/// Three-state circuit breaker with transition counters.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// Virtual time of the transition into `Open`.
    opened_at_ms: u64,
    /// Times the breaker tripped open (including re-opens from a failed probe).
    pub opened: u32,
    /// Half-open probes admitted.
    pub probes: u32,
    /// Successful probes that re-closed the breaker.
    pub reclosed: u32,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ms: 0,
            opened: 0,
            probes: 0,
            reclosed: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a request proceed at virtual time `now_ms`?
    pub fn admit(&mut self, now_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                let until_ms = self.opened_at_ms.saturating_add(self.config.cooldown_ms);
                if now_ms >= until_ms {
                    self.state = BreakerState::HalfOpen;
                    self.probes += 1;
                    Admission::Probe
                } else {
                    Admission::Wait { until_ms }
                }
            }
        }
    }

    /// Record a successful request (re-closes a half-open breaker).
    pub fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.reclosed += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failed request at virtual time `now_ms`.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures += 1;
        match self.state {
            // A failed half-open probe re-opens for another full cooldown.
            BreakerState::HalfOpen => self.trip(now_ms),
            BreakerState::Closed if self.consecutive_failures >= self.config.threshold => {
                self.trip(now_ms)
            }
            _ => {}
        }
    }

    fn trip(&mut self, now_ms: u64) {
        self.state = BreakerState::Open;
        self.opened_at_ms = now_ms;
        self.opened += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown_ms: 100,
        })
    }

    #[test]
    fn closed_allows_until_threshold() {
        let mut b = breaker();
        assert_eq!(b.admit(0), Admission::Allow);
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(10), Admission::Allow);
        b.record_failure(20);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened, 1);
    }

    #[test]
    fn open_waits_out_the_cooldown_then_probes() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(10);
        assert_eq!(b.admit(50), Admission::Wait { until_ms: 110 });
        assert_eq!(b.admit(110), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.probes, 1);
        // Half-open keeps answering Probe until an outcome is recorded.
        assert_eq!(b.admit(111), Admission::Probe);
    }

    #[test]
    fn successful_probe_recloses() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(10);
        assert_eq!(b.admit(110), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.reclosed, 1);
        // The failure streak is forgotten.
        b.record_failure(120);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(10);
        assert_eq!(b.admit(110), Admission::Probe);
        b.record_failure(150);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened, 2);
        assert_eq!(b.admit(200), Admission::Wait { until_ms: 250 });
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_success();
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Closed, "streak must have reset");
    }
}
