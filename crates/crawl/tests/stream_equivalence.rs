//! Streaming-vs-DOM extraction equivalence at corpus scale.
//!
//! The unit tests in `crawl::stream` pin hand-picked adversarial HTML;
//! this suite sweeps the realistic surface: every study country's
//! generated sites in both content variants (the exact pages the crawl
//! path visits), plus property-generated markup. For each page the
//! streaming [`extract_streaming`] must equal the DOM oracle
//! `extract(&parse(html))` on the whole [`PageExtract`] — visible text,
//! histogram, declared lang, and every accessibility element — which is
//! what keeps `Dataset::to_json` and the serve cache's audit bytes
//! unchanged by the streaming switch.

use langcrux_crawl::{extract, extract_streaming};
use langcrux_html::parse;
use langcrux_lang::Country;
use langcrux_net::ContentVariant;
use langcrux_webgen::{render, SitePlan};
use proptest::prelude::*;

#[test]
fn corpus_sweep_streaming_equals_dom() {
    let mut pages = 0usize;
    for country in Country::STUDY {
        for index in 0..6u32 {
            // Alternate pinned qualification so both site shapes appear.
            let plan = SitePlan::build(0x57AE, country, index, Some(index % 2 == 0));
            for variant in [
                ContentVariant::Localized,
                ContentVariant::Global,
                ContentVariant::Restricted,
            ] {
                let (html, _) = render(&plan, variant, "/");
                let dom = extract(&parse(&html));
                let streamed = extract_streaming(&html);
                assert_eq!(
                    streamed, dom,
                    "diverged: {country:?} site {index} {variant:?}"
                );
                pages += 1;
            }
        }
    }
    // 12 countries × 6 sites × 3 variants.
    assert_eq!(pages, 216);
}

proptest! {
    #[test]
    fn streaming_page_extract_matches_dom_on_arbitrary_markup(
        input in "(<(a|p|div|img|button|label|input|select|title|svg|script|li)( (hidden|href=\"/x\"|for=\"i\"|id=\"i\"|alt=\"ছবি\"|aria-label=\"x\"|type=\"text\"|role=\"img\"))?/?>|</(a|p|div|button|label|select|title|svg|script|li)>|&[a-z#0-9]{0,6};?|[a-z\\u{995}\\u{E01} ]{0,10}){0,30}",
    ) {
        // Markup biased toward the tags the extractor cares about, with
        // hiding/labelling attributes, broken nesting, raw text, and
        // partial entities.
        prop_assert_eq!(extract_streaming(&input), extract(&parse(&input)));
    }
}
