//! # langcrux-lang
//!
//! Foundation crate of the LangCrUX reproduction: writing systems, the
//! 26-language candidate pool, the 12 study countries, multilingual UI
//! dictionaries, and deterministic seed derivation.
//!
//! Everything else in the workspace builds on these types:
//!
//! * [`script`] — Unicode script ranges and the per-character classifier
//!   that implements the paper's script-detection heuristic.
//! * [`language`] — the candidate languages, their scripts, speaker counts
//!   and disambiguation characters.
//! * [`country`] — the vantage countries and language pairings.
//! * [`dict`] — generic-action and placeholder vocabularies across the
//!   study languages (shared by the generator and the filter).
//! * [`rng`] — splitmix64 seed derivation for byte-reproducible corpora.
//! * [`a11y`] — the twelve language-sensitive accessibility element kinds
//!   of the paper's Table 1, shared across generator, crawler, and audits.

pub mod a11y;
pub mod country;
pub mod dict;
pub mod language;
pub mod rng;
pub mod script;

pub use a11y::ElementKind;
pub use country::Country;
pub use language::Language;
pub use script::{script_of, Script, ScriptHistogram};
