//! The language-sensitive accessibility elements (paper Table 1).
//!
//! Twelve element kinds "for which the presence, clarity, and
//! appropriateness of natural language directly influence accessibility
//! outcomes", selected in §2 from the Lighthouse/Axe-core audit catalogue.
//! This vocabulary is shared by the website generator (which plants
//! accessibility text into these slots), the crawler (which extracts it),
//! the audit engine (whose rules target them) and the analysis layer
//! (Table 2 is indexed by them).

use serde::{Deserialize, Serialize};

/// One of the twelve language-sensitive accessibility element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ElementKind {
    ButtonName,
    DocumentTitle,
    ImageAlt,
    FrameTitle,
    SummaryName,
    Label,
    InputImageAlt,
    SelectName,
    LinkName,
    InputButtonName,
    SvgImgAlt,
    ObjectAlt,
}

impl ElementKind {
    /// All twelve kinds, in the paper's Table 1 reading order.
    pub const ALL: [ElementKind; 12] = [
        ElementKind::ButtonName,
        ElementKind::DocumentTitle,
        ElementKind::ImageAlt,
        ElementKind::FrameTitle,
        ElementKind::SummaryName,
        ElementKind::Label,
        ElementKind::InputImageAlt,
        ElementKind::SelectName,
        ElementKind::LinkName,
        ElementKind::InputButtonName,
        ElementKind::SvgImgAlt,
        ElementKind::ObjectAlt,
    ];

    /// The eleven kinds reported in Table 2 (DocumentTitle is a singleton
    /// per page and is excluded from the per-element statistics).
    pub const TABLE2: [ElementKind; 11] = [
        ElementKind::ButtonName,
        ElementKind::FrameTitle,
        ElementKind::ImageAlt,
        ElementKind::InputButtonName,
        ElementKind::InputImageAlt,
        ElementKind::Label,
        ElementKind::LinkName,
        ElementKind::ObjectAlt,
        ElementKind::SelectName,
        ElementKind::SummaryName,
        ElementKind::SvgImgAlt,
    ];

    /// The Lighthouse audit id this kind corresponds to (Table 1 labels).
    pub fn audit_id(self) -> &'static str {
        match self {
            ElementKind::ButtonName => "button-name",
            ElementKind::DocumentTitle => "document-title",
            ElementKind::ImageAlt => "image-alt",
            ElementKind::FrameTitle => "frame-title",
            ElementKind::SummaryName => "summary-name",
            ElementKind::Label => "label",
            ElementKind::InputImageAlt => "input-image-alt",
            ElementKind::SelectName => "select-name",
            ElementKind::LinkName => "link-name",
            ElementKind::InputButtonName => "input-button-name",
            ElementKind::SvgImgAlt => "svg-img-alt",
            ElementKind::ObjectAlt => "object-alt",
        }
    }

    /// Parse an audit id back to a kind.
    pub fn from_audit_id(id: &str) -> Option<ElementKind> {
        ElementKind::ALL
            .iter()
            .copied()
            .find(|k| k.audit_id() == id)
    }

    /// The primary HTML tag this kind targets.
    pub fn html_tag(self) -> &'static str {
        match self {
            ElementKind::ButtonName => "button",
            ElementKind::DocumentTitle => "title",
            ElementKind::ImageAlt => "img",
            ElementKind::FrameTitle => "iframe",
            ElementKind::SummaryName => "summary",
            ElementKind::Label => "input",
            ElementKind::InputImageAlt => "input",
            ElementKind::SelectName => "select",
            ElementKind::LinkName => "a",
            ElementKind::InputButtonName => "input",
            ElementKind::SvgImgAlt => "svg",
            ElementKind::ObjectAlt => "object",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_kinds_eleven_in_table2() {
        assert_eq!(ElementKind::ALL.len(), 12);
        assert_eq!(ElementKind::TABLE2.len(), 11);
        assert!(!ElementKind::TABLE2.contains(&ElementKind::DocumentTitle));
        for k in ElementKind::TABLE2 {
            assert!(ElementKind::ALL.contains(&k));
        }
    }

    #[test]
    fn audit_ids_round_trip() {
        for k in ElementKind::ALL {
            assert_eq!(ElementKind::from_audit_id(k.audit_id()), Some(k));
        }
        assert_eq!(ElementKind::from_audit_id("video-caption"), None);
    }

    #[test]
    fn audit_ids_match_table1() {
        let ids: Vec<&str> = ElementKind::ALL.iter().map(|k| k.audit_id()).collect();
        for expected in [
            "button-name",
            "document-title",
            "image-alt",
            "frame-title",
            "summary-name",
            "label",
            "input-image-alt",
            "select-name",
            "link-name",
            "input-button-name",
            "svg-img-alt",
            "object-alt",
        ] {
            assert!(ids.contains(&expected), "{expected} missing");
        }
    }
}
