//! Languages of the candidate pool.
//!
//! The paper starts from a pool of 26 widely spoken non-Latin-script
//! languages (§2, "Language and Country Selection Criteria") and narrows it
//! to 12 language-country pairs via inclusion criteria. This module defines
//! the full pool (plus English, which is needed throughout the analysis as
//! the contrast language), the script each language is written in, and the
//! language-specific disambiguation characters used to tell apart languages
//! that share a script (Arabic vs. Urdu vs. Persian; Hindi vs. Marathi vs.
//! Nepali; Mandarin vs. Cantonese vs. Japanese Han usage).

use crate::script::Script;
use serde::{Deserialize, Serialize};

/// A natural language tracked by the pipeline.
///
/// The 12 variants marked *(included)* survive the paper's inclusion
/// criteria; the rest are candidates that are filtered out by the
/// selection pipeline (`langcrux-core::selection`), exactly as in §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    /// Contrast language; the only Latin-script entry.
    English,
    MandarinChinese,      // (included) China
    Hindi,                // (included) India
    ModernStandardArabic, // (included) Algeria
    Bangla,               // (included) Bangladesh
    Russian,              // (included) Russia
    Japanese,             // (included) Japan
    EgyptianArabic,       // (included) Egypt
    Cantonese,            // (included) Hong Kong
    Korean,               // (included) South Korea
    Thai,                 // (included) Thailand
    Greek,                // (included) Greece
    Hebrew,               // (included) Israel
    // ---- candidates excluded by the inclusion criteria ----
    Urdu,
    Tamil,
    Telugu,
    Marathi,
    Amharic,
    Burmese,
    Sinhala,
    Georgian,
    Punjabi,
    Gujarati,
    Kannada,
    Malayalam,
    Persian,
    Nepali,
}

impl Language {
    /// The full 26-language candidate pool, in paper order (included 12
    /// first), excluding `English`.
    pub const CANDIDATE_POOL: [Language; 26] = [
        Language::MandarinChinese,
        Language::Hindi,
        Language::ModernStandardArabic,
        Language::Bangla,
        Language::Russian,
        Language::Japanese,
        Language::EgyptianArabic,
        Language::Cantonese,
        Language::Korean,
        Language::Thai,
        Language::Greek,
        Language::Hebrew,
        Language::Urdu,
        Language::Tamil,
        Language::Telugu,
        Language::Marathi,
        Language::Amharic,
        Language::Burmese,
        Language::Sinhala,
        Language::Georgian,
        Language::Punjabi,
        Language::Gujarati,
        Language::Kannada,
        Language::Malayalam,
        Language::Persian,
        Language::Nepali,
    ];

    /// The 12 languages that satisfy the paper's inclusion criteria.
    pub const INCLUDED: [Language; 12] = [
        Language::MandarinChinese,
        Language::Hindi,
        Language::ModernStandardArabic,
        Language::Bangla,
        Language::Russian,
        Language::Japanese,
        Language::EgyptianArabic,
        Language::Cantonese,
        Language::Korean,
        Language::Thai,
        Language::Greek,
        Language::Hebrew,
    ];

    /// Primary script the language is written in.
    ///
    /// Japanese is multi-script (Hiragana + Katakana + Han); we return
    /// `Hiragana` as the *identifying* script because Hiragana appears in
    /// essentially all running Japanese text and never in Chinese, matching
    /// the paper's need to disambiguate overlapping Han usage.
    pub fn primary_script(self) -> Script {
        match self {
            Language::English => Script::Latin,
            Language::MandarinChinese | Language::Cantonese => Script::Han,
            Language::Hindi | Language::Marathi | Language::Nepali => Script::Devanagari,
            Language::ModernStandardArabic | Language::EgyptianArabic => Script::Arabic,
            Language::Urdu | Language::Persian => Script::Arabic,
            Language::Bangla => Script::Bengali,
            Language::Russian => Script::Cyrillic,
            Language::Japanese => Script::Hiragana,
            Language::Korean => Script::Hangul,
            Language::Thai => Script::Thai,
            Language::Greek => Script::Greek,
            Language::Hebrew => Script::Hebrew,
            Language::Tamil => Script::Tamil,
            Language::Telugu => Script::Telugu,
            Language::Amharic => Script::Ethiopic,
            Language::Burmese => Script::Myanmar,
            Language::Sinhala => Script::Sinhala,
            Language::Georgian => Script::Georgian,
            Language::Punjabi => Script::Gurmukhi,
            Language::Gujarati => Script::Gujarati,
            Language::Kannada => Script::Kannada,
            Language::Malayalam => Script::Malayalam,
        }
    }

    /// Every script whose characters count as evidence *for* this language
    /// when computing language shares (the paper's Unicode heuristic).
    pub fn evidence_scripts(self) -> &'static [Script] {
        match self {
            Language::Japanese => &[Script::Hiragana, Script::Katakana, Script::Han],
            Language::English => &[Script::Latin],
            Language::MandarinChinese | Language::Cantonese => &[Script::Han],
            Language::Hindi | Language::Marathi | Language::Nepali => &[Script::Devanagari],
            Language::ModernStandardArabic
            | Language::EgyptianArabic
            | Language::Urdu
            | Language::Persian => &[Script::Arabic],
            Language::Bangla => &[Script::Bengali],
            Language::Russian => &[Script::Cyrillic],
            Language::Korean => &[Script::Hangul],
            Language::Thai => &[Script::Thai],
            Language::Greek => &[Script::Greek],
            Language::Hebrew => &[Script::Hebrew],
            Language::Tamil => &[Script::Tamil],
            Language::Telugu => &[Script::Telugu],
            Language::Amharic => &[Script::Ethiopic],
            Language::Burmese => &[Script::Myanmar],
            Language::Sinhala => &[Script::Sinhala],
            Language::Georgian => &[Script::Georgian],
            Language::Punjabi => &[Script::Gurmukhi],
            Language::Gujarati => &[Script::Gujarati],
            Language::Kannada => &[Script::Kannada],
            Language::Malayalam => &[Script::Malayalam],
        }
    }

    /// Characters that positively identify this language against others that
    /// share its primary script — the paper's "additional language-specific
    /// characters to improve precision" (§2, Website Selection).
    ///
    /// * Urdu: retroflex and aspirate letters absent from Modern Standard
    ///   Arabic (`ٹ ڈ ڑ ں ھ ہ ے`), plus Perso-Arabic `پ چ گ ژ`.
    /// * Persian: `پ چ ژ گ` plus `ی` final form usage.
    /// * Marathi: `ळ` (retroflex lateral) is frequent in Marathi and rare in
    ///   Hindi.
    /// * Japanese: kana (already separated at the script level).
    ///
    /// Each set is sorted by codepoint (a tested invariant), so membership
    /// checks can binary-search instead of scanning.
    pub fn disambiguation_chars(self) -> &'static [char] {
        match self {
            Language::Urdu => &['ٹ', 'پ', 'چ', 'ڈ', 'ڑ', 'ژ', 'گ', 'ں', 'ھ', 'ہ', 'ے'],
            Language::Persian => &['پ', 'چ', 'ژ', 'گ'],
            Language::Marathi => &['ळ'],
            Language::Nepali => &['ँ'],
            _ => &[],
        }
    }

    /// BCP-47-ish language tag used in generated `lang=` attributes.
    pub fn tag(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::MandarinChinese => "zh-CN",
            Language::Cantonese => "zh-HK",
            Language::Hindi => "hi",
            Language::ModernStandardArabic => "ar",
            Language::EgyptianArabic => "ar-EG",
            Language::Bangla => "bn",
            Language::Russian => "ru",
            Language::Japanese => "ja",
            Language::Korean => "ko",
            Language::Thai => "th",
            Language::Greek => "el",
            Language::Hebrew => "he",
            Language::Urdu => "ur",
            Language::Tamil => "ta",
            Language::Telugu => "te",
            Language::Marathi => "mr",
            Language::Amharic => "am",
            Language::Burmese => "my",
            Language::Sinhala => "si",
            Language::Georgian => "ka",
            Language::Punjabi => "pa",
            Language::Gujarati => "gu",
            Language::Kannada => "kn",
            Language::Malayalam => "ml",
            Language::Persian => "fa",
            Language::Nepali => "ne",
        }
    }

    /// Resolve a BCP-47-ish tag to the pool language with the same primary
    /// subtag, e.g. `"bn"`, `"bn-IN"`, `"BN_in"` → `Bangla`. Shared primary
    /// subtags resolve to the first pool entry (`"zh"` → `MandarinChinese`,
    /// `"ar"` → `ModernStandardArabic`); `"en"` resolves to `English`.
    pub fn from_primary_subtag(tag: &str) -> Option<Language> {
        let primary = tag.trim().split(['-', '_']).next().unwrap_or("");
        if primary.is_empty() {
            return None;
        }
        std::iter::once(Language::English)
            .chain(Language::CANDIDATE_POOL)
            .find(|l| {
                l.tag()
                    .split('-')
                    .next()
                    .is_some_and(|t| t.eq_ignore_ascii_case(primary))
            })
    }

    /// English display name.
    pub fn name(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::MandarinChinese => "Mandarin Chinese",
            Language::Cantonese => "Cantonese",
            Language::Hindi => "Hindi",
            Language::ModernStandardArabic => "Modern Standard Arabic",
            Language::EgyptianArabic => "Egyptian Arabic",
            Language::Bangla => "Bangla",
            Language::Russian => "Russian",
            Language::Japanese => "Japanese",
            Language::Korean => "Korean",
            Language::Thai => "Thai",
            Language::Greek => "Greek",
            Language::Hebrew => "Hebrew",
            Language::Urdu => "Urdu",
            Language::Tamil => "Tamil",
            Language::Telugu => "Telugu",
            Language::Marathi => "Marathi",
            Language::Amharic => "Amharic",
            Language::Burmese => "Burmese",
            Language::Sinhala => "Sinhala",
            Language::Georgian => "Georgian",
            Language::Punjabi => "Punjabi",
            Language::Gujarati => "Gujarati",
            Language::Kannada => "Kannada",
            Language::Malayalam => "Malayalam",
            Language::Persian => "Persian",
            Language::Nepali => "Nepali",
        }
    }

    /// Approximate global speakers, in millions. The 12 included languages
    /// use the figures quoted in §2 of the paper; the rest use commonly
    /// cited totals (needed only for candidate-pool ordering).
    pub fn speakers_millions(self) -> f64 {
        match self {
            Language::English => 1500.0,
            Language::MandarinChinese => 1200.0,
            Language::Hindi => 609.0,
            Language::ModernStandardArabic => 335.0,
            Language::Bangla => 284.0,
            Language::Russian => 253.0,
            Language::Japanese => 126.0,
            Language::EgyptianArabic => 119.0,
            Language::Cantonese => 85.5,
            Language::Korean => 82.0,
            Language::Thai => 71.0,
            Language::Greek => 13.5,
            Language::Hebrew => 9.0,
            Language::Urdu => 230.0,
            Language::Tamil => 79.0,
            Language::Telugu => 83.0,
            Language::Marathi => 83.0,
            Language::Amharic => 57.0,
            Language::Burmese => 33.0,
            Language::Sinhala => 16.0,
            Language::Georgian => 3.7,
            Language::Punjabi => 113.0,
            Language::Gujarati => 57.0,
            Language::Kannada => 44.0,
            Language::Malayalam => 34.0,
            Language::Persian => 62.0,
            Language::Nepali => 25.0,
        }
    }

    /// Whether this language is among the 12 included pairs.
    pub fn is_included(self) -> bool {
        Language::INCLUDED.contains(&self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::script_of;

    #[test]
    fn pool_has_26_candidates_and_12_included() {
        assert_eq!(Language::CANDIDATE_POOL.len(), 26);
        assert_eq!(Language::INCLUDED.len(), 12);
        for l in Language::INCLUDED {
            assert!(Language::CANDIDATE_POOL.contains(&l));
            assert!(l.is_included());
        }
        assert!(!Language::English.is_included());
        assert!(!Language::Tamil.is_included());
    }

    #[test]
    fn no_candidate_is_latin_script() {
        for l in Language::CANDIDATE_POOL {
            assert_ne!(l.primary_script(), Script::Latin, "{:?}", l);
        }
        assert_eq!(Language::English.primary_script(), Script::Latin);
    }

    #[test]
    fn included_speakers_sum_matches_paper() {
        // §2: "Collectively, these 12 languages are spoken by over 3.19
        // billion people".
        let total: f64 = Language::INCLUDED
            .iter()
            .map(|l| l.speakers_millions())
            .sum();
        assert!(total > 3_190.0 - 10.0 && total < 3_300.0, "total = {total}");
    }

    #[test]
    fn disambiguation_chars_live_in_primary_script() {
        for l in Language::CANDIDATE_POOL {
            for &c in l.disambiguation_chars() {
                assert!(
                    l.evidence_scripts().contains(&script_of(c)),
                    "{:?}: {c} classified as {:?}",
                    l,
                    script_of(c)
                );
            }
        }
    }

    #[test]
    fn disambiguation_chars_are_sorted_sets() {
        for l in Language::CANDIDATE_POOL {
            let set = l.disambiguation_chars();
            for w in set.windows(2) {
                assert!(w[0] < w[1], "{l:?}: {:?} !< {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn urdu_disambiguation_distinct_from_msa() {
        // Every Urdu disambiguation char must be outside the basic MSA
        // alphabet; spot check a few well-known MSA letters are NOT listed.
        for msa in ['ا', 'ب', 'ت', 'ث', 'ج'] {
            assert!(!Language::Urdu.disambiguation_chars().contains(&msa));
        }
    }

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<&str> = Language::CANDIDATE_POOL.iter().map(|l| l.tag()).collect();
        tags.push(Language::English.tag());
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(tags.len(), dedup.len());
    }

    #[test]
    fn primary_subtag_resolution() {
        assert_eq!(Language::from_primary_subtag("bn"), Some(Language::Bangla));
        assert_eq!(
            Language::from_primary_subtag("bn-IN"),
            Some(Language::Bangla)
        );
        assert_eq!(
            Language::from_primary_subtag(" BN_in "),
            Some(Language::Bangla)
        );
        // Shared subtags pick the first pool entry.
        assert_eq!(
            Language::from_primary_subtag("zh-HK"),
            Some(Language::MandarinChinese)
        );
        assert_eq!(
            Language::from_primary_subtag("ar-EG"),
            Some(Language::ModernStandardArabic)
        );
        assert_eq!(Language::from_primary_subtag("en"), Some(Language::English));
        assert_eq!(Language::from_primary_subtag("xx"), None);
        assert_eq!(Language::from_primary_subtag(""), None);
        // Every pool tag must round-trip to *some* language with the same
        // primary subtag.
        for l in Language::CANDIDATE_POOL {
            let resolved = Language::from_primary_subtag(l.tag()).unwrap();
            assert_eq!(resolved.tag().split('-').next(), l.tag().split('-').next());
        }
    }

    #[test]
    fn japanese_evidence_includes_all_three_scripts() {
        let ev = Language::Japanese.evidence_scripts();
        assert!(ev.contains(&Script::Hiragana));
        assert!(ev.contains(&Script::Katakana));
        assert!(ev.contains(&Script::Han));
    }
}
