//! Countries of the study.
//!
//! Each included language is paired with the country that has the highest
//! population of native speakers (§2) — e.g. Modern Standard Arabic is
//! studied from Algeria. Candidate countries that were excluded by the
//! inclusion criteria (Sri Lanka, Georgia, …) are modelled too, because the
//! selection pipeline has to reject them for the same reasons the paper did.

use crate::language::Language;
use serde::{Deserialize, Serialize};

/// A country vantage point. The first 12 variants are the study's final
/// pairs; the rest host excluded candidate languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Country {
    Bangladesh,
    China,
    Algeria,
    Egypt,
    Greece,
    HongKong,
    Israel,
    India,
    Japan,
    SouthKorea,
    Russia,
    Thailand,
    // ---- hosts of excluded candidates ----
    SriLanka,
    Georgia,
    Pakistan,
    Ethiopia,
    Myanmar,
    Iran,
    Nepal,
}

impl Country {
    /// The 12 study countries, ordered by their ISO codes as the paper's
    /// figures do (bd cn dz eg gr hk il in jp kr ru th).
    pub const STUDY: [Country; 12] = [
        Country::Bangladesh,
        Country::China,
        Country::Algeria,
        Country::Egypt,
        Country::Greece,
        Country::HongKong,
        Country::Israel,
        Country::India,
        Country::Japan,
        Country::SouthKorea,
        Country::Russia,
        Country::Thailand,
    ];

    /// ISO 3166-1 alpha-2 code (lowercase), as used on the paper's x-axes.
    pub fn code(self) -> &'static str {
        match self {
            Country::Bangladesh => "bd",
            Country::China => "cn",
            Country::Algeria => "dz",
            Country::Egypt => "eg",
            Country::Greece => "gr",
            Country::HongKong => "hk",
            Country::Israel => "il",
            Country::India => "in",
            Country::Japan => "jp",
            Country::SouthKorea => "kr",
            Country::Russia => "ru",
            Country::Thailand => "th",
            Country::SriLanka => "lk",
            Country::Georgia => "ge",
            Country::Pakistan => "pk",
            Country::Ethiopia => "et",
            Country::Myanmar => "mm",
            Country::Iran => "ir",
            Country::Nepal => "np",
        }
    }

    /// Parse an ISO code back into a country.
    pub fn from_code(code: &str) -> Option<Country> {
        ALL.iter().copied().find(|c| c.code() == code)
    }

    /// English display name.
    pub fn name(self) -> &'static str {
        match self {
            Country::Bangladesh => "Bangladesh",
            Country::China => "China",
            Country::Algeria => "Algeria",
            Country::Egypt => "Egypt",
            Country::Greece => "Greece",
            Country::HongKong => "Hong Kong",
            Country::Israel => "Israel",
            Country::India => "India",
            Country::Japan => "Japan",
            Country::SouthKorea => "South Korea",
            Country::Russia => "Russia",
            Country::Thailand => "Thailand",
            Country::SriLanka => "Sri Lanka",
            Country::Georgia => "Georgia",
            Country::Pakistan => "Pakistan",
            Country::Ethiopia => "Ethiopia",
            Country::Myanmar => "Myanmar",
            Country::Iran => "Iran",
            Country::Nepal => "Nepal",
        }
    }

    /// The target (native, studied) language for this vantage country.
    pub fn target_language(self) -> Language {
        match self {
            Country::Bangladesh => Language::Bangla,
            Country::China => Language::MandarinChinese,
            Country::Algeria => Language::ModernStandardArabic,
            Country::Egypt => Language::EgyptianArabic,
            Country::Greece => Language::Greek,
            Country::HongKong => Language::Cantonese,
            Country::Israel => Language::Hebrew,
            Country::India => Language::Hindi,
            Country::Japan => Language::Japanese,
            Country::SouthKorea => Language::Korean,
            Country::Russia => Language::Russian,
            Country::Thailand => Language::Thai,
            Country::SriLanka => Language::Sinhala,
            Country::Georgia => Language::Georgian,
            Country::Pakistan => Language::Urdu,
            Country::Ethiopia => Language::Amharic,
            Country::Myanmar => Language::Burmese,
            Country::Iran => Language::Persian,
            Country::Nepal => Language::Nepali,
        }
    }

    /// Country-code TLD used for generated hostnames.
    pub fn tld(self) -> &'static str {
        match self {
            Country::HongKong => "hk",
            c => c.code(),
        }
    }

    /// Whether this country is part of the final 12-pair study.
    pub fn is_study(self) -> bool {
        Country::STUDY.contains(&self)
    }
}

/// Every modelled country.
pub const ALL: [Country; 19] = [
    Country::Bangladesh,
    Country::China,
    Country::Algeria,
    Country::Egypt,
    Country::Greece,
    Country::HongKong,
    Country::Israel,
    Country::India,
    Country::Japan,
    Country::SouthKorea,
    Country::Russia,
    Country::Thailand,
    Country::SriLanka,
    Country::Georgia,
    Country::Pakistan,
    Country::Ethiopia,
    Country::Myanmar,
    Country::Iran,
    Country::Nepal,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_study_countries() {
        assert_eq!(Country::STUDY.len(), 12);
        for c in Country::STUDY {
            assert!(c.is_study());
            assert!(c.target_language().is_included(), "{:?}", c);
        }
    }

    #[test]
    fn study_order_matches_figure_axes() {
        let codes: Vec<&str> = Country::STUDY.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            vec!["bd", "cn", "dz", "eg", "gr", "hk", "il", "in", "jp", "kr", "ru", "th"]
        );
    }

    #[test]
    fn codes_round_trip() {
        for c in ALL {
            assert_eq!(Country::from_code(c.code()), Some(c));
        }
        assert_eq!(Country::from_code("xx"), None);
    }

    #[test]
    fn excluded_countries_map_to_excluded_languages() {
        for c in [Country::SriLanka, Country::Georgia, Country::Pakistan] {
            assert!(!c.is_study());
            assert!(!c.target_language().is_included());
        }
    }

    #[test]
    fn study_languages_are_exactly_the_included_set() {
        let mut langs: Vec<Language> = Country::STUDY.iter().map(|c| c.target_language()).collect();
        langs.sort();
        let mut included = Language::INCLUDED.to_vec();
        included.sort();
        assert_eq!(langs, included);
    }
}
