//! Multilingual UI dictionaries.
//!
//! Two of the Appendix H filtering categories depend on word lists that span
//! the study's languages:
//!
//! * **Generic Action** — "Common UI actions (e.g., 'close', 'search') in
//!   multiple languages are filtered if used alone without context."
//! * **Placeholder** — "Generic placeholders for images or UI components,
//!   such as 'image', 'icon', or 'button' … include translations in various
//!   languages."
//!
//! The same lists drive the website generator (to *plant* such labels at the
//! calibrated rates) and the filter (to *detect* them), mirroring how the
//! paper curated one shared vocabulary for both its generator-independent
//! filter and its examples.

use crate::language::Language;

/// A dictionary entry: the term and the language it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    pub text: &'static str,
    pub language: Language,
}

const fn t(text: &'static str, language: Language) -> Term {
    Term { text, language }
}

/// Generic single-purpose UI action words. Used alone (no object, no
/// context) these carry no information for a screen-reader user.
pub const GENERIC_ACTIONS: &[Term] = &[
    // English
    t("close", Language::English),
    t("search", Language::English),
    t("submit", Language::English),
    t("login", Language::English),
    t("log in", Language::English),
    t("sign in", Language::English),
    t("send", Language::English),
    t("menu", Language::English),
    t("next", Language::English),
    t("previous", Language::English),
    t("prev", Language::English),
    t("back", Language::English),
    t("download", Language::English),
    t("share", Language::English),
    t("open", Language::English),
    t("home", Language::English),
    t("ok", Language::English),
    t("cancel", Language::English),
    t("more", Language::English),
    t("read more", Language::English),
    t("click here", Language::English),
    t("go", Language::English),
    t("toggle navigation", Language::English),
    // Korean
    t("닫기", Language::Korean),
    t("검색", Language::Korean),
    t("로그인", Language::Korean),
    t("메뉴", Language::Korean),
    t("다음", Language::Korean),
    t("이전", Language::Korean),
    t("보내기", Language::Korean),
    t("확인", Language::Korean),
    t("취소", Language::Korean),
    t("공유", Language::Korean),
    t("더보기", Language::Korean),
    // Japanese
    t("閉じる", Language::Japanese),
    t("検索", Language::Japanese),
    t("ログイン", Language::Japanese),
    t("メニュー", Language::Japanese),
    t("次へ", Language::Japanese),
    t("前へ", Language::Japanese),
    t("送信", Language::Japanese),
    t("キャンセル", Language::Japanese),
    t("もっと見る", Language::Japanese),
    // Mandarin (simplified)
    t("关闭", Language::MandarinChinese),
    t("搜索", Language::MandarinChinese),
    t("登录", Language::MandarinChinese),
    t("菜单", Language::MandarinChinese),
    t("下一页", Language::MandarinChinese),
    t("上一页", Language::MandarinChinese),
    t("提交", Language::MandarinChinese),
    t("取消", Language::MandarinChinese),
    t("分享", Language::MandarinChinese),
    t("更多", Language::MandarinChinese),
    // Cantonese (traditional forms)
    t("關閉", Language::Cantonese),
    t("搜尋", Language::Cantonese),
    t("登入", Language::Cantonese),
    t("選單", Language::Cantonese),
    t("下一頁", Language::Cantonese),
    t("上一頁", Language::Cantonese),
    t("更多", Language::Cantonese),
    // Russian
    t("закрыть", Language::Russian),
    t("поиск", Language::Russian),
    t("войти", Language::Russian),
    t("меню", Language::Russian),
    t("далее", Language::Russian),
    t("назад", Language::Russian),
    t("отправить", Language::Russian),
    t("отмена", Language::Russian),
    t("скачать", Language::Russian),
    t("ещё", Language::Russian),
    // Greek
    t("κλείσιμο", Language::Greek),
    t("αναζήτηση", Language::Greek),
    t("σύνδεση", Language::Greek),
    t("μενού", Language::Greek),
    t("επόμενο", Language::Greek),
    t("προηγούμενο", Language::Greek),
    t("υποβολή", Language::Greek),
    t("άκυρο", Language::Greek),
    t("αρχική", Language::Greek),
    // Hebrew
    t("סגור", Language::Hebrew),
    t("חיפוש", Language::Hebrew),
    t("התחברות", Language::Hebrew),
    t("תפריט", Language::Hebrew),
    t("הבא", Language::Hebrew),
    t("הקודם", Language::Hebrew),
    t("שלח", Language::Hebrew),
    t("ביטול", Language::Hebrew),
    t("בית", Language::Hebrew),
    // Modern Standard Arabic (shared by dz/eg vantage)
    t("إغلاق", Language::ModernStandardArabic),
    t("بحث", Language::ModernStandardArabic),
    t("تسجيل الدخول", Language::ModernStandardArabic),
    t("قائمة", Language::ModernStandardArabic),
    t("التالي", Language::ModernStandardArabic),
    t("السابق", Language::ModernStandardArabic),
    t("إرسال", Language::ModernStandardArabic),
    t("إلغاء", Language::ModernStandardArabic),
    t("الرئيسية", Language::ModernStandardArabic),
    t("تحميل", Language::ModernStandardArabic),
    t("المزيد", Language::EgyptianArabic),
    t("ابحث", Language::EgyptianArabic),
    // Hindi
    t("बंद करें", Language::Hindi),
    t("खोज", Language::Hindi),
    t("लॉगिन", Language::Hindi),
    t("मेनू", Language::Hindi),
    t("अगला", Language::Hindi),
    t("पिछला", Language::Hindi),
    t("भेजें", Language::Hindi),
    t("रद्द करें", Language::Hindi),
    t("होम", Language::Hindi),
    t("डाउनलोड", Language::Hindi),
    // Bangla
    t("বন্ধ", Language::Bangla),
    t("অনুসন্ধান", Language::Bangla),
    t("লগইন", Language::Bangla),
    t("মেনু", Language::Bangla),
    t("পরবর্তী", Language::Bangla),
    t("পূর্ববর্তী", Language::Bangla),
    t("পাঠান", Language::Bangla),
    t("বাতিল", Language::Bangla),
    t("হোম", Language::Bangla),
    // Thai
    t("ปิด", Language::Thai),
    t("ค้นหา", Language::Thai),
    t("เข้าสู่ระบบ", Language::Thai),
    t("เมนู", Language::Thai),
    t("ถัดไป", Language::Thai),
    t("ก่อนหน้า", Language::Thai),
    t("ส่ง", Language::Thai),
    t("ยกเลิก", Language::Thai),
    t("หน้าแรก", Language::Thai),
    t("ดาวน์โหลด", Language::Thai),
];

/// Generic placeholder nouns for images/components.
pub const PLACEHOLDERS: &[Term] = &[
    // English
    t("image", Language::English),
    t("img", Language::English),
    t("icon", Language::English),
    t("button", Language::English),
    t("picture", Language::English),
    t("logo", Language::English),
    t("banner", Language::English),
    t("thumbnail", Language::English),
    t("graphic", Language::English),
    t("untitled", Language::English),
    t("placeholder", Language::English),
    t("file", Language::English),
    t("link", Language::English),
    // Mandarin
    t("图像", Language::MandarinChinese),
    t("图片", Language::MandarinChinese),
    t("图标", Language::MandarinChinese),
    t("按钮", Language::MandarinChinese),
    t("标志", Language::MandarinChinese),
    // Cantonese (traditional)
    t("圖像", Language::Cantonese),
    t("圖片", Language::Cantonese),
    t("圖標", Language::Cantonese),
    t("按鈕", Language::Cantonese),
    // Japanese
    t("画像", Language::Japanese),
    t("アイコン", Language::Japanese),
    t("ボタン", Language::Japanese),
    t("ロゴ", Language::Japanese),
    t("サムネイル", Language::Japanese),
    // Korean
    t("이미지", Language::Korean),
    t("아이콘", Language::Korean),
    t("버튼", Language::Korean),
    t("사진", Language::Korean),
    t("로고", Language::Korean),
    // Russian
    t("изображение", Language::Russian),
    t("иконка", Language::Russian),
    t("кнопка", Language::Russian),
    t("картинка", Language::Russian),
    t("фото", Language::Russian),
    t("логотип", Language::Russian),
    // Greek
    t("εικόνα", Language::Greek),
    t("εικονίδιο", Language::Greek),
    t("κουμπί", Language::Greek),
    t("φωτογραφία", Language::Greek),
    // Hebrew
    t("תמונה", Language::Hebrew),
    t("סמל", Language::Hebrew),
    t("כפתור", Language::Hebrew),
    t("לוגו", Language::Hebrew),
    // Arabic
    t("صورة", Language::ModernStandardArabic),
    t("أيقونة", Language::ModernStandardArabic),
    t("زر", Language::ModernStandardArabic),
    t("شعار", Language::ModernStandardArabic),
    // Egyptian Arabic (colloquial spellings)
    t("صوره", Language::EgyptianArabic),
    t("لينك", Language::EgyptianArabic),
    t("زرار", Language::EgyptianArabic),
    // Hindi
    t("छवि", Language::Hindi),
    t("चित्र", Language::Hindi),
    t("आइकन", Language::Hindi),
    t("बटन", Language::Hindi),
    t("फोटो", Language::Hindi),
    // Bangla
    t("ছবি", Language::Bangla),
    t("আইকন", Language::Bangla),
    t("বোতাম", Language::Bangla),
    t("লোগো", Language::Bangla),
    // Thai
    t("รูปภาพ", Language::Thai),
    t("ไอคอน", Language::Thai),
    t("ปุ่ม", Language::Thai),
    t("รูปถ่าย", Language::Thai),
    t("โลโก้", Language::Thai),
];

/// Case-insensitive (for Latin/Greek/Cyrillic) exact-match lookup against a
/// term list. Matching is whole-string after trimming, per Appendix H:
/// actions/placeholders are only discarded when "used alone without context".
pub fn matches_term_list(text: &str, list: &[Term]) -> Option<Term> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return None;
    }
    let lowered = trimmed.to_lowercase();
    list.iter()
        .copied()
        .find(|term| term.text == trimmed || term.text.to_lowercase() == lowered)
}

/// A case-folded dictionary index: terms sorted by lowercased text for
/// binary-search lookup. Built once per list; `matches_term_list` re-lowers
/// every term on every call, which made dictionary checks the single most
/// expensive step of accessibility-text filtering at crawl scale.
struct TermIndex {
    /// `(lowercased text, term)` sorted by text; duplicate keys keep the
    /// first list occurrence, matching `matches_term_list` priority.
    entries: Vec<(String, Term)>,
}

impl TermIndex {
    fn build(list: &[Term]) -> TermIndex {
        let mut entries: Vec<(String, Term)> = Vec::with_capacity(list.len());
        for term in list {
            let key = term.text.to_lowercase();
            if !entries.iter().any(|(k, _)| *k == key) {
                entries.push((key, *term));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        TermIndex { entries }
    }

    fn lookup(&self, text: &str) -> Option<Term> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return None;
        }
        let lowered = trimmed.to_lowercase();
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(lowered.as_str()))
            .ok()
            .map(|i| self.entries[i].1)
    }
}

fn action_index() -> &'static TermIndex {
    static INDEX: std::sync::OnceLock<TermIndex> = std::sync::OnceLock::new();
    INDEX.get_or_init(|| TermIndex::build(GENERIC_ACTIONS))
}

fn placeholder_index() -> &'static TermIndex {
    static INDEX: std::sync::OnceLock<TermIndex> = std::sync::OnceLock::new();
    INDEX.get_or_init(|| TermIndex::build(PLACEHOLDERS))
}

/// Look up a generic-action term.
pub fn generic_action(text: &str) -> Option<Term> {
    action_index().lookup(text)
}

/// Look up a placeholder term.
pub fn placeholder(text: &str) -> Option<Term> {
    placeholder_index().lookup(text)
}

/// All generic actions in a given language (used by the generator to plant
/// calibrated uninformative labels).
pub fn actions_in(language: Language) -> Vec<&'static str> {
    GENERIC_ACTIONS
        .iter()
        .filter(|term| term.language == language)
        .map(|term| term.text)
        .collect()
}

/// All placeholders in a given language.
pub fn placeholders_in(language: Language) -> Vec<&'static str> {
    PLACEHOLDERS
        .iter()
        .filter(|term| term.language == language)
        .map(|term| term.text)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{script_of, Script};

    #[test]
    fn index_agrees_with_linear_term_scan() {
        // The binary-search index must return exactly what the reference
        // linear scan returns, for every term and some case variants.
        for list in [GENERIC_ACTIONS, PLACEHOLDERS] {
            for term in list {
                for probe in [
                    term.text.to_string(),
                    term.text.to_uppercase(),
                    format!("  {}  ", term.text),
                ] {
                    assert_eq!(
                        matches_term_list(&probe, list),
                        if list == GENERIC_ACTIONS {
                            generic_action(&probe)
                        } else {
                            placeholder(&probe)
                        },
                        "{probe:?}"
                    );
                }
            }
        }
        assert_eq!(generic_action("no such term"), None);
        assert_eq!(placeholder(""), None);
    }

    #[test]
    fn english_actions_match_case_insensitively() {
        assert!(generic_action("Close").is_some());
        assert!(generic_action("SEARCH").is_some());
        assert!(generic_action("  submit  ").is_some());
        assert!(generic_action("close the modal dialog").is_none());
    }

    #[test]
    fn native_actions_match_exactly() {
        assert_eq!(
            generic_action("닫기").map(|t| t.language),
            Some(Language::Korean)
        );
        assert_eq!(
            generic_action("検索").map(|t| t.language),
            Some(Language::Japanese)
        );
        assert_eq!(
            generic_action("поиск").map(|t| t.language),
            Some(Language::Russian)
        );
        assert_eq!(
            generic_action("ค้นหา").map(|t| t.language),
            Some(Language::Thai)
        );
    }

    #[test]
    fn placeholders_match() {
        assert!(placeholder("image").is_some());
        assert!(placeholder("图像").is_some());
        assert!(placeholder("תמונה").is_some());
        assert!(placeholder("an image of a cat").is_none());
    }

    #[test]
    fn empty_and_whitespace_match_nothing() {
        assert!(generic_action("").is_none());
        assert!(generic_action("   ").is_none());
        assert!(placeholder("").is_none());
    }

    #[test]
    fn every_included_language_has_actions_and_placeholders() {
        for lang in Language::INCLUDED {
            assert!(
                !actions_in(lang).is_empty(),
                "no generic actions for {:?}",
                lang
            );
            assert!(
                !placeholders_in(lang).is_empty(),
                "no placeholders for {:?}",
                lang
            );
        }
    }

    #[test]
    fn terms_are_written_in_their_languages_script() {
        for term in GENERIC_ACTIONS.iter().chain(PLACEHOLDERS.iter()) {
            let evidence = term.language.evidence_scripts();
            let ok = term.text.chars().any(|c| {
                let s = script_of(c);
                evidence.contains(&s)
            });
            // Loan words written in Latin (e.g. none currently) would fail
            // here; the dictionaries intentionally keep scripts pure.
            assert!(
                ok,
                "{:?} term {:?} has no {:?} evidence",
                term.language, term.text, evidence
            );
            // And no term may be pure-Common.
            assert!(term.text.chars().any(|c| script_of(c) != Script::Common));
        }
    }

    #[test]
    fn russian_cyrillic_case_folding() {
        assert!(generic_action("Закрыть").is_some());
        assert!(generic_action("ПОИСК").is_some());
    }
}
