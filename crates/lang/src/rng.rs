//! Deterministic seed derivation.
//!
//! Every random decision in the workspace flows from a single 64-bit
//! workspace seed, mixed with stable *stream identifiers* (country index,
//! site index, page section, element ordinal, …) through splitmix64. The
//! same `(seed, streams…)` always yields the same `StdRng`, which makes the
//! whole corpus — and therefore every table and figure — byte-reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The default workspace seed used by examples, benches and the `repro`
/// binary. Chosen arbitrarily; any seed reproduces the paper's *shapes*.
pub const DEFAULT_SEED: u64 = 0x4C61_6E67_4372_5558; // "LangCrUX"

/// One round of splitmix64 — a small, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a base seed and a list of stream identifiers.
///
/// Mixing is order-sensitive: `derive(s, &[1, 2]) != derive(s, &[2, 1])`.
pub fn derive(base: u64, streams: &[u64]) -> u64 {
    let mut state = splitmix64(base);
    for &s in streams {
        state = splitmix64(state ^ s.wrapping_mul(0xD134_2543_DE82_EF95));
    }
    state
}

/// Build a [`StdRng`] for a derived stream.
pub fn rng_for(base: u64, streams: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive(base, streams))
}

/// Hash a string into a stable stream id (FNV-1a), so hostnames and other
/// textual keys can participate in seed derivation.
pub fn stream_id(s: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(42, &[1, 2, 3]), derive(42, &[1, 2, 3]));
        let mut a = rng_for(7, &[1]);
        let mut b = rng_for(7, &[1]);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_eq!(xa, xb);
    }

    #[test]
    fn derivation_is_order_sensitive() {
        assert_ne!(derive(42, &[1, 2]), derive(42, &[2, 1]));
    }

    #[test]
    fn streams_decorrelate() {
        // Adjacent stream ids must give different seeds.
        let seeds: Vec<u64> = (0..100).map(|i| derive(DEFAULT_SEED, &[i])).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn stream_id_stable_and_distinct() {
        assert_eq!(stream_id("example.bd"), stream_id("example.bd"));
        assert_ne!(stream_id("example.bd"), stream_id("example.th"));
        assert_ne!(stream_id(""), stream_id(" "));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let diff = (a ^ b).count_ones();
        assert!((16..=48).contains(&diff), "diff = {diff}");
    }
}
