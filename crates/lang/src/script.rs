//! Unicode script classification.
//!
//! The paper's website-selection methodology (§2, "Website Selection") relies
//! on a *Unicode-based heuristic that matches visible text content against
//! script-specific character ranges*. This module is that heuristic's
//! foundation: a table of codepoint ranges for every script relevant to the
//! 26-language candidate pool, and a fast classifier from `char` to
//! [`Script`].
//!
//! Ranges are deliberately restricted to the blocks that carry *letters* of
//! the script; shared punctuation, digits, and whitespace map to
//! [`Script::Common`] so that mixed-direction pages do not skew language
//! percentages.

use serde::{Deserialize, Serialize};

/// A writing system distinguished by the measurement pipeline.
///
/// `Common` covers characters that do not discriminate between languages
/// (ASCII digits, punctuation, whitespace, symbols); `Unknown` covers
/// codepoints outside every tabulated range (private use, rare historic
/// scripts), which the pipeline treats as non-evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Script {
    Latin,
    Greek,
    Cyrillic,
    Hebrew,
    Arabic,
    Devanagari,
    Bengali,
    Gurmukhi,
    Gujarati,
    Tamil,
    Telugu,
    Kannada,
    Malayalam,
    Sinhala,
    Thai,
    Myanmar,
    Georgian,
    Ethiopic,
    Hiragana,
    Katakana,
    Han,
    Hangul,
    /// Digits, punctuation, whitespace, currency and other shared symbols.
    Common,
    /// Codepoints outside every tabulated range.
    Unknown,
}

impl Script {
    /// All distinguishing (non-`Common`, non-`Unknown`) scripts.
    pub const ALL_DISTINGUISHING: [Script; 22] = [
        Script::Latin,
        Script::Greek,
        Script::Cyrillic,
        Script::Hebrew,
        Script::Arabic,
        Script::Devanagari,
        Script::Bengali,
        Script::Gurmukhi,
        Script::Gujarati,
        Script::Tamil,
        Script::Telugu,
        Script::Kannada,
        Script::Malayalam,
        Script::Sinhala,
        Script::Thai,
        Script::Myanmar,
        Script::Georgian,
        Script::Ethiopic,
        Script::Hiragana,
        Script::Katakana,
        Script::Han,
        Script::Hangul,
    ];

    /// Human-readable script name.
    pub fn name(self) -> &'static str {
        match self {
            Script::Latin => "Latin",
            Script::Greek => "Greek",
            Script::Cyrillic => "Cyrillic",
            Script::Hebrew => "Hebrew",
            Script::Arabic => "Arabic",
            Script::Devanagari => "Devanagari",
            Script::Bengali => "Bengali",
            Script::Gurmukhi => "Gurmukhi",
            Script::Gujarati => "Gujarati",
            Script::Tamil => "Tamil",
            Script::Telugu => "Telugu",
            Script::Kannada => "Kannada",
            Script::Malayalam => "Malayalam",
            Script::Sinhala => "Sinhala",
            Script::Thai => "Thai",
            Script::Myanmar => "Myanmar",
            Script::Georgian => "Georgian",
            Script::Ethiopic => "Ethiopic",
            Script::Hiragana => "Hiragana",
            Script::Katakana => "Katakana",
            Script::Han => "Han",
            Script::Hangul => "Hangul",
            Script::Common => "Common",
            Script::Unknown => "Unknown",
        }
    }

    /// Whether the script is one of the CJK family. The filtering rules of
    /// Appendix H use a shorter "too short" threshold (1 character) for CJK
    /// because single ideographs/syllable blocks carry full words.
    pub fn is_cjk(self) -> bool {
        matches!(
            self,
            Script::Han | Script::Hiragana | Script::Katakana | Script::Hangul
        )
    }

    /// Whether text in this script reads right-to-left.
    pub fn is_rtl(self) -> bool {
        matches!(self, Script::Hebrew | Script::Arabic)
    }

    /// Dense index of a distinguishing script (declaration order); used by
    /// the fixed-size histogram. `Common`/`Unknown` have no slot.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Script::index`] for distinguishing scripts.
    #[inline]
    pub const fn from_index(i: usize) -> Script {
        Script::ALL_DISTINGUISHING[i]
    }
}

/// Number of distinguishing scripts (histogram slots).
pub const DISTINGUISHING_SCRIPTS: usize = Script::ALL_DISTINGUISHING.len();

/// An inclusive codepoint range assigned to one script.
#[derive(Debug, Clone, Copy)]
pub struct ScriptRange {
    pub start: u32,
    pub end: u32,
    pub script: Script,
}

/// The script range table, sorted by `start` and non-overlapping, enabling
/// binary search in [`script_of`].
///
/// Sources: the Unicode block allocations for each script. Only blocks that
/// contain letters used by the candidate-pool languages are included;
/// presentation forms for Arabic are mapped to `Arabic` because shaped glyphs
/// appear verbatim in scraped text.
pub const SCRIPT_RANGES: &[ScriptRange] = &[
    r(0x0041, 0x005A, Script::Latin),      // A-Z
    r(0x0061, 0x007A, Script::Latin),      // a-z
    r(0x00C0, 0x00FF, Script::Latin),      // Latin-1 letters (excl. × ÷ handled below)
    r(0x0100, 0x024F, Script::Latin),      // Latin Extended-A/B
    r(0x0370, 0x03FF, Script::Greek),      // Greek and Coptic
    r(0x0400, 0x04FF, Script::Cyrillic),   // Cyrillic
    r(0x0500, 0x052F, Script::Cyrillic),   // Cyrillic Supplement
    r(0x0590, 0x05FF, Script::Hebrew),     // Hebrew
    r(0x0600, 0x06FF, Script::Arabic),     // Arabic
    r(0x0750, 0x077F, Script::Arabic),     // Arabic Supplement
    r(0x08A0, 0x08FF, Script::Arabic),     // Arabic Extended-A
    r(0x0900, 0x097F, Script::Devanagari), // Devanagari
    r(0x0980, 0x09FF, Script::Bengali),    // Bengali
    r(0x0A00, 0x0A7F, Script::Gurmukhi),   // Gurmukhi
    r(0x0A80, 0x0AFF, Script::Gujarati),   // Gujarati
    r(0x0B80, 0x0BFF, Script::Tamil),      // Tamil
    r(0x0C00, 0x0C7F, Script::Telugu),     // Telugu
    r(0x0C80, 0x0CFF, Script::Kannada),    // Kannada
    r(0x0D00, 0x0D7F, Script::Malayalam),  // Malayalam
    r(0x0D80, 0x0DFF, Script::Sinhala),    // Sinhala
    r(0x0E00, 0x0E7F, Script::Thai),       // Thai
    r(0x1000, 0x109F, Script::Myanmar),    // Myanmar
    r(0x10A0, 0x10FF, Script::Georgian),   // Georgian
    r(0x1100, 0x11FF, Script::Hangul),     // Hangul Jamo
    r(0x1200, 0x137F, Script::Ethiopic),   // Ethiopic
    r(0x13A0, 0x13FF, Script::Unknown),    // Cherokee (not in pool; explicit non-evidence)
    r(0x1780, 0x17FF, Script::Unknown),    // Khmer (not in pool)
    r(0x1C90, 0x1CBF, Script::Georgian),   // Georgian Extended
    r(0x1E00, 0x1EFF, Script::Latin),      // Latin Extended Additional
    r(0x1F00, 0x1FFF, Script::Greek),      // Greek Extended
    r(0x3040, 0x309F, Script::Hiragana),   // Hiragana
    r(0x30A0, 0x30FF, Script::Katakana),   // Katakana
    r(0x3130, 0x318F, Script::Hangul),     // Hangul Compatibility Jamo
    r(0x31F0, 0x31FF, Script::Katakana),   // Katakana Phonetic Extensions
    r(0x3400, 0x4DBF, Script::Han),        // CJK Extension A
    r(0x4E00, 0x9FFF, Script::Han),        // CJK Unified Ideographs
    r(0xA8E0, 0xA8FF, Script::Devanagari), // Devanagari Extended
    r(0xAC00, 0xD7AF, Script::Hangul),     // Hangul Syllables
    r(0xF900, 0xFAFF, Script::Han),        // CJK Compatibility Ideographs
    r(0xFB1D, 0xFB4F, Script::Hebrew),     // Hebrew Presentation Forms
    r(0xFB50, 0xFDFF, Script::Arabic),     // Arabic Presentation Forms-A
    r(0xFE70, 0xFEFF, Script::Arabic),     // Arabic Presentation Forms-B
    r(0x20000, 0x2A6DF, Script::Han),      // CJK Extension B
];

const fn r(start: u32, end: u32, script: Script) -> ScriptRange {
    ScriptRange { start, end, script }
}

/// The flat classification table driving [`script_of`]: `SCRIPT_RANGES`
/// merged with the shared-character (`Common`) ranges that the old
/// implementation special-cased with per-call branch chains — the Latin-1
/// `×`/`÷` signs, general punctuation and symbols (U+2000–U+2BFF), and CJK
/// punctuation (U+3000–U+303F). Sorted and disjoint, so one binary search
/// classifies any non-ASCII character; a parallel `starts` array keeps the
/// search cache-friendly.
const LOOKUP_RANGES: &[ScriptRange] = &[
    r(0x0041, 0x005A, Script::Latin),
    r(0x0061, 0x007A, Script::Latin),
    r(0x00C0, 0x00D6, Script::Latin),
    r(0x00D7, 0x00D7, Script::Common), // multiplication sign
    r(0x00D8, 0x00F6, Script::Latin),
    r(0x00F7, 0x00F7, Script::Common), // division sign
    r(0x00F8, 0x00FF, Script::Latin),
    r(0x0100, 0x024F, Script::Latin),
    r(0x0370, 0x03FF, Script::Greek),
    r(0x0400, 0x04FF, Script::Cyrillic),
    r(0x0500, 0x052F, Script::Cyrillic),
    r(0x0590, 0x05FF, Script::Hebrew),
    r(0x0600, 0x06FF, Script::Arabic),
    r(0x0750, 0x077F, Script::Arabic),
    r(0x08A0, 0x08FF, Script::Arabic),
    r(0x0900, 0x097F, Script::Devanagari),
    r(0x0980, 0x09FF, Script::Bengali),
    r(0x0A00, 0x0A7F, Script::Gurmukhi),
    r(0x0A80, 0x0AFF, Script::Gujarati),
    r(0x0B80, 0x0BFF, Script::Tamil),
    r(0x0C00, 0x0C7F, Script::Telugu),
    r(0x0C80, 0x0CFF, Script::Kannada),
    r(0x0D00, 0x0D7F, Script::Malayalam),
    r(0x0D80, 0x0DFF, Script::Sinhala),
    r(0x0E00, 0x0E7F, Script::Thai),
    r(0x1000, 0x109F, Script::Myanmar),
    r(0x10A0, 0x10FF, Script::Georgian),
    r(0x1100, 0x11FF, Script::Hangul),
    r(0x1200, 0x137F, Script::Ethiopic),
    r(0x13A0, 0x13FF, Script::Unknown), // Cherokee (not in pool)
    r(0x1780, 0x17FF, Script::Unknown), // Khmer (not in pool)
    r(0x1C90, 0x1CBF, Script::Georgian),
    r(0x1E00, 0x1EFF, Script::Latin),
    r(0x1F00, 0x1FFF, Script::Greek),
    r(0x2000, 0x2BFF, Script::Common), // punctuation, symbols, arrows
    r(0x3000, 0x303F, Script::Common), // CJK punctuation
    r(0x3040, 0x309F, Script::Hiragana),
    r(0x30A0, 0x30FF, Script::Katakana),
    r(0x3130, 0x318F, Script::Hangul),
    r(0x31F0, 0x31FF, Script::Katakana),
    r(0x3400, 0x4DBF, Script::Han),
    r(0x4E00, 0x9FFF, Script::Han),
    r(0xA8E0, 0xA8FF, Script::Devanagari),
    r(0xAC00, 0xD7AF, Script::Hangul),
    r(0xF900, 0xFAFF, Script::Han),
    r(0xFB1D, 0xFB4F, Script::Hebrew),
    r(0xFB50, 0xFDFF, Script::Arabic),
    r(0xFE70, 0xFEFF, Script::Arabic),
    r(0x20000, 0x2A6DF, Script::Han),
];

/// Range starts extracted into a flat array so the hot binary search scans
/// contiguous `u32`s instead of striding over 12-byte `ScriptRange`s.
const LOOKUP_STARTS: [u32; LOOKUP_RANGES.len()] = {
    let mut starts = [0u32; LOOKUP_RANGES.len()];
    let mut i = 0;
    while i < LOOKUP_RANGES.len() {
        starts[i] = LOOKUP_RANGES[i].start;
        i += 1;
    }
    starts
};

/// Direct classification table for the ASCII fast path.
const ASCII_TABLE: [Script; 128] = {
    let mut table = [Script::Common; 128];
    let mut i = b'A';
    while i <= b'Z' {
        table[i as usize] = Script::Latin;
        i += 1;
    }
    let mut i = b'a';
    while i <= b'z' {
        table[i as usize] = Script::Latin;
        i += 1;
    }
    table
};

/// Classify a single character into a [`Script`].
///
/// ASCII digits, punctuation, whitespace and symbols return
/// [`Script::Common`]; characters inside a tabulated block return that
/// block's script; everything else returns [`Script::Unknown`]. The lookup
/// is fully table-driven: a 128-entry direct table for ASCII, then one
/// binary search over the merged `LOOKUP_RANGES` table — no per-call
/// chains of range comparisons.
///
/// ```
/// use langcrux_lang::script::{script_of, Script};
/// assert_eq!(script_of('a'), Script::Latin);
/// assert_eq!(script_of('ক'), Script::Bengali);
/// assert_eq!(script_of('7'), Script::Common);
/// assert_eq!(script_of('한'), Script::Hangul);
/// ```
#[inline]
pub fn script_of(c: char) -> Script {
    let cp = c as u32;
    if cp < 0x80 {
        return ASCII_TABLE[cp as usize];
    }
    // Index of the last range whose start is <= cp, if any.
    let idx = LOOKUP_STARTS.partition_point(|&start| start <= cp);
    if idx > 0 {
        let range = &LOOKUP_RANGES[idx - 1];
        if cp <= range.end {
            return range.script;
        }
    }
    // Gaps: whitespace not covered by a table range (NBSP, NEL, Ogham
    // space, …) counts as Common; everything else is non-evidence.
    if c.is_whitespace() {
        Script::Common
    } else {
        Script::Unknown
    }
}

/// Histogram of scripts in a string, counted over characters.
///
/// This is the core primitive behind the paper's 50%-native-content
/// threshold: count characters per script, ignore `Common`, and compare
/// the target script share against the total of distinguishing characters.
///
/// Counts live in a fixed `[usize; 22]` indexed by [`Script::index`], so a
/// histogram is a small stack value — `push` is two array increments with
/// no allocation or linear probing, and per-label classification can build
/// one on the stack for every accessibility element without touching the
/// heap.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScriptHistogram {
    counts: [usize; DISTINGUISHING_SCRIPTS],
    /// Characters classified as `Common` (not part of any share).
    pub common: usize,
    /// Characters classified as `Unknown`.
    pub unknown: usize,
    /// Total characters seen (including common/unknown).
    pub total: usize,
}

impl ScriptHistogram {
    /// Count scripts over all chars of `text`.
    pub fn of(text: &str) -> Self {
        let mut hist = ScriptHistogram::default();
        for c in text.chars() {
            hist.push(c);
        }
        hist
    }

    /// Add a single character to the histogram.
    #[inline]
    pub fn push(&mut self, c: char) {
        self.total += 1;
        match script_of(c) {
            Script::Common => self.common += 1,
            Script::Unknown => self.unknown += 1,
            s => self.counts[s.index()] += 1,
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &ScriptHistogram) {
        self.common += other.common;
        self.unknown += other.unknown;
        self.total += other.total;
        for (slot, n) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += n;
        }
    }

    /// Count of characters in a given script.
    #[inline]
    pub fn count(&self, script: Script) -> usize {
        match script {
            Script::Common | Script::Unknown => 0,
            s => self.counts[s.index()],
        }
    }

    /// Total count of distinguishing (non-common, non-unknown) characters.
    pub fn distinguishing_total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Share (0.0–1.0) of `script` among distinguishing characters.
    /// Returns `None` when the text has no distinguishing characters.
    pub fn share(&self, script: Script) -> Option<f64> {
        let total = self.distinguishing_total();
        if total == 0 {
            None
        } else {
            Some(self.count(script) as f64 / total as f64)
        }
    }

    /// The script with the highest count, if any distinguishing chars exist.
    /// Ties break toward the lower-ordered `Script` variant so the result is
    /// deterministic.
    pub fn dominant(&self) -> Option<Script> {
        let mut best: Option<(usize, usize)> = None; // (index, count)
        for (i, &n) in self.counts.iter().enumerate() {
            if n > 0 && best.is_none_or(|(_, b)| n > b) {
                best = Some((i, n));
            }
        }
        best.map(|(i, _)| Script::from_index(i))
    }

    /// Iterate over `(script, count)` pairs for scripts that are present,
    /// in [`Script`] declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (Script, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Script::from_index(i), n))
    }

    /// Number of distinct distinguishing scripts present.
    pub fn script_count(&self) -> usize {
        self.counts.iter().filter(|&&n| n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_sorted_and_disjoint() {
        for w in SCRIPT_RANGES.windows(2) {
            assert!(
                w[0].end < w[1].start,
                "ranges overlap or unsorted: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        for range in SCRIPT_RANGES {
            assert!(range.start <= range.end, "inverted range {:?}", range);
        }
    }

    #[test]
    fn lookup_table_is_sorted_and_disjoint() {
        for w in LOOKUP_RANGES.windows(2) {
            assert!(
                w[0].end < w[1].start,
                "lookup ranges overlap or unsorted: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        for range in LOOKUP_RANGES {
            assert!(range.start <= range.end, "inverted range {:?}", range);
        }
    }

    #[test]
    fn lookup_table_covers_script_ranges() {
        // Every letter range of the documentation table classifies to the
        // same script through the merged lookup table (spot-check range
        // edges plus midpoints).
        for range in SCRIPT_RANGES {
            for cp in [range.start, (range.start + range.end) / 2, range.end] {
                if let Some(c) = char::from_u32(cp) {
                    assert_eq!(script_of(c), range.script, "U+{cp:04X} misclassified");
                }
            }
        }
    }

    #[test]
    fn script_index_round_trips() {
        for (i, s) in Script::ALL_DISTINGUISHING.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Script::from_index(i), *s);
        }
    }

    #[test]
    fn whitespace_gaps_are_common() {
        // Whitespace outside every table range must stay Common.
        for c in ['\u{A0}', '\u{85}', '\u{1680}', '\u{2028}', '\u{3000}'] {
            assert_eq!(script_of(c), Script::Common, "{c:?}");
        }
    }

    #[test]
    fn ascii_classification() {
        assert_eq!(script_of('a'), Script::Latin);
        assert_eq!(script_of('Z'), Script::Latin);
        assert_eq!(script_of('0'), Script::Common);
        assert_eq!(script_of(' '), Script::Common);
        assert_eq!(script_of('-'), Script::Common);
        assert_eq!(script_of('!'), Script::Common);
    }

    #[test]
    fn non_latin_scripts() {
        assert_eq!(script_of('क'), Script::Devanagari); // U+0915
        assert_eq!(script_of('ক'), Script::Bengali); // U+0995
        assert_eq!(script_of('ا'), Script::Arabic); // U+0627
        assert_eq!(script_of('א'), Script::Hebrew); // U+05D0
        assert_eq!(script_of('Ω'), Script::Greek); // U+03A9
        assert_eq!(script_of('Я'), Script::Cyrillic); // U+042F
        assert_eq!(script_of('ก'), Script::Thai); // U+0E01
        assert_eq!(script_of('中'), Script::Han); // U+4E2D
        assert_eq!(script_of('あ'), Script::Hiragana); // U+3042
        assert_eq!(script_of('ア'), Script::Katakana); // U+30A2
        assert_eq!(script_of('한'), Script::Hangul); // U+D55C
        assert_eq!(script_of('த'), Script::Tamil); // U+0BA4
        assert_eq!(script_of("తె".chars().next().unwrap()), Script::Telugu);
        assert_eq!(script_of('ම'), Script::Sinhala); // U+0DB8
        assert_eq!(script_of('ქ'), Script::Georgian); // U+10E5
        assert_eq!(script_of('မ'), Script::Myanmar); // U+1019
        assert_eq!(script_of('አ'), Script::Ethiopic); // U+12A0
    }

    #[test]
    fn latin1_signs_are_common() {
        assert_eq!(script_of('×'), Script::Common);
        assert_eq!(script_of('÷'), Script::Common);
        assert_eq!(script_of('é'), Script::Latin);
    }

    #[test]
    fn cjk_punctuation_is_common() {
        assert_eq!(script_of('。'), Script::Common); // U+3002 ideographic full stop
        assert_eq!(script_of('「'), Script::Common); // U+300C corner bracket
    }

    #[test]
    fn presentation_forms() {
        assert_eq!(script_of('\u{FB50}'), Script::Arabic);
        assert_eq!(script_of('\u{FE70}'), Script::Arabic);
        assert_eq!(script_of('\u{FB1D}'), Script::Hebrew);
    }

    #[test]
    fn histogram_counts_and_share() {
        let h = ScriptHistogram::of("হ্যালো hello 123");
        assert!(h.count(Script::Bengali) > 0);
        assert_eq!(h.count(Script::Latin), 5);
        assert!(h.common >= 5); // digits + spaces
        let share = h.share(Script::Latin).unwrap();
        assert!(share > 0.0 && share < 1.0);
    }

    #[test]
    fn histogram_empty_text() {
        let h = ScriptHistogram::of("");
        assert_eq!(h.total, 0);
        assert_eq!(h.share(Script::Latin), None);
        assert_eq!(h.dominant(), None);
    }

    #[test]
    fn histogram_pure_common() {
        let h = ScriptHistogram::of("12345 !!! ...");
        assert_eq!(h.distinguishing_total(), 0);
        assert_eq!(h.share(Script::Thai), None);
        assert_eq!(h.dominant(), None);
    }

    #[test]
    fn histogram_dominant() {
        // 15 Latin letters vs 12 Cyrillic letters -> Latin dominates.
        let h = ScriptHistogram::of("Русский текст with some English");
        assert_eq!(h.count(Script::Cyrillic), 12);
        assert_eq!(h.count(Script::Latin), 15);
        assert_eq!(h.dominant(), Some(Script::Latin));

        let h = ScriptHistogram::of("Русский текст коротко en");
        assert_eq!(h.dominant(), Some(Script::Cyrillic));
    }

    #[test]
    fn histogram_merge() {
        let mut a = ScriptHistogram::of("hello");
        let b = ScriptHistogram::of("мир");
        a.merge(&b);
        assert_eq!(a.count(Script::Latin), 5);
        assert_eq!(a.count(Script::Cyrillic), 3);
        assert_eq!(a.total, 8);
    }

    #[test]
    fn cjk_and_rtl_flags() {
        assert!(Script::Han.is_cjk());
        assert!(Script::Hangul.is_cjk());
        assert!(!Script::Thai.is_cjk());
        assert!(Script::Arabic.is_rtl());
        assert!(Script::Hebrew.is_rtl());
        assert!(!Script::Greek.is_rtl());
    }
}
