//! Per-client fairness: a token bucket per peer identity, enforced at
//! the admission layer of both serve cores.
//!
//! The governor bounds *total* concurrency; this module bounds how much
//! of that capacity one peer may consume. Each peer IP owns a token
//! bucket refilled at [`FairnessConfig::rate_per_sec`] up to a burst
//! cap; a request arriving at an empty bucket is answered
//! `429 Too Many Requests` + `Retry-After` and the connection closes —
//! the same shed discipline as the governor's 503, one layer up.
//!
//! All bucket arithmetic is integer micro-tokens on an injected
//! microsecond clock, so refill math, burst behaviour, and multi-peer
//! isolation are unit-tested without sockets or sleeps (the same
//! virtual-clock discipline as the crawl layer's retry/backoff engine).
//! Fairness is off by default (`ServeConfig::fairness: None`): the
//! differential suite replays identical traffic against both cores with
//! and without it.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// One token = this many micro-tokens; integer math keeps refill exact.
const MICRO: u64 = 1_000_000;

/// Most peers tracked before quiet (full-bucket) entries are pruned.
/// Bounds limiter memory under an address-diverse connection flood.
const MAX_TRACKED_PEERS: usize = 4096;

/// Per-peer rate limit. `rate_per_sec` tokens refill continuously up to
/// `burst`; every admitted request spends one token.
#[derive(Debug, Clone, Copy)]
pub struct FairnessConfig {
    /// Sustained per-peer request rate (tokens per second).
    pub rate_per_sec: u32,
    /// Bucket capacity: how many requests a peer may front-load.
    pub burst: u32,
    /// `Retry-After` hint on the 429 answer.
    pub retry_after_secs: u32,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            rate_per_sec: 50,
            burst: 100,
            retry_after_secs: 1,
        }
    }
}

/// One peer's bucket: micro-tokens plus the last refill timestamp.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    micro: u64,
    last_us: u64,
}

impl TokenBucket {
    /// A bucket born full — a new peer gets its whole burst.
    pub fn full(burst: u32) -> Self {
        TokenBucket {
            micro: burst as u64 * MICRO,
            last_us: 0,
        }
    }

    /// Refill for the elapsed time, then try to spend one token.
    /// `now_us` is monotonic; a stale timestamp refills nothing.
    pub fn try_take(&mut self, now_us: u64, rate_per_sec: u32, burst: u32) -> bool {
        let elapsed_us = now_us.saturating_sub(self.last_us);
        self.last_us = self.last_us.max(now_us);
        // tokens/sec × µs elapsed = micro-tokens accrued, exactly.
        self.micro = self
            .micro
            .saturating_add(elapsed_us.saturating_mul(rate_per_sec as u64))
            .min(burst as u64 * MICRO);
        if self.micro >= MICRO {
            self.micro -= MICRO;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (diagnostics and tests).
    pub fn tokens(&self) -> u64 {
        self.micro / MICRO
    }
}

/// The per-peer limiter shared by every connection of one server.
pub struct PeerLimiter {
    config: FairnessConfig,
    epoch: Instant,
    peers: Mutex<HashMap<IpAddr, TokenBucket>>,
}

impl PeerLimiter {
    pub fn new(config: FairnessConfig) -> Self {
        PeerLimiter {
            config,
            epoch: Instant::now(),
            peers: Mutex::new(HashMap::new()),
        }
    }

    /// Admit or refuse one request from `peer` at the real clock.
    pub fn admit(&self, peer: IpAddr) -> bool {
        self.admit_at(peer, self.epoch.elapsed().as_micros() as u64)
    }

    /// Admit or refuse at an explicit microsecond timestamp — the
    /// virtual-clock entry point the unit tests drive.
    pub fn admit_at(&self, peer: IpAddr, now_us: u64) -> bool {
        let mut peers = self.peers.lock().expect("fairness lock");
        if peers.len() >= MAX_TRACKED_PEERS && !peers.contains_key(&peer) {
            // Keep only peers a refill leaves drained — the buckets
            // actively refusing traffic, whose state is load-bearing.
            // Everyone else resets to a full bucket on next contact: a
            // bounded token gift, the price of bounded memory under an
            // address-diverse connection flood.
            let (rate, burst) = (self.config.rate_per_sec, self.config.burst);
            peers.retain(|_, bucket| {
                let mut probe = *bucket;
                !probe.try_take(now_us, rate, burst)
            });
        }
        peers
            .entry(peer)
            .or_insert_with(|| TokenBucket::full(self.config.burst))
            .try_take(now_us, self.config.rate_per_sec, self.config.burst)
    }

    /// The configured `Retry-After` hint for 429 answers.
    pub fn retry_after_secs(&self) -> u32 {
        self.config.retry_after_secs
    }

    /// Peers currently tracked (diagnostics and tests).
    pub fn tracked_peers(&self) -> usize {
        self.peers.lock().expect("fairness lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn refill_math_is_exact() {
        let mut bucket = TokenBucket::full(5);
        // Drain the full burst at t=0.
        for i in 0..5 {
            assert!(bucket.try_take(0, 10, 5), "burst token {i}");
        }
        assert!(!bucket.try_take(0, 10, 5), "empty bucket must refuse");
        // 10 tokens/s → one token every 100 ms. At +99 ms: still short.
        assert!(!bucket.try_take(99_000, 10, 5));
        // At +100 ms exactly one token has accrued.
        assert!(bucket.try_take(100_000, 10, 5));
        assert!(!bucket.try_take(100_000, 10, 5));
        // Fractional refill accumulates: two half-tokens make one.
        assert!(!bucket.try_take(150_000, 10, 5));
        assert!(bucket.try_take(200_000, 10, 5));
    }

    #[test]
    fn burst_cap_bounds_idle_accrual() {
        let mut bucket = TokenBucket::full(3);
        // An hour idle refills to the cap, not to rate × elapsed.
        for _ in 0..3 {
            assert!(bucket.try_take(3_600_000_000, 100, 3));
        }
        assert!(
            !bucket.try_take(3_600_000_000, 100, 3),
            "burst cap must hold after long idle"
        );
        assert_eq!(bucket.tokens(), 0);
    }

    #[test]
    fn stale_clock_refills_nothing() {
        let mut bucket = TokenBucket::full(1);
        assert!(bucket.try_take(1_000_000, 1, 1));
        // A now_us earlier than last_us (clock skew) must not mint
        // tokens via underflow.
        assert!(!bucket.try_take(500_000, 1, 1));
        assert!(bucket.try_take(2_000_000, 1, 1));
    }

    #[test]
    fn peers_are_isolated() {
        let limiter = PeerLimiter::new(FairnessConfig {
            rate_per_sec: 1,
            burst: 2,
            retry_after_secs: 1,
        });
        // Peer A exhausts its bucket…
        assert!(limiter.admit_at(ip(1), 0));
        assert!(limiter.admit_at(ip(1), 0));
        assert!(!limiter.admit_at(ip(1), 0));
        // …while peer B's bucket is untouched.
        assert!(limiter.admit_at(ip(2), 0));
        assert!(limiter.admit_at(ip(2), 0));
        assert_eq!(limiter.tracked_peers(), 2);
    }

    /// The two-peer torture: a greedy peer hammering far above the rate
    /// collects 429s while a quiet peer under the rate is never refused
    /// — and never even has to wait (its bucket stays stocked, which is
    /// what "latency stays flat" means with a virtual clock).
    #[test]
    fn greedy_peer_sheds_while_quiet_peer_stays_flat() {
        let config = FairnessConfig {
            rate_per_sec: 10,
            burst: 20,
            retry_after_secs: 1,
        };
        let limiter = PeerLimiter::new(config);
        let (greedy, quiet) = (ip(66), ip(7));
        let mut greedy_ok = 0u64;
        let mut greedy_denied = 0u64;
        let mut quiet_min_tokens = u64::MAX;
        // 10 simulated seconds. Greedy: 200 req/s (every 5 ms). Quiet:
        // 2 req/s (every 500 ms), well under the 10/s rate.
        for ms in 0..10_000u64 {
            let now_us = ms * 1_000;
            if ms % 5 == 0 {
                if limiter.admit_at(greedy, now_us) {
                    greedy_ok += 1;
                } else {
                    greedy_denied += 1;
                }
            }
            if ms % 500 == 0 {
                // Flat latency: the quiet peer's bucket must hold spare
                // tokens at every arrival, so admission is immediate.
                let bucket = *limiter
                    .peers
                    .lock()
                    .unwrap()
                    .entry(quiet)
                    .or_insert_with(|| TokenBucket::full(config.burst));
                quiet_min_tokens = quiet_min_tokens.min(bucket.tokens());
                assert!(
                    limiter.admit_at(quiet, now_us),
                    "quiet peer refused at {ms} ms"
                );
            }
        }
        // Greedy gets exactly burst + rate × 10 s admissions (±1 for
        // boundary ticks) and a pile of denials.
        let expected = (config.burst + config.rate_per_sec * 10) as u64;
        assert!(
            greedy_ok >= expected - 1 && greedy_ok <= expected + 1,
            "greedy admitted {greedy_ok}, expected ≈{expected}"
        );
        assert!(
            greedy_denied > 1_500,
            "greedy must shed the bulk of its flood, denied only {greedy_denied}"
        );
        assert!(
            quiet_min_tokens >= config.burst as u64 - 1,
            "quiet peer's bucket dipped to {quiet_min_tokens}"
        );
    }

    #[test]
    fn pruning_keeps_active_peers() {
        let limiter = PeerLimiter::new(FairnessConfig {
            rate_per_sec: 1,
            burst: 4,
            retry_after_secs: 1,
        });
        // An address-diverse flood: every /32 in a /16 touches once.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                limiter.admit_at(IpAddr::from([10, 0, a, b]), 0);
            }
        }
        assert!(
            limiter.tracked_peers() <= MAX_TRACKED_PEERS + 1,
            "limiter memory unbounded: {}",
            limiter.tracked_peers()
        );
        // A drained (active) peer survives pruning pressure: its bucket
        // state still matters.
        let hot = ip(99);
        for _ in 0..4 {
            limiter.admit_at(hot, 0);
        }
        assert!(!limiter.admit_at(hot, 0), "hot peer should be drained");
        for a in 0..=255u8 {
            limiter.admit_at(IpAddr::from([11, 1, 1, a]), 0);
        }
        assert!(
            !limiter.admit_at(hot, 0),
            "drained peer's state must survive pruning"
        );
    }
}
