//! Loopback load generator for the audit service.
//!
//! Drives a running server with `connections` concurrent keep-alive
//! clients, each issuing `POST /v1/audit` requests round-robin over a
//! shared page list, and reports throughput plus exact (not bucketed)
//! p50/p99 client-side latency. The `repro --serve-bench` harness runs it
//! twice — once over all-distinct pages (cold: every request is a cache
//! miss and a full parse+audit) and once re-visiting the same pages (hot:
//! every request answers from the sharded cache) — and writes both runs
//! to `BENCH_serve.json`.

use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One load-generation run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadGenRun {
    pub connections: usize,
    pub requests: usize,
    /// Responses with a non-200 status (0 on a healthy run).
    pub errors: usize,
    pub duration_ms: f64,
    pub req_per_sec: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

/// Pull more bytes from the socket into `buf`, erroring on EOF.
fn read_more(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<()> {
    let mut byte = [0u8; 2048];
    let n = stream.read(&mut byte)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    buf.extend_from_slice(&byte[..n]);
    Ok(())
}

/// Read one HTTP/1.1 response: status + body, de-chunked if the server
/// answered with `Transfer-Encoding: chunked` (the streaming `/v1/batch`
/// path), `Content-Length`-delimited otherwise.
///
/// `scratch` is the connection's read buffer: exactly one response is
/// consumed from it, and any pipelined surplus is *left in it* for the
/// next call — so pass the same buffer for the lifetime of a connection.
pub fn read_response(
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let head_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        read_more(stream, scratch)?;
    };
    let head = std::str::from_utf8(&scratch[..head_end])
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 head"))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let header = |name: &str| {
        head.lines().find_map(|line| {
            let (n, value) = line.split_once(':')?;
            n.eq_ignore_ascii_case(name).then(|| value.trim())
        })
    };
    let chunked = header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let content_length: Option<usize> = header("content-length").and_then(|v| v.parse().ok());
    scratch.drain(..head_end + 4);

    if chunked {
        let decoded = dechunk(stream, scratch)?;
        return Ok((status, decoded));
    }
    let content_length = content_length.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
    })?;
    while scratch.len() < content_length {
        read_more(stream, scratch)?;
    }
    let body: Vec<u8> = scratch.drain(..content_length).collect();
    Ok((status, body))
}

/// Decode a chunked response body out of `buf` (pulling from the socket
/// as needed), leaving any pipelined surplus in `buf`. Trailers are
/// consumed and discarded.
fn dechunk(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<Vec<u8>> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut decoded = Vec::new();
    loop {
        // One complete `size\r\n` line.
        let eol = loop {
            if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            read_more(stream, buf)?;
        };
        let line = std::str::from_utf8(&buf[..eol]).map_err(|_| bad("non-utf8 chunk size"))?;
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| bad("bad chunk size"))?;
        buf.drain(..eol + 2);
        if size == 0 {
            // Trailers (the server sends none, but consume defensively)
            // up to and including the final empty line.
            loop {
                let eol = loop {
                    if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                        break pos;
                    }
                    read_more(stream, buf)?;
                };
                buf.drain(..eol + 2);
                if eol == 0 {
                    return Ok(decoded);
                }
            }
        }
        while buf.len() < size + 2 {
            read_more(stream, buf)?;
        }
        decoded.extend_from_slice(&buf[..size]);
        if &buf[size..size + 2] != b"\r\n" {
            return Err(bad("missing chunk data CRLF"));
        }
        buf.drain(..size + 2);
    }
}

/// Issue one `POST` and wait for the response.
pub fn post(
    stream: &mut TcpStream,
    path: &str,
    body: &[u8],
    scratch: &mut Vec<u8>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let mut request = Vec::with_capacity(head.len() + body.len());
    request.extend_from_slice(head.as_bytes());
    request.extend_from_slice(body);
    stream.write_all(&request)?;
    read_response(stream, scratch)
}

/// Issue one `GET` and wait for the response.
pub fn get(
    stream: &mut TcpStream,
    path: &str,
    scratch: &mut Vec<u8>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    read_response(stream, scratch)
}

/// Drive `total_requests` audits over `connections` concurrent keep-alive
/// connections. Request `i` posts `pages[i % pages.len()]`; requests are
/// pre-partitioned round-robin across connections.
pub fn run_load(
    addr: SocketAddr,
    pages: &[String],
    connections: usize,
    total_requests: usize,
) -> std::io::Result<LoadGenRun> {
    assert!(!pages.is_empty(), "need at least one page");
    let connections = connections.max(1).min(total_requests.max(1));
    let started = Instant::now();

    let results: Vec<std::io::Result<(Vec<u64>, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || -> std::io::Result<(Vec<u64>, usize)> {
                    let mut stream = TcpStream::connect(addr)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                    let mut scratch = Vec::with_capacity(64 * 1024);
                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    let mut i = c;
                    while i < total_requests {
                        let page = &pages[i % pages.len()];
                        let begin = Instant::now();
                        let (status, _body) =
                            post(&mut stream, "/v1/audit", page.as_bytes(), &mut scratch)?;
                        latencies.push(begin.elapsed().as_micros() as u64);
                        if status != 200 {
                            errors += 1;
                        }
                        i += connections;
                    }
                    Ok((latencies, errors))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });

    let duration = started.elapsed();
    let mut latencies = Vec::with_capacity(total_requests);
    let mut errors = 0usize;
    for result in results {
        let (lat, err) = result?;
        latencies.extend(lat);
        errors += err;
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1] as f64 / 1_000.0
    };
    let duration_ms = duration.as_secs_f64() * 1e3;
    Ok(LoadGenRun {
        connections,
        requests: latencies.len(),
        errors,
        duration_ms,
        req_per_sec: latencies.len() as f64 / duration.as_secs_f64().max(1e-9),
        p50_ms: quantile(0.50),
        p99_ms: quantile(0.99),
        max_ms: latencies.last().copied().unwrap_or(0) as f64 / 1_000.0,
    })
}

/// One high-concurrency run: a large fleet of mostly-idle keep-alive
/// connections held open for the whole measurement while a hot subset
/// drives audits at full tilt.
#[derive(Debug, Clone, Serialize)]
pub struct IdleLoadRun {
    /// Idle keep-alive connections held open during the hot run.
    pub idle_connections: usize,
    /// The hot subset's measured run.
    pub hot: LoadGenRun,
}

/// Hold `idle_connections` keep-alive connections open (each completes
/// one `/v1/healthz` round-trip so it is fully registered server-side,
/// then sits silent) while `hot_connections` drive `total_requests`
/// audits. This is the reactor's design case — mostly-idle fleets cost
/// a thread each on the threaded core but only a registered fd plus an
/// idle wheel entry on the reactor.
pub fn run_idle_load(
    addr: SocketAddr,
    pages: &[String],
    idle_connections: usize,
    hot_connections: usize,
    total_requests: usize,
) -> std::io::Result<IdleLoadRun> {
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_connections);
    let mut scratch = Vec::new();
    for i in 0..idle_connections {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        scratch.clear();
        let (status, _body) = get(&mut stream, "/v1/healthz", &mut scratch)?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "idle connection {i} refused with status {status}"
            )));
        }
        idle.push(stream);
    }
    let hot = run_load(addr, pages, hot_connections, total_requests)?;
    drop(idle);
    Ok(IdleLoadRun {
        idle_connections,
        hot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{spawn, ServeConfig};

    const PAGE: &str = "<html lang=el><head><title>Πύλη</title></head><body>\
        <p>Καλώς ήρθατε στην εθνική πύλη ενημέρωσης πολιτών.</p>\
        <img src=a alt=\"άποψη του λιμανιού\"></body></html>";

    #[test]
    fn loadgen_round_trips_against_a_live_server() {
        let server = spawn(ServeConfig::default()).expect("spawn server");
        let pages: Vec<String> = (0..6)
            .map(|i| PAGE.replace("λιμανιού", &format!("λιμανιού {i}")))
            .collect();
        let run = run_load(server.addr(), &pages, 3, 24).expect("load run");
        assert_eq!(run.requests, 24);
        assert_eq!(run.errors, 0);
        assert!(run.req_per_sec > 0.0);
        assert!(run.p50_ms <= run.p99_ms);
        assert!(run.p99_ms <= run.max_ms + 1e-9);
        // 6 distinct pages visited 24 times: 6 misses, 18 hits.
        let stats = server.shutdown();
        assert_eq!(stats.cache.misses, 6);
        assert_eq!(stats.cache.hits, 18);
        assert_eq!(stats.requests.audit, 24);
    }

    #[test]
    fn idle_fleet_rides_along_without_disturbing_the_hot_subset() {
        let server = spawn(ServeConfig {
            max_connections: 128,
            ..ServeConfig::default()
        })
        .expect("spawn server");
        let pages = vec![PAGE.to_string()];
        let run = run_idle_load(server.addr(), &pages, 32, 2, 16).expect("idle load run");
        assert_eq!(run.idle_connections, 32);
        assert_eq!(run.hot.requests, 16);
        assert_eq!(run.hot.errors, 0);
        let stats = server.shutdown();
        // Every idle connection completed its healthz registration.
        assert_eq!(stats.requests.healthz, 32);
        assert_eq!(stats.requests.audit, 16);
    }

    #[test]
    fn connections_clamped_to_requests() {
        let server = spawn(ServeConfig::default()).expect("spawn server");
        let run = run_load(server.addr(), &[PAGE.to_string()], 8, 2).expect("load run");
        assert_eq!(run.connections, 2);
        assert_eq!(run.requests, 2);
        server.shutdown();
    }
}
