//! Request telemetry: per-endpoint counters and a lock-free latency
//! histogram with p50/p99 readout.
//!
//! The histogram uses fixed bucket edges (linear 25 µs steps under 1 ms,
//! 1 ms steps to 100 ms, 100 ms steps to 6.1 s, then one overflow bucket)
//! so recording is a single relaxed atomic increment on the hot path and
//! quantiles are a cumulative walk at read time. Reported quantiles are
//! bucket upper bounds — a ≤ 25 µs quantisation under 1 ms, which is
//! plenty for a req/s benchmark and costs no locking.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

const LINEAR_US_STEP: u64 = 25;
const LINEAR_US_BUCKETS: usize = 40; // [0, 1 ms) in 25 µs steps
const MS_BUCKETS: usize = 99; // [1 ms, 100 ms) in 1 ms steps
const COARSE_BUCKETS: usize = 60; // [100 ms, 6.1 s) in 100 ms steps
const BUCKETS: usize = LINEAR_US_BUCKETS + MS_BUCKETS + COARSE_BUCKETS + 1;

fn bucket_of(us: u64) -> usize {
    if us < 1_000 {
        (us / LINEAR_US_STEP) as usize
    } else if us < 100_000 {
        LINEAR_US_BUCKETS + (us / 1_000) as usize - 1
    } else if us < 6_100_000 {
        LINEAR_US_BUCKETS + MS_BUCKETS + (us / 100_000) as usize - 1
    } else {
        BUCKETS - 1
    }
}

/// Inclusive upper bound (µs) of a bucket.
fn bucket_upper_us(idx: usize) -> u64 {
    if idx < LINEAR_US_BUCKETS {
        (idx as u64 + 1) * LINEAR_US_STEP
    } else if idx < LINEAR_US_BUCKETS + MS_BUCKETS {
        ((idx - LINEAR_US_BUCKETS) as u64 + 2) * 1_000
    } else if idx < BUCKETS - 1 {
        ((idx - LINEAR_US_BUCKETS - MS_BUCKETS) as u64 + 2) * 100_000
    } else {
        u64::MAX
    }
}

/// Fixed-bucket latency histogram (atomic counters).
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Quantile `q` in [0, 1], as a bucket upper bound in µs. Returns 0
    /// with no observations.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target observation (1-based, ceil).
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                if idx == BUCKETS - 1 {
                    // Overflow bucket: the max is the best bound we have.
                    return self.max_us.load(Ordering::Relaxed);
                }
                return bucket_upper_us(idx);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Sparse cumulative bucket series: one entry per *occupied* bucket,
    /// in ascending bound order, each carrying the cumulative count at
    /// its inclusive upper bound. The overflow bucket reports
    /// `upper_us == u64::MAX` (rendered `+Inf` in the Prometheus
    /// exposition). Empty buckets are elided — a valid Prometheus
    /// histogram only needs monotone cumulative counts at the bounds it
    /// exposes, and eliding the ~200-bucket axis keeps scrapes small.
    pub fn cumulative_buckets(&self) -> Vec<LatencyBucket> {
        let mut series = Vec::new();
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            series.push(LatencyBucket {
                upper_us: bucket_upper_us(idx),
                cumulative,
            });
        }
        series
    }

    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count();
        let total_us = self.total_us.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            total_us,
            mean_us: if count == 0 {
                0.0
            } else {
                total_us as f64 / count as f64
            },
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: self.cumulative_buckets(),
        }
    }
}

/// One occupied histogram bucket: cumulative observations at (and
/// below) its inclusive upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LatencyBucket {
    /// Inclusive upper bound in µs (`u64::MAX` = the overflow bucket,
    /// exposed as `+Inf`).
    pub upper_us: u64,
    pub cumulative: u64,
}

/// Latency figures for `GET /v1/stats` and the bench report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencySnapshot {
    pub count: u64,
    /// Exact sum of all observations (the Prometheus summary `_sum`;
    /// monotone between scrapes, unlike a mean×count reconstruction).
    pub total_us: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    /// Occupied cumulative buckets — the native `_bucket` series of the
    /// Prometheus exposition.
    pub buckets: Vec<LatencyBucket>,
}

/// Per-endpoint request counters.
#[derive(Default)]
pub struct RequestCounters {
    pub audit: AtomicU64,
    pub batch: AtomicU64,
    /// Pages audited inside batch requests.
    pub batch_pages: AtomicU64,
    /// `POST /v1/rpc/*` requests answered by the embedder's hook.
    pub rpc: AtomicU64,
    pub healthz: AtomicU64,
    pub stats: AtomicU64,
    /// 4xx/5xx answers (routing errors + protocol errors).
    pub errors: AtomicU64,
    /// Connections refused with `503 + Retry-After` by the governor.
    pub shed: AtomicU64,
    /// Connections closed with `408` by the request deadline (slowloris).
    pub timeouts: AtomicU64,
    /// Requests refused with `429 + Retry-After` by the per-peer
    /// fairness limiter (token bucket per client IP).
    pub rate_limited: AtomicU64,
}

impl RequestCounters {
    pub fn snapshot(&self) -> RequestSnapshot {
        RequestSnapshot {
            audit: self.audit.load(Ordering::Relaxed),
            batch: self.batch.load(Ordering::Relaxed),
            batch_pages: self.batch_pages.load(Ordering::Relaxed),
            rpc: self.rpc.load(Ordering::Relaxed),
            healthz: self.healthz.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestSnapshot {
    pub audit: u64,
    pub batch: u64,
    pub batch_pages: u64,
    pub rpc: u64,
    pub healthz: u64,
    pub stats: u64,
    pub errors: u64,
    pub shed: u64,
    pub timeouts: u64,
    pub rate_limited: u64,
}

impl RequestSnapshot {
    /// All successfully routed requests.
    pub fn total(&self) -> u64 {
        self.audit + self.batch + self.rpc + self.healthz + self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_axis_monotonically() {
        let mut prev = 0;
        for idx in 0..BUCKETS - 1 {
            let upper = bucket_upper_us(idx);
            assert!(upper > prev, "bucket {idx}");
            prev = upper;
        }
        // Every value maps into a bucket whose bound is >= the value.
        for us in [0, 1, 24, 25, 999, 1_000, 55_123, 99_999, 100_000, 5_999_999] {
            let idx = bucket_of(us);
            assert!(idx < BUCKETS);
            assert!(bucket_upper_us(idx) >= us, "us={us} idx={idx}");
        }
        assert_eq!(bucket_of(10_000_000), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let h = LatencyHistogram::default();
        // 99 fast observations and one slow outlier.
        for _ in 0..99 {
            h.record_us(40);
        }
        h.record_us(80_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        assert!(p50 <= 50, "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 <= 50, "p99 must still sit in the fast mass, got {p99}");
        let p100 = h.quantile_us(1.0);
        assert!(p100 >= 80_000, "max quantile {p100}");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean_us, 0.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = LatencyHistogram::default();
        h.record_us(7_000_000);
        assert_eq!(h.quantile_us(0.5), 7_000_000);
    }

    #[test]
    fn snapshot_serializes() {
        let h = LatencyHistogram::default();
        h.record_us(100);
        h.record_us(300);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!((snap.mean_us - 200.0).abs() < 1e-9);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"buckets\""));
    }

    #[test]
    fn cumulative_buckets_are_sparse_and_monotone() {
        let h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record_us(40); // bucket [25, 50)
        }
        h.record_us(40_500); // a 1 ms-step bucket
        h.record_us(40_700); // same bucket
        h.record_us(7_000_000); // overflow
        let series = h.cumulative_buckets();
        // Only the three occupied buckets appear.
        assert_eq!(series.len(), 3);
        assert_eq!(
            series[0],
            LatencyBucket {
                upper_us: 50,
                cumulative: 10
            }
        );
        assert_eq!(series[1].cumulative, 12);
        assert!(series[1].upper_us >= 40_700);
        assert_eq!(
            series[2],
            LatencyBucket {
                upper_us: u64::MAX,
                cumulative: 13
            }
        );
        // Monotone in both coordinates, final cumulative == count.
        for pair in series.windows(2) {
            assert!(pair[0].upper_us < pair[1].upper_us);
            assert!(pair[0].cumulative < pair[1].cumulative);
        }
        assert_eq!(series.last().unwrap().cumulative, h.count());
    }

    #[test]
    fn empty_histogram_has_no_buckets() {
        assert!(LatencyHistogram::default().cumulative_buckets().is_empty());
    }

    #[test]
    fn counters_total() {
        let c = RequestCounters::default();
        c.audit.fetch_add(3, Ordering::Relaxed);
        c.healthz.fetch_add(1, Ordering::Relaxed);
        c.errors.fetch_add(2, Ordering::Relaxed);
        c.shed.fetch_add(5, Ordering::Relaxed);
        c.timeouts.fetch_add(1, Ordering::Relaxed);
        c.rate_limited.fetch_add(4, Ordering::Relaxed);
        let snap = c.snapshot();
        assert_eq!(
            snap.total(),
            4,
            "shed/timeout/rate-limited requests never routed"
        );
        assert_eq!(snap.errors, 2);
        assert_eq!(snap.shed, 5);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.rate_limited, 4);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"shed\":5"));
        assert!(json.contains("\"timeouts\":1"));
        assert!(json.contains("\"rate_limited\":4"));
    }
}
