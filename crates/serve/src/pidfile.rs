//! Pid/port discovery files for daemonised servers.
//!
//! The repro daemon (and the distributed build's worker processes)
//! advertise themselves through a small JSON file —
//! `{"pid":…,"port":…,"addr":"…"}` — that clients poll to discover the
//! ephemeral listen port. A process that crashes (SIGKILL, OOM) leaves
//! its file behind, and the naive "refuse if the file exists" startup
//! check then wedges every restart until a human deletes it; the naive
//! "always overwrite" check clobbers a *live* daemon's advertisement and
//! strands its clients. This module does the correct thing: classify the
//! existing file by probing the recorded pid, then **replace** a stale or
//! malformed file and **refuse** only when the recorded process is
//! actually alive.
//!
//! Liveness is `kill(pid, 0)` — signal 0 delivers nothing but performs
//! the full existence/permission check. `EPERM` means the process exists
//! but belongs to someone else, which still counts as alive: we must not
//! clobber its file.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// The discovery document a daemonised server writes next to itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PidFileDoc {
    pub pid: u32,
    pub port: u16,
    /// Full `ip:port` dial address.
    pub addr: String,
}

impl PidFileDoc {
    pub fn new(port: u16, addr: &str) -> Self {
        PidFileDoc {
            pid: std::process::id(),
            port,
            addr: addr.to_string(),
        }
    }
}

/// Classification of a path that may hold a pid/port file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PidFileStatus {
    /// No file at the path.
    Absent,
    /// A file exists but does not parse as a discovery document (torn
    /// write, foreign file). Safe to replace.
    Malformed,
    /// A valid document whose recorded process is gone. Safe to replace.
    Stale(PidFileDoc),
    /// A valid document whose recorded process is alive. Do not clobber.
    Live(PidFileDoc),
}

/// Whether `pid` names a live process.
#[cfg(unix)]
pub fn pid_alive(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    if pid == 0 || pid > i32::MAX as u32 {
        return false;
    }
    // 0 → exists and signalable; -1 → check errno via a second probe:
    // EPERM (exists, not ours) vs ESRCH (gone). The C shim below avoids
    // depending on errno plumbing: a -1 from kill() with signal 0 means
    // ESRCH for processes we spawned ourselves, and for foreign pids we
    // conservatively report alive only when kill succeeded — except that
    // EPERM *should* count as alive. Without errno we cannot tell the
    // two apart, so probe `/proc/<pid>` as the tiebreak (Linux) and fall
    // back to "gone" elsewhere.
    if unsafe { kill(pid as i32, 0) } == 0 {
        return true;
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Non-unix fallback: no signal 0 probe available, so a recorded pid is
/// conservatively treated as alive (never clobber on a platform we can't
/// check).
#[cfg(not(unix))]
pub fn pid_alive(_pid: u32) -> bool {
    true
}

/// Classify the pid/port file at `path`.
pub fn examine(path: &Path) -> PidFileStatus {
    let Ok(text) = std::fs::read_to_string(path) else {
        return PidFileStatus::Absent;
    };
    let Ok(doc) = serde_json::from_str::<PidFileDoc>(text.trim()) else {
        return PidFileStatus::Malformed;
    };
    if pid_alive(doc.pid) {
        PidFileStatus::Live(doc)
    } else {
        PidFileStatus::Stale(doc)
    }
}

/// Claim `path` for this process: replace an absent, malformed, or stale
/// file; refuse when a live process holds it. On success the file holds
/// `doc` (trailing newline, matching the historical hand-written format).
pub fn claim(path: &Path, doc: &PidFileDoc) -> Result<(), PidFileStatus> {
    match examine(path) {
        live @ PidFileStatus::Live(_) => Err(live),
        _ => {
            let body = format!(
                "{}\n",
                serde_json::to_string(doc).expect("serialize pid/port doc")
            );
            std::fs::write(path, body).expect("write pid/port file");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("langcrux-pidfile-{tag}-{}", std::process::id()))
    }

    /// A pid guaranteed dead: spawn a short-lived child and reap it.
    fn dead_pid() -> u32 {
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn true");
        let pid = child.id();
        child.wait().expect("reap child");
        pid
    }

    #[test]
    fn absent_and_malformed_files_are_claimable() {
        let path = temp_path("absent");
        let _ = std::fs::remove_file(&path);
        assert_eq!(examine(&path), PidFileStatus::Absent);
        let doc = PidFileDoc::new(8080, "127.0.0.1:8080");
        claim(&path, &doc).expect("claim absent path");
        assert_eq!(examine(&path), PidFileStatus::Live(doc.clone()));

        std::fs::write(&path, "{torn json").unwrap();
        assert_eq!(examine(&path), PidFileStatus::Malformed);
        claim(&path, &doc).expect("claim malformed file");
        assert_eq!(examine(&path), PidFileStatus::Live(doc));
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn stale_file_is_replaced_live_file_is_refused() {
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        // A dead process's leftovers: startup must replace, not wedge.
        let stale = PidFileDoc {
            pid: dead_pid(),
            port: 9999,
            addr: "127.0.0.1:9999".to_string(),
        };
        std::fs::write(
            &path,
            format!("{}\n", serde_json::to_string(&stale).unwrap()),
        )
        .unwrap();
        assert!(matches!(examine(&path), PidFileStatus::Stale(d) if d == stale));
        let doc = PidFileDoc::new(8081, "127.0.0.1:8081");
        claim(&path, &doc).expect("stale file must be replaceable");

        // Our own (live) claim must now refuse a second claimant.
        let rival = PidFileDoc {
            pid: doc.pid,
            port: 1,
            addr: "127.0.0.1:1".to_string(),
        };
        let refused = claim(&path, &rival).expect_err("live file must refuse");
        assert!(matches!(refused, PidFileStatus::Live(d) if d == doc));
        // And the original advertisement survives untouched.
        assert_eq!(examine(&path), PidFileStatus::Live(doc));
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn pid_liveness_probe_is_sound() {
        assert!(pid_alive(std::process::id()));
        assert!(!pid_alive(dead_pid()));
        assert!(!pid_alive(0));
    }

    #[test]
    fn doc_round_trips_in_the_historical_format() {
        let doc = PidFileDoc {
            pid: 42,
            port: 7070,
            addr: "127.0.0.1:7070".to_string(),
        };
        let json = serde_json::to_string(&doc).unwrap();
        assert_eq!(
            json,
            "{\"pid\":42,\"port\":7070,\"addr\":\"127.0.0.1:7070\"}"
        );
        let back: PidFileDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }
}
