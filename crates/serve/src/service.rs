//! The audit service: raw HTML in, deterministic JSON report out.
//!
//! One [`AuditService`] call runs the same fused engine the offline
//! pipeline uses — the streaming tokenize→extract pass (visible text +
//! script histogram straight from tokenizer events, no DOM
//! materialisation), `audit::rules` page scoring, Kizuki's
//! language-aware rescoring via the carried histogram
//! (`detect_with_histogram`), and the screen-reader speak-order pass.
//! The serialized bytes are byte-identical to serializing the same
//! structures from a direct library call: the engine is deterministic and
//! the serde shim writes fields in declaration order, which is what lets
//! the response cache store bytes and what the API determinism test pins.

use crate::cache::CacheKey;
use langcrux_audit::{audit_page, gap_report, AuditReport, GapReport};
use langcrux_crawl::extract_streaming;
use langcrux_kizuki::{page_language, GapSpeech, Kizuki, KizukiReport, ScreenReader, Utterance};
use langcrux_lang::script::Script;
use langcrux_lang::Language;
use serde::Serialize;

/// Per-script character counts of the page's visible text (only scripts
/// actually present are listed, in the fixed `ALL_DISTINGUISHING` order).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScriptSlice {
    pub script: String,
    pub chars: usize,
    /// Share of distinguishing characters, 0–1.
    pub share: f64,
}

/// The `POST /v1/audit` response document.
#[derive(Debug, Clone, Serialize)]
pub struct AuditResponse {
    /// Hex FNV-1a of the submitted HTML (also the cache key).
    pub content_hash: String,
    pub html_bytes: usize,
    /// Characters of visible text (the fused walk's histogram total).
    pub visible_chars: usize,
    /// `<html lang=…>` declaration, if any.
    pub declared_lang: Option<String>,
    /// Content language detected from the carried script histogram.
    pub page_language: Option<String>,
    /// Script composition of the visible text.
    pub scripts: Vec<ScriptSlice>,
    /// Lighthouse-semantics audit (the paper's Table 1 rules).
    pub audit: AuditReport,
    /// Kizuki language-aware rescoring.
    pub kizuki: KizukiReport,
    /// Screen-reader announcements in document (speak) order.
    pub speak_order: Vec<Utterance>,
    /// Translation-gap verdict: which subtrees disagree with the page's
    /// declared/inherited language, with script evidence per region.
    pub gaps: GapReport,
    /// What the reader would do with each flagged gap region.
    pub gap_speech: GapSpeech,
}

/// The shared audit engine: Kizuki checks and the screen-reader profile
/// are built once and reused by every connection thread.
///
/// ```
/// use langcrux_serve::AuditService;
///
/// let service = AuditService::new();
/// let report = service.audit(r#"<html lang="th"><body><p>สวัสดี</p></body></html>"#);
/// assert_eq!(report.declared_lang.as_deref(), Some("th"));
/// assert_eq!(report.page_language.as_deref(), Some("th"));
/// // The serialized bytes are what POST /v1/audit answers with (and what
/// // the response cache stores).
/// assert!(!service.audit_json("<p>x</p>").is_empty());
/// ```
pub struct AuditService {
    kizuki: Kizuki,
    reader: ScreenReader,
}

impl Default for AuditService {
    fn default() -> Self {
        AuditService::new()
    }
}

impl AuditService {
    /// The paper's configuration: standard Kizuki + VoiceOver-like reader.
    pub fn new() -> Self {
        AuditService {
            kizuki: Kizuki::standard(),
            reader: ScreenReader::voiceover_like(),
        }
    }

    /// Audit one page. Pure and deterministic in `html`.
    pub fn audit(&self, html: &str) -> AuditResponse {
        self.audit_extract(extract_streaming(html), html)
    }

    /// Audit an already-extracted page (the extraction path is the only
    /// thing [`audit`](Self::audit) adds — tests use this to pin the
    /// streaming path byte-identical to the DOM oracle).
    fn audit_extract(&self, page: langcrux_crawl::PageExtract, html: &str) -> AuditResponse {
        let base = audit_page(&page);
        let kizuki = self.kizuki.evaluate(&page, &base);
        let language = page_language(&page);
        // Translation-gap pass: always computed here (the service has no
        // corpus flag to honour — a submitted page either has gap regions
        // or it doesn't).
        let gaps = gap_report(&page);
        let gap_speech = self.reader.gap_speech(&gaps, language);
        // Speak-order pass: announce against the detected content
        // language; undetermined pages are announced with an English
        // engine (the reader's default voice).
        let speak_order = self
            .reader
            .announce_page(&page, language.unwrap_or(Language::English));

        let total = page.visible_hist.distinguishing_total().max(1);
        let scripts = Script::ALL_DISTINGUISHING
            .iter()
            .filter_map(|&script| {
                let chars = page.visible_hist.count(script);
                (chars > 0).then(|| ScriptSlice {
                    script: script.name().to_string(),
                    chars,
                    share: chars as f64 / total as f64,
                })
            })
            .collect();

        AuditResponse {
            content_hash: CacheKey::of(html.as_bytes()).hex(),
            html_bytes: html.len(),
            visible_chars: page.visible_hist.total,
            declared_lang: page.declared_lang.clone(),
            page_language: language.map(|l| l.tag().to_string()),
            scripts,
            audit: base,
            kizuki,
            speak_order,
            gaps,
            gap_speech,
        }
    }

    /// The serialized response bytes `POST /v1/audit` answers with.
    pub fn audit_json(&self, html: &str) -> Vec<u8> {
        serde_json::to_string(&self.audit(html))
            .expect("audit response serializes")
            .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<html lang="bn"><head><title>শিক্ষক বাতায়ন</title></head><body>
        <p>বাংলাদেশের শিক্ষকদের জন্য জাতীয় প্ল্যাটফর্মে স্বাগতম। এখানে পাঠ
        পরিকল্পনা এবং প্রশিক্ষণ উপকরণ পাওয়া যায়।</p>
        <img src="a.jpg" alt="teacher training workshop session">
        <button>অনুসন্ধান</button></body></html>"#;

    #[test]
    fn audit_response_reflects_the_engine() {
        let service = AuditService::new();
        let resp = service.audit(PAGE);
        assert_eq!(resp.html_bytes, PAGE.len());
        assert_eq!(resp.declared_lang.as_deref(), Some("bn"));
        assert_eq!(resp.page_language.as_deref(), Some("bn"));
        assert!(resp.visible_chars > 0);
        assert!(resp
            .scripts
            .iter()
            .any(|s| s.script == "Bengali" && s.share > 0.5));
        // English alt on a Bangla page: base passes, Kizuki downgrades.
        assert!(resp.audit.score > resp.kizuki.new_score);
        assert!(!resp.speak_order.is_empty());
    }

    #[test]
    fn audit_json_is_deterministic() {
        let service = AuditService::new();
        let a = service.audit_json(PAGE);
        let b = service.audit_json(PAGE);
        assert_eq!(a, b);
        // A fresh service (fresh Kizuki/reader) produces the same bytes.
        let c = AuditService::new().audit_json(PAGE);
        assert_eq!(a, c);
    }

    #[test]
    fn streaming_audit_bytes_match_dom_oracle() {
        // The switch to extract_streaming must not change a single cached
        // or served byte: run the same engine over the DOM-extracted page
        // and compare full serialized responses.
        let service = AuditService::new();
        for html in [
            PAGE,
            "",
            "<button>অনুসন্ধান</button><img src=x>",
            "<ul><li>ข่าววันนี้<li>อ่านต่อ</ul><script>skip()</script>",
        ] {
            let dom_page = langcrux_crawl::extract(&langcrux_html::parse(html));
            let dom_bytes = serde_json::to_string(&service.audit_extract(dom_page, html)).unwrap();
            assert_eq!(dom_bytes.into_bytes(), service.audit_json(html), "{html:?}");
        }
    }

    #[test]
    fn gap_verdict_flags_english_chrome_on_a_bengali_page() {
        // A partially localised page: translated body, untranslated nav.
        let html = r#"<html lang="bn"><body>
            <nav><a href="/">Home page overview</a>
            <a href="/shop">Product catalogue listing</a>
            <a href="/help">Customer support center</a></nav>
            <p>বাংলাদেশের শিক্ষকদের জন্য জাতীয় প্ল্যাটফর্মে স্বাগতম। এখানে
            পাঠ পরিকল্পনা এবং প্রশিক্ষণ উপকরণ পাওয়া যায়। প্রতিটি জেলার
            শিক্ষকরা এখানে নিজেদের অভিজ্ঞতা ভাগ করে নেন।</p>
            </body></html>"#;
        let service = AuditService::new();
        let resp = service.audit(html);
        assert_eq!(resp.gaps.regions.len(), 1, "{:?}", resp.gaps);
        let gap = &resp.gaps.regions[0];
        assert_eq!(gap.role, "nav");
        assert_eq!(gap.kind.label(), "chrome");
        // VoiceOver has a Bangla engine: the English nav is read aloud
        // with it, i.e. mispronounced rather than skipped.
        assert_eq!(resp.gap_speech.regions, 1);
        assert_eq!(resp.gap_speech.mispronounced, 1);
        assert_eq!(resp.gap_speech.skipped, 0);
        // The fully localised test page has no gaps at all.
        let clean = service.audit(PAGE);
        assert!(clean.gaps.is_clean(), "{:?}", clean.gaps);
        assert_eq!(clean.gap_speech, GapSpeech::default());
    }

    #[test]
    fn content_hash_matches_cache_key() {
        let resp = AuditService::new().audit(PAGE);
        assert_eq!(resp.content_hash, CacheKey::of(PAGE.as_bytes()).hex());
    }

    #[test]
    fn empty_page_audits_cleanly() {
        let resp = AuditService::new().audit("");
        assert_eq!(resp.visible_chars, 0);
        assert!(resp.scripts.is_empty());
        assert!(resp.page_language.is_none());
        // Only the document-title slot is announced.
        assert_eq!(resp.speak_order.len(), 1);
    }

    #[test]
    fn script_shares_sum_to_one_when_text_present() {
        let resp = AuditService::new().audit(PAGE);
        let sum: f64 = resp.scripts.iter().map(|s| s.share).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum {sum}");
    }
}
