//! The reactor's deadline wheel: a hashed timing wheel that replaces the
//! per-thread read/write timeouts of the thread-per-connection core.
//!
//! One wheel serves every connection the reactor owns. Entries are
//! `(token, gen)` pairs — the connection's reactor token plus a
//! generation counter — so cancellation is lazy: instead of hunting an
//! entry down when a connection's deadline moves (every completed
//! request re-arms the slowloris timer), the connection bumps its
//! generation and the stale entry is discarded when it fires. At most
//! one *live* entry exists per connection; expired-but-stale entries
//! cost one HashMap probe each.
//!
//! The wheel is tick-based and pure in `(insert, advance)` calls — no
//! clock access — so its arithmetic is unit-testable without time. The
//! reactor maps wall time onto ticks ([`TICK_MS`] granularity) and
//! re-validates every fired entry against real `Instant`s before acting,
//! which also handles deadlines coarser than a tick: an entry that fires
//! early is simply re-inserted at the remaining delay.

/// Wheel granularity. Fine enough for the serve deadlines (the shortest
/// production deadline is the 250 ms shed write window; the torture
/// suite's 300 ms slowloris deadline resolves to 12 ticks).
pub const TICK_MS: u64 = 25;

/// One armed deadline: the connection token and the generation the
/// connection carried when the entry was inserted. A fired entry whose
/// generation no longer matches the connection's is stale — cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    pub token: u64,
    pub gen: u64,
}

/// A hashed timing wheel: `slot = deadline_tick % slots`. Entries whose
/// deadline lies more than one revolution out simply stay in their slot
/// until the cursor passes them with the right tick count — the classic
/// "rounds" scheme, expressed by storing the absolute deadline tick.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<(u64, TimerEntry)>>,
    now_tick: u64,
    len: usize,
    /// Cached earliest armed deadline — exact while `Some`. Inserts keep
    /// it exact in O(1); `advance` invalidates it only when the cursor
    /// reaches it, so the full-wheel rescan in [`next_deadline_tick`]
    /// runs once per fired deadline instead of once per reactor loop
    /// iteration (the reactor polls this with thousands of idle
    /// connections armed).
    earliest: Option<u64>,
}

impl TimerWheel {
    /// A wheel with `slot_count` slots (clamped to at least 2). Slot
    /// count trades memory for collision rate; 256 slots at 25 ms ticks
    /// cover 6.4 s per revolution — past every default serve deadline.
    pub fn new(slot_count: usize) -> Self {
        TimerWheel {
            slots: vec![Vec::new(); slot_count.max(2)],
            now_tick: 0,
            len: 0,
            earliest: None,
        }
    }

    /// The tick the wheel has advanced to.
    pub fn now_tick(&self) -> u64 {
        self.now_tick
    }

    /// Armed entries (live and stale alike) — the `wheel_depth` gauge.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm an entry at an absolute tick. A deadline at or before the
    /// current tick is clamped to the next tick — the wheel never fires
    /// an entry in the same `advance` that armed it, so a connection
    /// re-arming itself from a timer callback cannot livelock the
    /// expiry pass.
    pub fn insert_at(&mut self, deadline_tick: u64, token: u64, gen: u64) {
        let tick = deadline_tick.max(self.now_tick + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((tick, TimerEntry { token, gen }));
        self.len += 1;
        self.earliest = Some(self.earliest.map_or(tick, |e| e.min(tick)));
    }

    /// Advance the cursor to `to_tick`, appending every entry whose
    /// deadline has passed to `expired`. Entries in a visited slot with
    /// a later deadline (a future revolution) are left in place.
    pub fn advance(&mut self, to_tick: u64, expired: &mut Vec<TimerEntry>) {
        let slot_count = self.slots.len() as u64;
        while self.now_tick < to_tick {
            // A jump larger than one revolution only needs one pass over
            // the wheel: every slot is visited within `slot_count` steps
            // and the `deadline <= now` test does the rest.
            self.now_tick = if to_tick - self.now_tick > slot_count {
                to_tick - slot_count
            } else {
                self.now_tick + 1
            };
            let slot = (self.now_tick % slot_count) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= self.now_tick {
                    let (_, entry) = bucket.swap_remove(i);
                    expired.push(entry);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        // The cached minimum's entry has expired once the cursor reaches
        // it; the next `next_deadline_tick` call rescans.
        if self.earliest.is_some_and(|e| self.now_tick >= e) {
            self.earliest = None;
        }
    }

    /// The earliest armed deadline tick, if any — the reactor bounds its
    /// poll timeout by this so a lone short deadline is not stretched to
    /// the idle poll interval. Served from the O(1) cache; the wheel is
    /// only rescanned right after the previous minimum fired.
    pub fn next_deadline_tick(&mut self) -> Option<u64> {
        if self.len == 0 {
            self.earliest = None;
            return None;
        }
        if self.earliest.is_none() {
            self.earliest = self
                .slots
                .iter()
                .flat_map(|bucket| bucket.iter().map(|(tick, _)| *tick))
                .min();
        }
        self.earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, to_tick: u64) -> Vec<TimerEntry> {
        let mut expired = Vec::new();
        wheel.advance(to_tick, &mut expired);
        expired
    }

    #[test]
    fn fires_at_the_armed_tick_not_before() {
        let mut wheel = TimerWheel::new(8);
        wheel.insert_at(5, 1, 0);
        assert!(drain(&mut wheel, 4).is_empty());
        assert_eq!(wheel.len(), 1);
        let fired = drain(&mut wheel, 5);
        assert_eq!(fired, vec![TimerEntry { token: 1, gen: 0 }]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_clamp_to_the_next_tick() {
        let mut wheel = TimerWheel::new(8);
        drain(&mut wheel, 10);
        wheel.insert_at(3, 7, 2); // already in the past
        assert!(drain(&mut wheel, 10).is_empty(), "same tick must not fire");
        let fired = drain(&mut wheel, 11);
        assert_eq!(fired, vec![TimerEntry { token: 7, gen: 2 }]);
    }

    #[test]
    fn deadlines_beyond_one_revolution_wait_their_rounds() {
        // Slot collision: ticks 3 and 11 share slot 3 on an 8-slot wheel.
        let mut wheel = TimerWheel::new(8);
        wheel.insert_at(3, 1, 0);
        wheel.insert_at(11, 2, 0);
        let fired = drain(&mut wheel, 8);
        assert_eq!(fired, vec![TimerEntry { token: 1, gen: 0 }]);
        assert_eq!(wheel.len(), 1, "the round-2 entry must survive");
        let fired = drain(&mut wheel, 11);
        assert_eq!(fired, vec![TimerEntry { token: 2, gen: 0 }]);
    }

    #[test]
    fn large_jumps_expire_everything_due() {
        let mut wheel = TimerWheel::new(8);
        for token in 0..20 {
            wheel.insert_at(token + 1, token, 0);
        }
        // Jump far past every deadline in one advance (several
        // revolutions of an 8-slot wheel).
        let mut fired = drain(&mut wheel, 1_000);
        assert_eq!(fired.len(), 20);
        fired.sort_by_key(|e| e.token);
        let tokens: Vec<u64> = fired.iter().map(|e| e.token).collect();
        assert_eq!(tokens, (0..20).collect::<Vec<_>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn generations_ride_along_for_lazy_cancellation() {
        let mut wheel = TimerWheel::new(8);
        // The same connection re-arms: the old entry is not removed, the
        // caller discriminates by generation when entries fire.
        wheel.insert_at(2, 9, 0);
        wheel.insert_at(4, 9, 1);
        assert_eq!(wheel.len(), 2);
        let fired = drain(&mut wheel, 4);
        assert_eq!(fired.len(), 2);
        assert!(fired.contains(&TimerEntry { token: 9, gen: 0 }));
        assert!(fired.contains(&TimerEntry { token: 9, gen: 1 }));
    }

    #[test]
    fn next_deadline_tracks_the_minimum() {
        let mut wheel = TimerWheel::new(8);
        assert_eq!(wheel.next_deadline_tick(), None);
        wheel.insert_at(40, 1, 0);
        wheel.insert_at(12, 2, 0);
        assert_eq!(wheel.next_deadline_tick(), Some(12));
        drain(&mut wheel, 12);
        assert_eq!(wheel.next_deadline_tick(), Some(40));
    }

    #[test]
    fn next_deadline_cache_survives_interleaved_inserts_and_advances() {
        let mut wheel = TimerWheel::new(8);
        wheel.insert_at(40, 1, 0);
        // An advance that does NOT reach the minimum keeps the cache.
        drain(&mut wheel, 5);
        assert_eq!(wheel.next_deadline_tick(), Some(40));
        // A later insert below the cached minimum updates it exactly.
        wheel.insert_at(20, 2, 0);
        assert_eq!(wheel.next_deadline_tick(), Some(20));
        // Past-deadline inserts clamp, and the clamped tick is cached.
        drain(&mut wheel, 20);
        wheel.insert_at(3, 3, 0);
        assert_eq!(wheel.next_deadline_tick(), Some(21));
        drain(&mut wheel, 21);
        assert_eq!(wheel.next_deadline_tick(), Some(40));
        drain(&mut wheel, 40);
        assert_eq!(wheel.next_deadline_tick(), None);
    }
}
