//! A hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! The container has no crates.io access, so there is no hyper/tokio; the
//! serve workload is CPU-bound page auditing, which per the workspace's
//! networking guidance runs fine on blocking OS threads. What this module
//! provides is deliberately small and fully testable without sockets:
//!
//! * [`RequestParser`] — an incremental (push-based) request parser. Bytes
//!   arrive in arbitrary chunks (TCP reads tear start-lines, CRLFs and
//!   bodies at any offset); the parser buffers and yields complete
//!   [`Request`]s. Pipelined requests in one read are handled: leftover
//!   bytes stay buffered for the next [`RequestParser::poll`].
//! * [`ParseError`] — typed protocol violations, each mapped to the HTTP
//!   status the server answers before closing the connection
//!   (malformed start-line → 400, oversized body → 413, oversized
//!   header block → 431).
//! * [`Response`] — a minimal response writer with keep-alive handling,
//!   plus chunked-encoding helpers ([`write_chunked_head`],
//!   [`write_chunk`], [`write_last_chunk`]) for responses whose length is
//!   not known up front (the streaming `/v1/batch` path).
//!
//! Request bodies may be framed either way: `Content-Length` or
//! `Transfer-Encoding: chunked` (chunk-size lines with extensions
//! ignored, trailers consumed and discarded, the same 400/413 typed-error
//! mapping as fixed-length bodies). Any *other* transfer coding — `gzip`,
//! a coding list, duplicated `chunked` — is rejected with 501; a request
//! declaring both `Content-Length` and chunked is rejected with 400
//! (request-smuggling precondition). No multiline header folding (folding
//! was deprecated by RFC 7230 and is rejected as malformed).

/// Byte-size limits enforced while parsing.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the start-line + header block (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            // Generous for HTML pages; the paper's corpus tops out well
            // below this even with Appendix-E extreme alt texts.
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verbatim (methods are case-sensitive tokens).
    pub method: String,
    /// Request target verbatim, e.g. `/v1/audit`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// HTTP/1.1 default: keep-alive unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A protocol violation, with the status the server should answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Start-line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadStartLine,
    /// A header line without `:`, an empty/illegal header name, or
    /// obs-fold continuation.
    BadHeader,
    /// `Content-Length` missing on a method requiring none, duplicated,
    /// or not a decimal number.
    BadContentLength,
    /// A chunk-size line that is not hex digits (+ optional extension),
    /// or a missing CRLF after chunk data.
    BadChunk,
    /// Both `Content-Length` and `Transfer-Encoding: chunked` declared —
    /// ambiguous framing is a request-smuggling vector.
    ConflictingFraming,
    /// Start-line + headers (or chunked trailers) exceed
    /// [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge(usize),
    /// A transfer coding other than a single `chunked` — this server
    /// implements no compression codings.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// HTTP status code the server answers with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BodyTooLarge(_) => 413,
            ParseError::HeadTooLarge => 431,
            ParseError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn detail(&self) -> String {
        match self {
            ParseError::BadStartLine => "malformed request line".to_string(),
            ParseError::BadHeader => "malformed header".to_string(),
            ParseError::BadContentLength => "missing or invalid content-length".to_string(),
            ParseError::BadChunk => "malformed chunked framing".to_string(),
            ParseError::ConflictingFraming => {
                "both content-length and transfer-encoding declared".to_string()
            }
            ParseError::HeadTooLarge => "header block too large".to_string(),
            ParseError::BodyTooLarge(n) => format!("declared body of {n} bytes exceeds limit"),
            ParseError::UnsupportedTransferEncoding => "unsupported transfer-encoding".to_string(),
        }
    }
}

/// Parsed start-line + headers, waiting for the body to arrive.
#[derive(Debug)]
struct PendingHead {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: BodyState,
}

/// How the body of the pending request is framed, and how far the
/// decoder has progressed.
#[derive(Debug)]
enum BodyState {
    /// `Content-Length` framing: wait until this many bytes buffered.
    Fixed(usize),
    /// `Transfer-Encoding: chunked`: decode incrementally into `decoded`.
    Chunked { decoded: Vec<u8>, phase: ChunkPhase },
}

/// Chunked-decoder state. Each variant resumes cleanly from a partial
/// buffer, so TCP may tear the stream anywhere — including inside a
/// chunk-size line, a data CRLF, or a trailer line.
#[derive(Debug)]
enum ChunkPhase {
    /// Waiting for a complete `size[;extension]\r\n` line.
    SizeLine,
    /// Consuming chunk data.
    Data { remaining: usize },
    /// Expecting the `\r\n` that closes a data chunk.
    DataCrlf,
    /// After the `0` chunk: consume trailer lines until the empty line.
    /// `seen` bounds total trailer bytes (431 beyond the head limit).
    Trailers { seen: usize },
}

/// A chunk-size line (hex size + optional extension) longer than this is
/// malformed: 16 hex digits already cover the full u64 range, and the
/// server ignores extensions, so there is no legitimate reason to stream
/// an unbounded extension.
const CHUNK_LINE_MAX: usize = 256;

/// Incremental request parser.
///
/// Feed raw bytes with [`feed`](RequestParser::feed) as they arrive from
/// the socket, then drain complete requests with
/// [`poll`](RequestParser::poll). The parse result is independent of how
/// the byte stream was chunked — the property the proptests pin down.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    pending: Option<PendingHead>,
    /// A protocol error is sticky: the connection is poisoned.
    failed: bool,
}

impl RequestParser {
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            pending: None,
            failed: false,
        }
    }

    /// Append bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to complete one request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes". Errors are sticky — after a
    /// protocol violation the connection must be answered and closed.
    pub fn poll(&mut self) -> Result<Option<Request>, ParseError> {
        if self.failed {
            return Err(ParseError::BadStartLine);
        }
        match self.poll_inner() {
            Err(e) => {
                self.failed = true;
                Err(e)
            }
            ok => ok,
        }
    }

    /// True while a request is partially buffered (a head without its
    /// body, or raw bytes short of a complete head). The server's
    /// request-deadline timer runs exactly while this holds — it is what
    /// distinguishes a slowloris mid-request dribble from an idle
    /// keep-alive connection.
    pub fn mid_request(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    fn poll_inner(&mut self) -> Result<Option<Request>, ParseError> {
        if self.pending.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                // No terminator yet: enforce the head limit on what has
                // accumulated so a slow-loris header stream cannot grow
                // the buffer without bound.
                if self.buf.len() > self.limits.max_head_bytes {
                    return Err(ParseError::HeadTooLarge);
                }
                return Ok(None);
            };
            if head_end > self.limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            let head = parse_head(&self.buf[..head_end], self.limits.max_body_bytes)?;
            self.buf.drain(..head_end + 4);
            self.pending = Some(head);
        }

        let pending = self.pending.as_mut().expect("pending head");
        let complete = match &mut pending.body {
            BodyState::Fixed(need) => self.buf.len() >= *need,
            BodyState::Chunked { decoded, phase } => {
                advance_chunked(&mut self.buf, decoded, phase, &self.limits)?
            }
        };
        if !complete {
            return Ok(None);
        }
        let head = self.pending.take().expect("pending head");
        let body = match head.body {
            BodyState::Fixed(need) => self.buf.drain(..need).collect(),
            BodyState::Chunked { decoded, .. } => decoded,
        };
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        }))
    }
}

/// Offset of the next `\r\n`, if buffered.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Advance the chunked decoder as far as the buffered bytes allow.
/// Returns `Ok(true)` once the terminating chunk and its trailers have
/// been fully consumed. Progress is byte-exact: leftover bytes after the
/// final CRLF belong to the next pipelined request and stay in `buf`.
fn advance_chunked(
    buf: &mut Vec<u8>,
    decoded: &mut Vec<u8>,
    phase: &mut ChunkPhase,
    limits: &Limits,
) -> Result<bool, ParseError> {
    loop {
        match phase {
            ChunkPhase::SizeLine => {
                let Some(eol) = find_crlf(buf) else {
                    if buf.len() > CHUNK_LINE_MAX {
                        return Err(ParseError::BadChunk);
                    }
                    return Ok(false);
                };
                if eol > CHUNK_LINE_MAX {
                    return Err(ParseError::BadChunk);
                }
                let line = std::str::from_utf8(&buf[..eol]).map_err(|_| ParseError::BadChunk)?;
                // `size[;extension]` — extensions are ignored per the RFC
                // 9112 "MAY ignore" allowance; the size is strict hex.
                let size_str = line.split(';').next().unwrap_or("").trim();
                if size_str.is_empty()
                    || size_str.len() > 16
                    || !size_str.bytes().all(|b| b.is_ascii_hexdigit())
                {
                    return Err(ParseError::BadChunk);
                }
                let size = u64::from_str_radix(size_str, 16)
                    .ok()
                    .and_then(|s| usize::try_from(s).ok())
                    .ok_or(ParseError::BadChunk)?;
                // The 413 fires on the *declared* total, exactly like
                // the Content-Length path: no need to buffer the data
                // first. Saturating arithmetic — a `ffffffffffffffff`
                // chunk size must trip the limit, not wrap the check in
                // release builds and stream unbounded data past it.
                if size > limits.max_body_bytes.saturating_sub(decoded.len()) {
                    return Err(ParseError::BodyTooLarge(decoded.len().saturating_add(size)));
                }
                buf.drain(..eol + 2);
                *phase = if size == 0 {
                    ChunkPhase::Trailers { seen: 0 }
                } else {
                    ChunkPhase::Data { remaining: size }
                };
            }
            ChunkPhase::Data { remaining } => {
                let take = (*remaining).min(buf.len());
                decoded.extend(buf.drain(..take));
                *remaining -= take;
                if *remaining > 0 {
                    return Ok(false);
                }
                *phase = ChunkPhase::DataCrlf;
            }
            ChunkPhase::DataCrlf => {
                if buf.len() < 2 {
                    return Ok(false);
                }
                if &buf[..2] != b"\r\n" {
                    return Err(ParseError::BadChunk);
                }
                buf.drain(..2);
                *phase = ChunkPhase::SizeLine;
            }
            ChunkPhase::Trailers { seen } => {
                let Some(eol) = find_crlf(buf) else {
                    if *seen + buf.len() > limits.max_head_bytes {
                        return Err(ParseError::HeadTooLarge);
                    }
                    return Ok(false);
                };
                if eol == 0 {
                    // Empty line: the request is complete. Trailers were
                    // consumed and discarded — the service keys on the
                    // decoded body, never on trailing metadata.
                    buf.drain(..2);
                    return Ok(true);
                }
                let line = &buf[..eol];
                if line[0] == b' ' || line[0] == b'\t' {
                    return Err(ParseError::BadHeader);
                }
                let colon = line
                    .iter()
                    .position(|&b| b == b':')
                    .ok_or(ParseError::BadHeader)?;
                if colon == 0 || !line[..colon].iter().all(|&b| is_token_byte(b)) {
                    return Err(ParseError::BadHeader);
                }
                *seen += eol + 2;
                if *seen > limits.max_head_bytes {
                    return Err(ParseError::HeadTooLarge);
                }
                buf.drain(..eol + 2);
            }
        }
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8], max_body: usize) -> Result<PendingHead, ParseError> {
    let head = std::str::from_utf8(head).map_err(|_| ParseError::BadHeader)?;
    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(ParseError::BadStartLine)?;

    // METHOD SP TARGET SP HTTP/1.x — exactly three space-separated parts.
    let mut parts = start.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(ParseError::BadStartLine),
    };
    if method.is_empty()
        || !method
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b == b'-' || b == b'_')
    {
        return Err(ParseError::BadStartLine);
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(ParseError::BadStartLine);
    }
    if !version.starts_with("HTTP/1.") || version.len() != 8 {
        return Err(ParseError::BadStartLine);
    }

    let mut headers = Vec::new();
    for line in lines {
        // A line starting with whitespace would be RFC 7230 obs-fold.
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError::BadHeader);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Transfer codings: exactly one `Transfer-Encoding: chunked` selects
    // the chunked decoder. Anything else — `gzip`, a coding list, a
    // duplicated `chunked` — is a coding this server does not implement
    // (501). A request declaring *both* chunked and Content-Length has
    // ambiguous framing (smuggling vector) and is rejected outright.
    let te_present = headers.iter().any(|(n, _)| n == "transfer-encoding");
    let codings: Vec<String> = headers
        .iter()
        .filter(|(n, _)| n == "transfer-encoding")
        .flat_map(|(_, v)| v.split(','))
        .map(|c| c.trim().to_ascii_lowercase())
        .filter(|c| !c.is_empty())
        .collect();
    let chunked = match codings.as_slice() {
        // An empty Transfer-Encoding value declares nothing parseable.
        [] if te_present => return Err(ParseError::UnsupportedTransferEncoding),
        [] => false,
        [only] if only == "chunked" => true,
        _ => return Err(ParseError::UnsupportedTransferEncoding),
    };

    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match (lengths.next(), lengths.next()) {
        (None, _) => None,
        // DIGIT-only per RFC 9110 — `usize::from_str` alone would also
        // accept a leading `+`, which an intermediary may frame
        // differently (request-smuggling precondition).
        (Some((_, v)), None) => {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::BadContentLength);
            }
            Some(
                v.parse::<usize>()
                    .map_err(|_| ParseError::BadContentLength)?,
            )
        }
        // Conflicting duplicate content-lengths are a smuggling vector.
        (Some(_), Some(_)) => return Err(ParseError::BadContentLength),
    };

    let body = if chunked {
        if content_length.is_some() {
            return Err(ParseError::ConflictingFraming);
        }
        BodyState::Chunked {
            decoded: Vec::new(),
            phase: ChunkPhase::SizeLine,
        }
    } else {
        let declared = content_length.unwrap_or(0);
        if declared > max_body {
            return Err(ParseError::BodyTooLarge(declared));
        }
        BodyState::Fixed(declared)
    };

    Ok(PendingHead {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// RFC 7230 `tchar` (the subset that matters for header names).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'!' | b'#' | b'$' | b'%' | b'&')
}

/// Reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response payload: owned bytes for one-off documents, shared bytes
/// for cache hits so the cached JSON is never copied per request.
#[derive(Debug, Clone)]
pub enum Body {
    Owned(Vec<u8>),
    Shared(std::sync::Arc<Vec<u8>>),
}

impl Body {
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(v) => v,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Owned(v)
    }
}

impl From<std::sync::Arc<Vec<u8>>> for Body {
    fn from(v: std::sync::Arc<Vec<u8>>) -> Body {
        Body::Shared(v)
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Body,
    /// Whether the connection survives this exchange.
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Body>, keep_alive: bool) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            keep_alive,
        }
    }

    /// A Prometheus text-format (exposition format 0.0.4) response.
    pub fn prometheus(status: u16, body: impl Into<Body>, keep_alive: bool) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
            keep_alive,
        }
    }

    /// The standard JSON error envelope.
    pub fn error(status: u16, detail: &str, keep_alive: bool) -> Response {
        let body = format!(
            "{{\"error\":{},\"status\":{status}}}",
            json_escape_string(detail)
        );
        Response::json(status, body.into_bytes(), keep_alive)
    }

    /// Serialize head + body into `out` (cleared first). Taking the
    /// buffer from the caller lets the connection loop reuse one
    /// allocation across every response it writes.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        use std::io::Write;
        out.clear();
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if self.keep_alive {
                "keep-alive"
            } else {
                "close"
            },
        )
        .expect("write to Vec");
        out.extend_from_slice(self.body.as_slice());
    }

    /// Serialize head + body into one write-ready buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }
}

/// Serialize the head of a `Transfer-Encoding: chunked` response into
/// `out` (cleared first). Used when the body length is unknown up front —
/// the streaming `/v1/batch` path writes elements as they complete.
pub fn write_chunked_head(out: &mut Vec<u8>, status: u16, content_type: &str, keep_alive: bool) {
    use std::io::Write;
    out.clear();
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        status,
        reason_phrase(status),
        content_type,
        if keep_alive { "keep-alive" } else { "close" },
    )
    .expect("write to Vec");
}

/// Append one chunk (`hex-size CRLF data CRLF`) to `out`. Empty data is
/// skipped — a zero-size chunk would terminate the stream.
pub fn write_chunk(out: &mut Vec<u8>, data: &[u8]) {
    use std::io::Write;
    if data.is_empty() {
        return;
    }
    write!(out, "{:x}\r\n", data.len()).expect("write to Vec");
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Append the terminating `0 CRLF CRLF` chunk to `out`.
pub fn write_last_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

/// The connection governor's shed answer: a fully serialized
/// `503 Service Unavailable` with a `Retry-After` hint, written straight
/// from the accept loop when the connection cap and pending queue are
/// both full. Hand-assembled because [`Response`] has no extra-header
/// slot and this is the one response that needs one.
pub fn shed_response_bytes(retry_after_secs: u32) -> Vec<u8> {
    let body = format!("{{\"error\":\"server at connection capacity\",\"status\":503,\"retry_after\":{retry_after_secs}}}");
    format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// The fairness limiter's refusal: a fully serialized
/// `429 Too Many Requests` with a `Retry-After` hint, mirroring the
/// governor's 503 shed answer one layer up — hand-assembled for the
/// same reason ([`Response`] has no extra-header slot).
pub fn rate_limited_response_bytes(retry_after_secs: u32) -> Vec<u8> {
    let body = format!(
        "{{\"error\":\"per-client rate limit exceeded\",\"status\":429,\"retry_after\":{retry_after_secs}}}"
    );
    format!(
        "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: {retry_after_secs}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Minimal JSON string escaping for error details (matches the
/// `serde_json` shim's escaping rules).
fn json_escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        let mut p = RequestParser::new(Limits::default());
        p.feed(bytes);
        p.poll()
    }

    #[test]
    fn parses_simple_get() {
        let req = parse_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_all(b"POST /v1/audit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let raw = b"POST /v1/audit HTTP/1.1\r\nContent-Type: text/html\r\nContent-Length: 11\r\n\r\n<html></html>"; // body longer than 11 on purpose: pipelined residue
        let one_shot = {
            let mut p = RequestParser::new(Limits::default());
            p.feed(raw);
            p.poll().unwrap().unwrap()
        };
        let mut p = RequestParser::new(Limits::default());
        let mut trickled = None;
        for b in raw.iter() {
            p.feed(&[*b]);
            if let Some(req) = p.poll().unwrap() {
                trickled = Some(req);
                break;
            }
        }
        assert_eq!(trickled.unwrap(), one_shot);
        assert_eq!(one_shot.body, b"<html></htm");
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.poll().unwrap().unwrap().path, "/a");
        assert_eq!(p.poll().unwrap().unwrap().path, "/b");
        assert_eq!(p.poll().unwrap(), None);
    }

    #[test]
    fn connection_close_observed() {
        let req = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn malformed_start_lines_are_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn malformed_headers_are_400() {
        for raw in [
            &b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\n: novalue\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
        ] {
            assert_eq!(parse_all(raw).unwrap_err().status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let limits = Limits {
            max_body_bytes: 100,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 101\r\n\r\n");
        let err = p.poll().unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge(101));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_431_even_without_terminator() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"GET / HTTP/1.1\r\n");
        // Keep streaming header bytes without ever finishing the head.
        let mut err = None;
        for _ in 0..64 {
            p.feed(b"X-Filler: aaaaaaaaaaaaaaaa\r\n");
            match p.poll() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("head never terminated"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err.unwrap().status(), 431);
    }

    #[test]
    fn non_digit_content_length_rejected() {
        // `usize::from_str` accepts a leading `+`; RFC 9110 does not.
        for raw in [
            &b"POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello"[..],
            b"POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 0x5\r\n\r\nhello",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err, ParseError::BadContentLength, "{raw:?}");
        }
    }

    #[test]
    fn duplicate_content_length_rejected() {
        let err = parse_all(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx")
            .unwrap_err();
        assert_eq!(err, ParseError::BadContentLength);
    }

    // ---- chunked transfer decoding -------------------------------------

    #[test]
    fn chunked_body_decodes() {
        let req = parse_all(
            b"POST /v1/audit HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"hello world");
        assert_eq!(req.path, "/v1/audit");
    }

    #[test]
    fn chunked_size_is_hex_and_extensions_are_ignored() {
        let req = parse_all(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              A;name=value;flag\r\n0123456789\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"0123456789");
    }

    #[test]
    fn chunked_trailers_are_consumed_and_discarded() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              3\r\nabc\r\n0\r\nX-Checksum: 99\r\nX-Other: y\r\n\r\n\
              GET /next HTTP/1.1\r\n\r\n",
        );
        let req = p.poll().unwrap().unwrap();
        assert_eq!(req.body, b"abc");
        assert!(req.header("x-checksum").is_none(), "trailers are discarded");
        // The pipelined follow-up starts exactly after the trailer CRLF.
        assert_eq!(p.poll().unwrap().unwrap().path, "/next");
    }

    #[test]
    fn chunked_empty_body() {
        let req = parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn chunked_byte_at_a_time_decodes_identically() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4;x=1\r\nwiki\r\n5\r\npedia\r\n0\r\nT: v\r\n\r\n";
        let one_shot = parse_all(raw).unwrap().unwrap();
        let mut p = RequestParser::new(Limits::default());
        let mut trickled = None;
        for b in raw.iter() {
            p.feed(&[*b]);
            if let Some(req) = p.poll().unwrap() {
                trickled = Some(req);
            }
        }
        assert_eq!(trickled.unwrap(), one_shot);
        assert_eq!(one_shot.body, b"wikipedia");
    }

    #[test]
    fn chunked_malformed_framing_is_400() {
        for raw in [
            // Non-hex size.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nab\r\n0\r\n\r\n"[..],
            // Empty size line.
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\r\n0\r\n\r\n",
            // Missing CRLF after chunk data.
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcX\r\n0\r\n\r\n",
            // 17 hex digits overflow the size field.
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n11111111111111111\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err, ParseError::BadChunk, "{raw:?}");
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn chunked_declared_total_over_limit_is_413() {
        let limits = Limits {
            max_body_bytes: 16,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        // 0x10 = 16 decoded so far, then one more byte declared: 413
        // before that byte's data even arrives.
        p.feed(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n10\r\naaaaaaaaaaaaaaaa\r\n1\r\n",
        );
        let err = p.poll().unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge(17));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn chunked_huge_size_cannot_wrap_past_the_limit() {
        // `decoded.len() + size` overflows usize for a 16-hex-digit
        // size; the check must saturate and answer 413, not wrap to a
        // small number and stream unbounded data (release-mode DoS).
        let mut p = RequestParser::new(Limits::default());
        p.feed(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n1\r\nA\r\nffffffffffffffff\r\n",
        );
        let err = p.poll().unwrap_err();
        assert_eq!(err.status(), 413, "{err:?}");
    }

    #[test]
    fn chunked_terminal_chunk_allowed_at_exact_limit() {
        // A body that exactly fills the limit must still terminate: the
        // `0` chunk is not a size declaration.
        let limits = Limits {
            max_body_bytes: 4,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcd\r\n0\r\n\r\n");
        assert_eq!(p.poll().unwrap().unwrap().body, b"abcd");
    }

    #[test]
    fn chunked_oversized_trailers_are_431() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"POST / HTTP/1.1\r\nTE2: x\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n");
        assert_eq!(p.poll(), Ok(None));
        let mut err = None;
        for _ in 0..16 {
            p.feed(b"X-Trailer-Filler: aaaaaaaaaaaaaaaa\r\n");
            match p.poll() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("trailers never terminated"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err.unwrap().status(), 431);
    }

    #[test]
    fn unknown_transfer_codings_stay_501() {
        // The regression pair: chunked must parse (above), every other
        // coding — and ambiguous coding lists — must still answer 501.
        for raw in [
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"[..],
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked, chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding:\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err, ParseError::UnsupportedTransferEncoding, "{raw:?}");
            assert_eq!(err.status(), 501, "{raw:?}");
        }
    }

    #[test]
    fn chunked_plus_content_length_is_rejected() {
        let err = parse_all(
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::ConflictingFraming);
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn mid_request_tracks_partial_state() {
        let mut p = RequestParser::new(Limits::default());
        assert!(!p.mid_request());
        p.feed(b"GET / HT");
        assert!(p.mid_request());
        p.feed(b"TP/1.1\r\n\r\n");
        assert!(p.poll().unwrap().is_some());
        assert!(!p.mid_request(), "fully drained parser is idle");
    }

    #[test]
    fn errors_are_sticky() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(b"BROKEN\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        assert!(p.poll().is_err());
        assert!(p.poll().is_err(), "poisoned parser must stay failed");
    }

    #[test]
    fn response_bytes_shape() {
        let r = Response::json(200, b"{}".to_vec(), true);
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_body_escapes_json() {
        let r = Response::error(400, "bad \"quote\"", false);
        let text = String::from_utf8(r.body.to_vec()).unwrap();
        assert_eq!(text, "{\"error\":\"bad \\\"quote\\\"\",\"status\":400}");
    }

    #[test]
    fn chunked_response_round_trips_through_the_parser() {
        // Self-test the writer against our own decoder: a chunked POST
        // assembled with write_chunk parses back to the same body.
        let mut raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        write_chunk(&mut raw, b"[");
        write_chunk(&mut raw, b"{\"a\":1}");
        write_chunk(&mut raw, b""); // skipped, must not terminate
        write_chunk(&mut raw, b"]");
        write_last_chunk(&mut raw);
        let req = parse_all(&raw).unwrap().unwrap();
        assert_eq!(req.body, b"[{\"a\":1}]");
    }

    #[test]
    fn chunked_head_shape() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/json", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn rate_limited_response_carries_retry_after() {
        let text = String::from_utf8(rate_limited_response_bytes(2)).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());
        assert!(body.contains("\"status\":429"));
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let text = String::from_utf8(shed_response_bytes(1)).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());
    }
}
