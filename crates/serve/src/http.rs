//! A hand-rolled HTTP/1.1 layer over `std::net`.
//!
//! The container has no crates.io access, so there is no hyper/tokio; the
//! serve workload is CPU-bound page auditing, which per the workspace's
//! networking guidance runs fine on blocking OS threads. What this module
//! provides is deliberately small and fully testable without sockets:
//!
//! * [`RequestParser`] — an incremental (push-based) request parser. Bytes
//!   arrive in arbitrary chunks (TCP reads tear start-lines, CRLFs and
//!   bodies at any offset); the parser buffers and yields complete
//!   [`Request`]s. Pipelined requests in one read are handled: leftover
//!   bytes stay buffered for the next [`RequestParser::poll`].
//! * [`ParseError`] — typed protocol violations, each mapped to the HTTP
//!   status the server answers before closing the connection
//!   (malformed start-line → 400, oversized body → 413, oversized
//!   header block → 431).
//! * [`Response`] — a minimal response writer with keep-alive handling.
//!
//! Only what the audit service needs is implemented: `Content-Length`
//! bodies (no chunked transfer — a `Transfer-Encoding` header is rejected
//! with 501), no trailers, no multiline header folding (folding was
//! deprecated by RFC 7230 and is rejected as malformed).

/// Byte-size limits enforced while parsing.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the start-line + header block (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            // Generous for HTML pages; the paper's corpus tops out well
            // below this even with Appendix-E extreme alt texts.
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verbatim (methods are case-sensitive tokens).
    pub method: String,
    /// Request target verbatim, e.g. `/v1/audit`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// HTTP/1.1 default: keep-alive unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A protocol violation, with the status the server should answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Start-line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadStartLine,
    /// A header line without `:`, an empty/illegal header name, or
    /// obs-fold continuation.
    BadHeader,
    /// `Content-Length` missing on a method requiring none, duplicated,
    /// or not a decimal number.
    BadContentLength,
    /// Start-line + headers exceed [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`].
    BodyTooLarge(usize),
    /// `Transfer-Encoding` is not supported by this server.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// HTTP status code the server answers with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BodyTooLarge(_) => 413,
            ParseError::HeadTooLarge => 431,
            ParseError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn detail(&self) -> String {
        match self {
            ParseError::BadStartLine => "malformed request line".to_string(),
            ParseError::BadHeader => "malformed header".to_string(),
            ParseError::BadContentLength => "missing or invalid content-length".to_string(),
            ParseError::HeadTooLarge => "header block too large".to_string(),
            ParseError::BodyTooLarge(n) => format!("declared body of {n} bytes exceeds limit"),
            ParseError::UnsupportedTransferEncoding => {
                "transfer-encoding is not supported".to_string()
            }
        }
    }
}

/// Parsed start-line + headers, waiting for the body to arrive.
#[derive(Debug)]
struct PendingHead {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// Incremental request parser.
///
/// Feed raw bytes with [`feed`](RequestParser::feed) as they arrive from
/// the socket, then drain complete requests with
/// [`poll`](RequestParser::poll). The parse result is independent of how
/// the byte stream was chunked — the property the proptests pin down.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
    pending: Option<PendingHead>,
    /// A protocol error is sticky: the connection is poisoned.
    failed: bool,
}

impl RequestParser {
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
            pending: None,
            failed: false,
        }
    }

    /// Append bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to complete one request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes". Errors are sticky — after a
    /// protocol violation the connection must be answered and closed.
    pub fn poll(&mut self) -> Result<Option<Request>, ParseError> {
        if self.failed {
            return Err(ParseError::BadStartLine);
        }
        match self.poll_inner() {
            Err(e) => {
                self.failed = true;
                Err(e)
            }
            ok => ok,
        }
    }

    fn poll_inner(&mut self) -> Result<Option<Request>, ParseError> {
        if self.pending.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                // No terminator yet: enforce the head limit on what has
                // accumulated so a slow-loris header stream cannot grow
                // the buffer without bound.
                if self.buf.len() > self.limits.max_head_bytes {
                    return Err(ParseError::HeadTooLarge);
                }
                return Ok(None);
            };
            if head_end > self.limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            let head = parse_head(&self.buf[..head_end], self.limits.max_body_bytes)?;
            self.buf.drain(..head_end + 4);
            self.pending = Some(head);
        }

        let need = self.pending.as_ref().expect("pending head").content_length;
        if self.buf.len() < need {
            return Ok(None);
        }
        let head = self.pending.take().expect("pending head");
        let body: Vec<u8> = self.buf.drain(..need).collect();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        }))
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8], max_body: usize) -> Result<PendingHead, ParseError> {
    let head = std::str::from_utf8(head).map_err(|_| ParseError::BadHeader)?;
    let mut lines = head.split("\r\n");
    let start = lines.next().ok_or(ParseError::BadStartLine)?;

    // METHOD SP TARGET SP HTTP/1.x — exactly three space-separated parts.
    let mut parts = start.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(ParseError::BadStartLine),
    };
    if method.is_empty()
        || !method
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b == b'-' || b == b'_')
    {
        return Err(ParseError::BadStartLine);
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(ParseError::BadStartLine);
    }
    if !version.starts_with("HTTP/1.") || version.len() != 8 {
        return Err(ParseError::BadStartLine);
    }

    let mut headers = Vec::new();
    for line in lines {
        // A line starting with whitespace would be RFC 7230 obs-fold.
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError::BadHeader);
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ParseError::UnsupportedTransferEncoding);
    }

    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match (lengths.next(), lengths.next()) {
        (None, _) => 0,
        // DIGIT-only per RFC 9110 — `usize::from_str` alone would also
        // accept a leading `+`, which an intermediary may frame
        // differently (request-smuggling precondition).
        (Some((_, v)), None) => {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::BadContentLength);
            }
            v.parse::<usize>()
                .map_err(|_| ParseError::BadContentLength)?
        }
        // Conflicting duplicate content-lengths are a smuggling vector.
        (Some(_), Some(_)) => return Err(ParseError::BadContentLength),
    };
    if content_length > max_body {
        return Err(ParseError::BodyTooLarge(content_length));
    }

    Ok(PendingHead {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        content_length,
    })
}

/// RFC 7230 `tchar` (the subset that matters for header names).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'!' | b'#' | b'$' | b'%' | b'&')
}

/// Reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

/// A response payload: owned bytes for one-off documents, shared bytes
/// for cache hits so the cached JSON is never copied per request.
#[derive(Debug, Clone)]
pub enum Body {
    Owned(Vec<u8>),
    Shared(std::sync::Arc<Vec<u8>>),
}

impl Body {
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(v) => v,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Owned(v)
    }
}

impl From<std::sync::Arc<Vec<u8>>> for Body {
    fn from(v: std::sync::Arc<Vec<u8>>) -> Body {
        Body::Shared(v)
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Body,
    /// Whether the connection survives this exchange.
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Body>, keep_alive: bool) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            keep_alive,
        }
    }

    /// The standard JSON error envelope.
    pub fn error(status: u16, detail: &str, keep_alive: bool) -> Response {
        let body = format!(
            "{{\"error\":{},\"status\":{status}}}",
            json_escape_string(detail)
        );
        Response::json(status, body.into_bytes(), keep_alive)
    }

    /// Serialize head + body into `out` (cleared first). Taking the
    /// buffer from the caller lets the connection loop reuse one
    /// allocation across every response it writes.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        use std::io::Write;
        out.clear();
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len(),
            if self.keep_alive {
                "keep-alive"
            } else {
                "close"
            },
        )
        .expect("write to Vec");
        out.extend_from_slice(self.body.as_slice());
    }

    /// Serialize head + body into one write-ready buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_into(&mut out);
        out
    }
}

/// Minimal JSON string escaping for error details (matches the
/// `serde_json` shim's escaping rules).
fn json_escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        let mut p = RequestParser::new(Limits::default());
        p.feed(bytes);
        p.poll()
    }

    #[test]
    fn parses_simple_get() {
        let req = parse_all(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_all(b"POST /v1/audit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let raw = b"POST /v1/audit HTTP/1.1\r\nContent-Type: text/html\r\nContent-Length: 11\r\n\r\n<html></html>"; // body longer than 11 on purpose: pipelined residue
        let one_shot = {
            let mut p = RequestParser::new(Limits::default());
            p.feed(raw);
            p.poll().unwrap().unwrap()
        };
        let mut p = RequestParser::new(Limits::default());
        let mut trickled = None;
        for b in raw.iter() {
            p.feed(&[*b]);
            if let Some(req) = p.poll().unwrap() {
                trickled = Some(req);
                break;
            }
        }
        assert_eq!(trickled.unwrap(), one_shot);
        assert_eq!(one_shot.body, b"<html></htm");
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.poll().unwrap().unwrap().path, "/a");
        assert_eq!(p.poll().unwrap().unwrap().path, "/b");
        assert_eq!(p.poll().unwrap(), None);
    }

    #[test]
    fn connection_close_observed() {
        let req = parse_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn malformed_start_lines_are_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn malformed_headers_are_400() {
        for raw in [
            &b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\n: novalue\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n",
        ] {
            assert_eq!(parse_all(raw).unwrap_err().status(), 400, "{raw:?}");
        }
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let limits = Limits {
            max_body_bytes: 100,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 101\r\n\r\n");
        let err = p.poll().unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge(101));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_431_even_without_terminator() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut p = RequestParser::new(limits);
        p.feed(b"GET / HTTP/1.1\r\n");
        // Keep streaming header bytes without ever finishing the head.
        let mut err = None;
        for _ in 0..64 {
            p.feed(b"X-Filler: aaaaaaaaaaaaaaaa\r\n");
            match p.poll() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("head never terminated"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err.unwrap().status(), 431);
    }

    #[test]
    fn non_digit_content_length_rejected() {
        // `usize::from_str` accepts a leading `+`; RFC 9110 does not.
        for raw in [
            &b"POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello"[..],
            b"POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 0x5\r\n\r\nhello",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err, ParseError::BadContentLength, "{raw:?}");
        }
    }

    #[test]
    fn duplicate_content_length_rejected() {
        let err = parse_all(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx")
            .unwrap_err();
        assert_eq!(err, ParseError::BadContentLength);
    }

    #[test]
    fn transfer_encoding_rejected() {
        let err = parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn errors_are_sticky() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(b"BROKEN\r\n\r\nGET / HTTP/1.1\r\n\r\n");
        assert!(p.poll().is_err());
        assert!(p.poll().is_err(), "poisoned parser must stay failed");
    }

    #[test]
    fn response_bytes_shape() {
        let r = Response::json(200, b"{}".to_vec(), true);
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_body_escapes_json() {
        let r = Response::error(400, "bad \"quote\"", false);
        let text = String::from_utf8(r.body.to_vec()).unwrap();
        assert_eq!(text, "{\"error\":\"bad \\\"quote\\\"\",\"status\":400}");
    }
}
