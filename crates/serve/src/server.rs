//! The HTTP server: two selectable connection cores behind one
//! `spawn()` — the original thread-per-connection loop (the behavioural
//! oracle) and the epoll reactor (`crate::reactor`, the scaling core) —
//! plus routing and the streaming batch writer shared by both.
//!
//! Thread-per-connection architecture (std-only, one OS thread per
//! admitted connection; [`ServeCore::Threaded`]):
//!
//! ```text
//! spawn() ──► accept thread ──► Governor ──► connection threads
//!                 │              │  cap → serve / queue / shed(503)     │
//!                 │              └─ finished threads pop the queue      │
//!                 │                   RequestParser::feed/poll          │
//!                 │                   route() ──► AuditService          │
//!                 │                      │    └─► ShardedCache          │
//!                 │                      └─ BatchStream ─► StreamFanout │
//!                 │                         (chunked response while the │
//!                 │                          work-stealing pool runs)   │
//!                 └─ ServerHandle::shutdown(): flag + self-connect to
//!                    unblock accept, drop queued waiters, then join
//!                    accept + connections (in-flight requests finish).
//! ```
//!
//! [`ServeCore::Reactor`] replaces the per-connection threads with one
//! event loop over non-blocking sockets (see `crate::reactor`); the
//! governor, parser, router, and batch writer are the same objects, so
//! the two cores answer byte-identical responses — pinned by the
//! differential proptest and the core-parameterized torture suite.
//!
//! Batch requests fan their pages out over the workspace's work-stealing
//! pool (`crawl::pool::run_work_stealing`) so a many-page batch uses
//! every core, exactly like the offline crawl pipeline. Each page inside
//! a batch goes through the same content-hash cache as single audits, so
//! mixed single/batch traffic shares one response cache — and since the
//! streaming rewrite, the response is written element by element as pool
//! units complete, holding at most a bounded reorder window in memory
//! instead of the whole spliced array.

use crate::batch::{PeakGauge, StreamFanout};
use crate::cache::{CacheSnapshot, ShardedCache};
use crate::fairness::{FairnessConfig, PeerLimiter};
use crate::governor::{Admission, Governor};
use crate::http::{self, Limits, Request, RequestParser, Response};
use crate::service::AuditService;
use crate::stats::{LatencyHistogram, LatencySnapshot, RequestCounters, RequestSnapshot};
use langcrux_crawl::run_work_stealing;
use langcrux_obs as obs;
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `Retry-After` hint (seconds) on governor-shed 503 responses.
pub(crate) const RETRY_AFTER_SECS: u32 = 1;

/// Which connection engine drives accepted sockets.
///
/// Both cores share the governor, parser, router, cache, and batch
/// writer; they differ only in how readiness and deadlines are
/// delivered. `Threaded` burns one OS thread per admitted connection
/// (simple, and kept as the behavioural oracle); `Reactor` multiplexes
/// every connection over one epoll event loop with a deadline wheel —
/// the core that holds throughput flat under thousands of mostly-idle
/// keep-alive connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeCore {
    /// One OS thread per admitted connection (the original core).
    Threaded,
    /// One event loop over non-blocking sockets + raw `epoll` FFI.
    /// Falls back to `Threaded` off Linux (epoll is Linux-only).
    Reactor,
}

impl ServeCore {
    /// Both cores, for parameterizing tests and benches.
    pub const ALL: [ServeCore; 2] = [ServeCore::Threaded, ServeCore::Reactor];

    /// The core that will actually run on this platform.
    pub fn effective(self) -> ServeCore {
        if cfg!(target_os = "linux") {
            self
        } else {
            ServeCore::Threaded
        }
    }

    /// Stable lowercase name for bench records and logs.
    pub fn name(self) -> &'static str {
        match self {
            ServeCore::Threaded => "threaded",
            ServeCore::Reactor => "reactor",
        }
    }
}

impl Default for ServeCore {
    /// The reactor is the production default where it exists.
    fn default() -> Self {
        ServeCore::Reactor.effective()
    }
}

/// An embedder-installed handler for `POST /v1/rpc/<name>` requests:
/// `(name, body) -> Some((status, json_body))`, or `None` for an unknown
/// RPC name (404). The repro harness uses this to expose the distributed
/// build's unit-execution endpoint on worker processes without the serve
/// crate knowing anything about the pipeline.
///
/// The hook runs on whichever thread routed the request — a connection
/// thread under the threaded core, the event loop under the reactor.
/// Long-running hooks (like distributed work units) should therefore be
/// served with [`ServeCore::Threaded`]; the reactor core's
/// run-to-completion discipline is sized for short audit requests.
#[derive(Clone)]
pub struct RpcHook(pub Arc<RpcHandler>);

/// The boxed handler type inside an [`RpcHook`].
pub type RpcHandler = dyn Fn(&str, &[u8]) -> Option<(u16, Vec<u8>)> + Send + Sync;

impl std::fmt::Debug for RpcHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RpcHook(..)")
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Worker threads for batch fan-out (0 = one per core).
    pub batch_threads: usize,
    pub cache_shards: usize,
    pub cache_capacity_per_shard: usize,
    pub limits: Limits,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Hard cap on concurrently served connections (and therefore on
    /// connection threads). Beyond it, arrivals queue then shed.
    pub max_connections: usize,
    /// Accepted connections parked while all slots are busy; beyond
    /// this, arrivals are shed with `503 + Retry-After`.
    pub accept_queue: usize,
    /// A request whose bytes started arriving must parse completely
    /// within this window, or the connection is answered `408` and
    /// closed — the slowloris bound.
    pub request_deadline: Duration,
    /// OS-level write timeout: a client that stops reading its response
    /// cannot pin a connection thread past this.
    pub write_timeout: Duration,
    /// Streaming-batch reorder window in elements (0 = auto: twice the
    /// batch worker count). Bounds batch memory at O(window × element).
    pub batch_window: usize,
    /// Which connection engine drives accepted sockets.
    pub core: ServeCore,
    /// Per-peer token-bucket rate limiting (`None` = off). Enforced by
    /// both cores at request admission: a request from a drained bucket
    /// answers `429 + Retry-After` and closes the connection.
    pub fairness: Option<FairnessConfig>,
    /// Cap on a `POST /v1/batch` (or `/v1/rpc/*`) body in bytes; larger
    /// bodies answer `413`. This is the bound on the reactor core's
    /// run-to-completion window: the event loop streams a batch to
    /// completion while other connections wait (`run_batch_blocking` in
    /// the reactor), so the blocking stretch is proportional to batch
    /// size — capping the bytes caps the stall. Enforced in the shared
    /// router, so both cores shed identically. Tighter than
    /// [`Limits::max_body_bytes`], which bounds what the *parser* will
    /// buffer for any request.
    pub max_batch_bytes: usize,
    /// Embedder RPC handler for `POST /v1/rpc/*` (`None` = 404).
    pub rpc: Option<RpcHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".parse().expect("loopback addr"),
            batch_threads: 0,
            cache_shards: 8,
            cache_capacity_per_shard: 256,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(10),
            max_connections: 256,
            accept_queue: 64,
            request_deadline: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            batch_window: 0,
            core: ServeCore::default(),
            fairness: None,
            max_batch_bytes: 2 * 1024 * 1024,
            rpc: None,
        }
    }
}

/// Shared server state.
pub struct ServeState {
    pub service: AuditService,
    pub cache: ShardedCache,
    pub counters: RequestCounters,
    pub latency: LatencyHistogram,
    /// High-water mark of bytes parked in streaming-batch reorder
    /// buffers — the observable proof that batches stream instead of
    /// buffering the whole response array.
    pub peak_batch_buffer: PeakGauge,
    /// Extra metric collectors registered by the embedding process —
    /// the repro daemon registers its pipeline/crawl/corpus telemetry
    /// here after a build, so `/v1/metrics` and `/v1/stats` export it
    /// alongside the server's own counters.
    pub extra: obs::Registry,
    /// The per-peer fairness limiter, when configured. Shared by every
    /// connection of this server so a peer's budget spans reconnects.
    pub fairness: Option<PeerLimiter>,
    /// Reactor-core telemetry (zero while the threaded core runs).
    pub reactor: ReactorGauges,
    batch_threads: usize,
    /// See [`ServeConfig::max_batch_bytes`].
    max_batch_bytes: usize,
    /// See [`ServeConfig::rpc`].
    rpc: Option<RpcHook>,
    started: Instant,
}

/// Observable reactor internals, exported on `/v1/metrics`: how many
/// readiness events the loop has consumed, how many connections are
/// currently armed in epoll, and how many deadline-wheel entries are
/// outstanding.
#[derive(Default)]
pub struct ReactorGauges {
    /// Total readiness events returned by `epoll_wait` (counter).
    pub ready_events: AtomicU64,
    /// Connections currently registered with the reactor (gauge).
    pub armed_connections: AtomicU64,
    /// Entries outstanding in the deadline wheel (gauge; includes
    /// lazily-cancelled stale entries awaiting their tick).
    pub wheel_depth: AtomicU64,
}

impl ReactorGauges {
    pub fn snapshot(&self) -> ReactorSnapshot {
        ReactorSnapshot {
            ready_events: self.ready_events.load(Ordering::Relaxed),
            armed_connections: self.armed_connections.load(Ordering::Relaxed),
            wheel_depth: self.wheel_depth.load(Ordering::Relaxed),
        }
    }
}

/// The `reactor` object inside `GET /v1/stats`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ReactorSnapshot {
    pub ready_events: u64,
    pub armed_connections: u64,
    pub wheel_depth: u64,
}

/// The `GET /v1/stats` document.
#[derive(Debug, Clone, Serialize)]
pub struct StatsSnapshot {
    pub uptime_ms: u64,
    pub requests: RequestSnapshot,
    pub cache: CacheSnapshot,
    pub latency: LatencySnapshot,
    /// Peak bytes buffered by any streaming batch (reorder window).
    pub peak_batch_buffer: u64,
    /// Reactor-core internals (all zero under the threaded core).
    pub reactor: ReactorSnapshot,
}

impl ServeState {
    fn new(config: &ServeConfig) -> Self {
        ServeState {
            service: AuditService::new(),
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity_per_shard),
            counters: RequestCounters::default(),
            latency: LatencyHistogram::default(),
            peak_batch_buffer: PeakGauge::default(),
            extra: obs::Registry::new(),
            fairness: config.fairness.map(PeerLimiter::new),
            reactor: ReactorGauges::default(),
            batch_threads: config.batch_threads,
            max_batch_bytes: config.max_batch_bytes,
            rpc: config.rpc.clone(),
            started: Instant::now(),
        }
    }

    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.counters.snapshot(),
            cache: self.cache.snapshot(),
            latency: self.latency.snapshot(),
            peak_batch_buffer: self.peak_batch_buffer.get() as u64,
            reactor: self.reactor.snapshot(),
        }
    }

    /// One registry pass over everything this server exports: build
    /// info, its own stats, and every collector registered in
    /// [`extra`](ServeState::extra). `/v1/metrics` (Prometheus) and the
    /// `metrics` object inside `/v1/stats` (JSON) are both rendered
    /// from this encoder, so the two views cannot drift.
    pub fn encode_metrics(&self, stats: &StatsSnapshot) -> obs::Encoder {
        let mut enc = obs::Encoder::new();
        obs::registry::encode_build_info(&mut enc, "langcrux-serve", env!("CARGO_PKG_VERSION"));
        encode_stats(stats, &mut enc);
        self.extra.collect_into(&mut enc);
        enc
    }

    /// The `GET /v1/healthz` build-info document.
    fn healthz_body(&self) -> Vec<u8> {
        let doc = Value::Object(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            (
                "service".to_string(),
                Value::Str("langcrux-serve".to_string()),
            ),
            (
                "version".to_string(),
                Value::Str(env!("CARGO_PKG_VERSION").to_string()),
            ),
            (
                "git_sha".to_string(),
                Value::Str(obs::registry::git_sha().to_string()),
            ),
            (
                "uptime_seconds".to_string(),
                Value::UInt(self.started.elapsed().as_secs()),
            ),
            (
                "features".to_string(),
                Value::Array(
                    obs::registry::feature_flags()
                        .into_iter()
                        .map(|f| Value::Str(f.to_string()))
                        .collect(),
                ),
            ),
        ]);
        serde_json::to_string(&doc)
            .expect("healthz serialize")
            .into_bytes()
    }

    /// Effective batch fan-out worker count.
    fn batch_threads(&self) -> usize {
        if self.batch_threads == 0 {
            langcrux_crawl::default_threads()
        } else {
            self.batch_threads
        }
        .max(1)
    }
}

/// Register the stats snapshot into a metrics [`obs::Encoder`] — the
/// single definition of serve's exposition. Every counter/gauge `GET
/// /v1/stats` serves as JSON appears here under the `langcrux_serve_`
/// namespace; latency is a native histogram (cumulative `_bucket{le}`
/// series — occupied buckets plus the mandatory `+Inf` — with
/// `_sum`/`_count`), so quantiles are computed by the scraper instead of
/// being frozen at scrape time.
pub fn encode_stats(stats: &StatsSnapshot, enc: &mut obs::Encoder) {
    enc.gauge(
        "langcrux_serve_uptime_milliseconds",
        "Time since the server started.",
        stats.uptime_ms as f64,
    );
    let r = &stats.requests;
    const REQUESTS: &str = "Successfully routed requests by endpoint.";
    for (endpoint, value) in [
        ("audit", r.audit),
        ("batch", r.batch),
        ("rpc", r.rpc),
        ("healthz", r.healthz),
        ("stats", r.stats),
    ] {
        enc.counter_with(
            "langcrux_serve_requests_total",
            REQUESTS,
            &[("endpoint", endpoint)],
            value as f64,
        );
    }
    enc.counter(
        "langcrux_serve_batch_pages_total",
        "Pages audited inside batch requests.",
        r.batch_pages as f64,
    );
    enc.counter(
        "langcrux_serve_errors_total",
        "4xx/5xx answers (routing + protocol errors).",
        r.errors as f64,
    );
    enc.counter(
        "langcrux_serve_shed_total",
        "Connections refused with 503 by the governor.",
        r.shed as f64,
    );
    enc.counter(
        "langcrux_serve_timeouts_total",
        "Connections closed with 408 by the request deadline.",
        r.timeouts as f64,
    );
    enc.counter(
        "langcrux_serve_rate_limited_total",
        "Requests refused with 429 by the per-peer fairness limiter.",
        r.rate_limited as f64,
    );
    let c = &stats.cache;
    enc.counter(
        "langcrux_serve_cache_hits_total",
        "Response-cache lookups served from cache.",
        c.hits as f64,
    );
    enc.counter(
        "langcrux_serve_cache_misses_total",
        "Response-cache lookups that computed an audit.",
        c.misses as f64,
    );
    enc.counter(
        "langcrux_serve_cache_evictions_total",
        "Response-cache LRU evictions.",
        c.evictions as f64,
    );
    enc.gauge(
        "langcrux_serve_cache_entries",
        "Responses resident in the cache.",
        c.entries as f64,
    );
    let l = &stats.latency;
    // The overflow bucket is folded into the mandatory +Inf line.
    let mut buckets: Vec<(String, u64)> = l
        .buckets
        .iter()
        .filter(|b| b.upper_us != u64::MAX)
        .map(|b| (b.upper_us.to_string(), b.cumulative))
        .collect();
    buckets.push(("+Inf".to_string(), l.count));
    enc.histogram(
        "langcrux_serve_request_latency_microseconds",
        "Request latency histogram (native cumulative buckets; empty buckets elided, \
         le bounds in microseconds).",
        &buckets,
        l.total_us as f64,
        l.count,
    );
    enc.gauge(
        "langcrux_serve_peak_batch_buffer_bytes",
        "Peak bytes parked in a streaming-batch reorder window.",
        stats.peak_batch_buffer as f64,
    );
    let rx = &stats.reactor;
    enc.counter(
        "langcrux_serve_reactor_ready_events_total",
        "Readiness events consumed by the reactor's epoll loop.",
        rx.ready_events as f64,
    );
    enc.gauge(
        "langcrux_serve_reactor_armed_connections",
        "Connections currently registered with the reactor.",
        rx.armed_connections as f64,
    );
    enc.gauge(
        "langcrux_serve_reactor_wheel_depth",
        "Deadline-wheel entries outstanding (incl. stale lazy-cancelled).",
        rx.wheel_depth as f64,
    );
}

/// Render the stats snapshot in Prometheus text exposition format
/// (version 0.0.4) via [`encode_stats`] — one encoder pass shared with
/// the JSON view, so the two can never drift.
pub fn prometheus_text(stats: &StatsSnapshot) -> String {
    let mut enc = obs::Encoder::new();
    encode_stats(stats, &mut enc);
    enc.prometheus_text()
}

/// Whether the request's `Accept` header *prefers* plain text over JSON
/// (Prometheus scrapers send `text/plain` or the versioned exposition
/// type). Honors q-values: `text/plain;q=0` refuses text, and
/// `application/json, text/plain;q=0.1` keeps the JSON document —
/// pre-PR clients of `/v1/stats` that merely tolerate text are not
/// switched to the exposition format.
fn accepts_text_plain(request: &Request) -> bool {
    let Some(accept) = request.header("accept") else {
        return false;
    };
    let mut text_q: f64 = 0.0;
    let mut json_q: f64 = 0.0;
    for item in accept.split(',') {
        let mut parts = item.split(';');
        let media = parts.next().unwrap_or("").trim().to_ascii_lowercase();
        let mut q = 1.0f64;
        for param in parts {
            if let Some(value) = param.trim().strip_prefix("q=") {
                q = value.trim().parse().unwrap_or(0.0);
            }
        }
        match media.as_str() {
            "text/plain" | "text/*" => text_q = text_q.max(q),
            "application/json" | "application/*" => json_q = json_q.max(q),
            _ => {}
        }
    }
    text_q > 0.0 && text_q > json_q
}

/// A routed request: either a complete response, or a batch whose
/// response the connection loop streams as chunked encoding while the
/// work-stealing pool completes elements.
#[derive(Debug)]
pub enum Routed {
    Response(Response),
    /// `POST /v1/batch` with a validated page list.
    BatchStream {
        pages: Vec<String>,
        keep_alive: bool,
    },
}

/// Route one parsed request. Pure in `(state, request)` modulo telemetry,
/// which is what lets the router be unit-tested without sockets.
pub fn route(state: &ServeState, request: &Request) -> Routed {
    let keep = request.keep_alive();
    let relaxed = Ordering::Relaxed;
    let full = Routed::Response;
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/audit") => {
            let Ok(html) = std::str::from_utf8(&request.body) else {
                state.counters.errors.fetch_add(1, relaxed);
                return full(Response::error(400, "body is not valid utf-8", keep));
            };
            let (bytes, _hit) = state
                .cache
                .get_or_compute(&request.body, || state.service.audit_json(html));
            state.counters.audit.fetch_add(1, relaxed);
            // The Arc goes straight into the response body: a cache hit
            // never copies the cached JSON.
            full(Response::json(200, bytes, keep))
        }
        ("POST", "/v1/batch") => {
            // Satellite guard for the reactor's run-to-completion batch
            // handoff: bound how long one batch can pin the event loop
            // by bounding its bytes (see [`ServeConfig::max_batch_bytes`]).
            if request.body.len() > state.max_batch_bytes {
                state.counters.errors.fetch_add(1, relaxed);
                return full(Response::error(
                    413,
                    "batch body exceeds max_batch_bytes",
                    keep,
                ));
            }
            let Ok(body) = std::str::from_utf8(&request.body) else {
                state.counters.errors.fetch_add(1, relaxed);
                return full(Response::error(400, "body is not valid utf-8", keep));
            };
            match serde_json::from_str::<Vec<String>>(body) {
                Ok(pages) => Routed::BatchStream {
                    pages,
                    keep_alive: keep,
                },
                Err(_) => {
                    state.counters.errors.fetch_add(1, relaxed);
                    full(Response::error(
                        400,
                        "body must be a JSON array of HTML strings",
                        keep,
                    ))
                }
            }
        }
        ("GET", "/v1/healthz") => {
            state.counters.healthz.fetch_add(1, relaxed);
            full(Response::json(200, state.healthz_body(), keep))
        }
        ("GET", "/v1/stats") => {
            state.counters.stats.fetch_add(1, relaxed);
            let stats = state.stats();
            // Content negotiation: `Accept: text/plain` gets the
            // Prometheus exposition instead of the JSON document.
            if accepts_text_plain(request) {
                let body = state.encode_metrics(&stats).prometheus_text().into_bytes();
                return full(Response::prometheus(200, body, keep));
            }
            // Legacy typed fields plus a `metrics` object rendered from
            // the same encoder pass as `/v1/metrics`.
            let mut doc = stats.to_value();
            if let Value::Object(fields) = &mut doc {
                fields.push((
                    "metrics".to_string(),
                    state.encode_metrics(&stats).to_value(),
                ));
            }
            let body = serde_json::to_string(&doc)
                .expect("stats serialize")
                .into_bytes();
            full(Response::json(200, body, keep))
        }
        ("GET", "/v1/metrics") => {
            state.counters.stats.fetch_add(1, relaxed);
            let stats = state.stats();
            let body = state.encode_metrics(&stats).prometheus_text().into_bytes();
            full(Response::prometheus(200, body, keep))
        }
        ("POST", path) if path.starts_with("/v1/rpc/") => {
            // Embedder RPC (e.g. distributed-build work units). The same
            // byte cap as /v1/batch applies: an RPC body is executed
            // run-to-completion by whichever thread routed it.
            if request.body.len() > state.max_batch_bytes {
                state.counters.errors.fetch_add(1, relaxed);
                return full(Response::error(
                    413,
                    "rpc body exceeds max_batch_bytes",
                    keep,
                ));
            }
            let name = &path["/v1/rpc/".len()..];
            match state
                .rpc
                .as_ref()
                .and_then(|hook| (hook.0)(name, &request.body))
            {
                Some((status, body)) if status < 400 => {
                    state.counters.rpc.fetch_add(1, relaxed);
                    full(Response::json(status, body, keep))
                }
                Some((status, body)) => {
                    state.counters.errors.fetch_add(1, relaxed);
                    full(Response::json(status, body, keep))
                }
                None => {
                    state.counters.errors.fetch_add(1, relaxed);
                    full(Response::error(404, "no such rpc", keep))
                }
            }
        }
        (_, "/v1/audit" | "/v1/batch" | "/v1/healthz" | "/v1/stats" | "/v1/metrics") => {
            state.counters.errors.fetch_add(1, relaxed);
            full(Response::error(405, "method not allowed", keep))
        }
        (_, path) if path.starts_with("/v1/rpc/") => {
            state.counters.errors.fetch_add(1, relaxed);
            full(Response::error(405, "method not allowed", keep))
        }
        _ => {
            state.counters.errors.fetch_add(1, relaxed);
            full(Response::error(404, "no such endpoint", keep))
        }
    }
}

/// The pre-streaming buffered batch body: every element spliced into one
/// array, each byte-identical to its single-audit bytes. Kept as the
/// equivalence oracle for the streaming path (the de-chunked streamed
/// response must equal these bytes exactly) and for in-process callers
/// that want the whole document in memory. Uses the shared response
/// cache but does not touch the request counters.
pub fn batch_buffered(state: &ServeState, pages: &[String]) -> Vec<u8> {
    let reports: Vec<Arc<Vec<u8>>> = run_work_stealing(state.batch_threads(), pages, |_, page| {
        let (bytes, _hit) = state
            .cache
            .get_or_compute(page.as_bytes(), || state.service.audit_json(page));
        bytes
    });
    let total: usize = reports.iter().map(|r| r.len() + 1).sum();
    let mut body = Vec::with_capacity(total + 2);
    body.push(b'[');
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            body.push(b',');
        }
        body.extend_from_slice(report);
    }
    body.push(b']');
    body
}

/// Stream one batch response: chunked encoding, elements written in
/// order as the work-stealing pool completes them, at most a bounded
/// reorder window of elements in memory. The de-chunked bytes are
/// byte-identical to [`batch_buffered`] for the same pages.
pub(crate) fn stream_batch(
    stream: &mut TcpStream,
    state: &ServeState,
    config: &ServeConfig,
    pages: &[String],
    keep_alive: bool,
    write_buf: &mut Vec<u8>,
) -> std::io::Result<()> {
    let threads = state.batch_threads();
    let window = if config.batch_window == 0 {
        (threads * 2).max(2)
    } else {
        config.batch_window
    };
    let fanout = StreamFanout::new(pages.len(), window);
    let mut io_result = Ok(());
    std::thread::scope(|scope| {
        let fan = &fanout;
        // Poisons the fan-out if a unit closure unwinds before
        // completing — otherwise the writer would wait forever for an
        // element that will never arrive, pinning a governor slot.
        struct PoisonOnUnwind<'a>(&'a StreamFanout, bool);
        impl Drop for PoisonOnUnwind<'_> {
            fn drop(&mut self) {
                if !self.1 {
                    self.0.poison();
                }
            }
        }
        // The pool occupies its own thread; this connection thread is
        // the writer, so elements leave memory as fast as the socket
        // accepts them.
        let pool = scope.spawn(move || {
            run_work_stealing(threads, pages, |i, page| {
                fan.admit(i);
                let mut guard = PoisonOnUnwind(fan, false);
                let (bytes, _hit) = state
                    .cache
                    .get_or_compute(page.as_bytes(), || state.service.audit_json(page));
                fan.complete(i, bytes);
                guard.1 = true;
            });
        });
        io_result = (|| {
            http::write_chunked_head(write_buf, 200, "application/json", keep_alive);
            for i in 0..pages.len() {
                let Some(element) = fanout.next() else {
                    // Poisoned: a worker died mid-batch. The response is
                    // already truncated mid-stream; fail the connection.
                    return Err(std::io::Error::other("batch audit worker panicked"));
                };
                let punctuation: &[u8] = if i == 0 { b"[" } else { b"," };
                http::write_chunk(write_buf, punctuation);
                http::write_chunk(write_buf, &element);
                stream.write_all(write_buf)?;
                write_buf.clear();
            }
            let closing: &[u8] = if pages.is_empty() { b"[]" } else { b"]" };
            http::write_chunk(write_buf, closing);
            http::write_last_chunk(write_buf);
            stream.write_all(write_buf)
        })();
        if io_result.is_err() {
            // Client went away mid-stream (or a worker died): release
            // parked workers and let the pool drain without a consumer.
            fanout.abandon();
        }
        // Join the pool explicitly to consume a propagated unit panic —
        // an unjoined panicked scope thread would re-panic this
        // connection thread at scope exit and leak its governor slot.
        let _ = pool.join();
    });
    state.peak_batch_buffer.observe(fanout.peak_bytes());
    if io_result.is_ok() {
        state.counters.batch.fetch_add(1, Ordering::Relaxed);
        state
            .counters
            .batch_pages
            .fetch_add(pages.len() as u64, Ordering::Relaxed);
    }
    io_result
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process inspection (tests, the bench).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Stop accepting, drain connection threads, and join. Returns the
    /// final stats snapshot — "clean shutdown" means every worker joined.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        self.state.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort stop if the caller never called shutdown().
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Start the server with the configured [`ServeCore`]. Returns once the
/// listener is bound, with the connection engine running in the
/// background. Both cores sit behind the same [`ServerHandle`]:
/// `shutdown()` is flag + self-connect + join either way.
pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServeState::new(&config));
    let shutdown = Arc::new(AtomicBool::new(false));

    let core = config.core.effective();
    let accept = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name(format!("serve-{}", core.name()))
            .spawn(move || match core {
                ServeCore::Threaded => accept_loop(listener, state, shutdown, config),
                #[cfg(target_os = "linux")]
                ServeCore::Reactor => crate::reactor::run(listener, state, shutdown, config),
                #[cfg(not(target_os = "linux"))]
                ServeCore::Reactor => unreachable!("effective() falls back off Linux"),
            })
            .expect("spawn connection-engine thread")
    };

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        accept: Some(accept),
    })
}

pub(crate) fn accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
) {
    // Connection threads are joined before the accept thread exits, so
    // ServerHandle::shutdown() returning means the server is fully quiet.
    // Only this thread touches the handles, so a plain Vec suffices.
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let shed_threads: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
    let governor: Arc<Governor<TcpStream>> =
        Arc::new(Governor::new(config.max_connections, config.accept_queue));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        match governor.admit(stream) {
            Admission::Serve(stream) => {
                let state = Arc::clone(&state);
                let shutdown_flag = Arc::clone(&shutdown);
                let governor = Arc::clone(&governor);
                let config = config.clone();
                let handle = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || {
                        let mut stream = stream;
                        loop {
                            let _ = handle_connection(stream, &state, &shutdown_flag, &config);
                            // Done with this connection: serve a queued
                            // waiter on the same slot, unless draining —
                            // shutdown refuses queued work.
                            let draining = shutdown_flag.load(Ordering::SeqCst);
                            match governor.finish(!draining) {
                                Some(next) => stream = next,
                                None => break,
                            }
                        }
                    })
                    .expect("spawn connection thread");
                workers.push(handle);
                // Opportunistically reap finished workers so a
                // long-lived server does not accumulate handles.
                workers.retain(|h| !h.is_finished());
            }
            Admission::Queued => {
                // Parked inside the governor: a finishing handler thread
                // picks it up. Slot turnover is bounded by the
                // idle/request/write deadlines on every live connection.
            }
            Admission::Shed(stream) => {
                shed_connection(stream, &state, &shed_threads);
            }
        }
    }
    // Queued-but-never-served connections are refused at shutdown:
    // dropping the stream closes the socket.
    drop(governor.drain_queue());
    for handle in workers {
        let _ = handle.join();
    }
}

/// Most concurrent detached threads answering shed connections. Beyond
/// this (a shed storm of non-reading clients), the stream is dropped
/// without the 503 nicety — the connection still closes immediately.
const MAX_SHED_THREADS: usize = 64;

/// Refuse one connection with `503 + Retry-After`. The write (up to the
/// 250 ms write timeout against a non-reading client) and the RST-
/// avoiding read-drain happen on a short-lived detached thread, so a
/// shed — however slow the client — never blocks the accept loop: the
/// governor's refusal stays O(1) per arrival.
fn shed_connection(stream: TcpStream, state: &ServeState, shed_threads: &Arc<AtomicUsize>) {
    state.counters.shed.fetch_add(1, Ordering::Relaxed);
    if shed_threads.fetch_add(1, Ordering::SeqCst) >= MAX_SHED_THREADS {
        shed_threads.fetch_sub(1, Ordering::SeqCst);
        return; // storm: drop without ceremony, closing the socket
    }
    let counter = Arc::clone(shed_threads);
    let spawned = std::thread::Builder::new()
        .name("serve-shed".to_string())
        .spawn(move || {
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            if stream
                .write_all(&http::shed_response_bytes(RETRY_AFTER_SECS))
                .is_ok()
            {
                // Half-close and briefly drain the client's request
                // bytes: closing with unread data in the receive buffer
                // makes the kernel RST the connection, which can destroy
                // the 503 before the client reads it.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                let deadline = Instant::now() + Duration::from_millis(100);
                let mut sink = [0u8; 1024];
                for _ in 0..8 {
                    if !matches!(stream.read(&mut sink), Ok(n) if n > 0)
                        || Instant::now() > deadline
                    {
                        break;
                    }
                }
            }
            counter.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        shed_threads.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Keep-alive loop for one connection.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    shutdown: &AtomicBool,
    config: &ServeConfig,
) -> std::io::Result<()> {
    // Short read timeout so the loop can observe shutdown and enforce
    // the idle/request deadlines without a dedicated wakeup channel; the
    // write timeout stops a non-reading client from pinning the thread.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut parser = RequestParser::new(config.limits);
    let mut read_buf = [0u8; 16 * 1024];
    // One write buffer reused for every response on this connection.
    let mut write_buf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();
    // Set while a request is partially buffered: the slowloris deadline
    // runs from the first byte of a request to its complete parse.
    let mut request_started: Option<Instant> = None;

    loop {
        // Drain every request already buffered (pipelining) before
        // touching the socket again.
        loop {
            match parser.poll() {
                Ok(Some(request)) => {
                    // A request finished parsing: the slowloris deadline
                    // bounds one request's parse, so completing one
                    // re-arms the timer for whatever is buffered next —
                    // without this, a fast client pipelining nonstop
                    // (parser never empty) would be cut off with a
                    // spurious 408 after request_deadline.
                    request_started = None;
                    // Per-peer fairness: a drained token bucket answers
                    // 429 + Retry-After and closes, before routing.
                    if let Some(limiter) = &state.fairness {
                        if let Ok(peer) = stream.peer_addr() {
                            if !limiter.admit(peer.ip()) {
                                state.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
                                let _ = stream.write_all(&http::rate_limited_response_bytes(
                                    limiter.retry_after_secs(),
                                ));
                                return Ok(());
                            }
                        }
                    }
                    let started = Instant::now();
                    let keep = match route(state, &request) {
                        Routed::Response(response) => {
                            response.write_into(&mut write_buf);
                            stream.write_all(&write_buf)?;
                            response.keep_alive
                        }
                        Routed::BatchStream { pages, keep_alive } => {
                            stream_batch(
                                &mut stream,
                                state,
                                config,
                                &pages,
                                keep_alive,
                                &mut write_buf,
                            )?;
                            write_buf.clear();
                            keep_alive
                        }
                    };
                    state
                        .latency
                        .record_us(started.elapsed().as_micros() as u64);
                    last_activity = Instant::now();
                    if !keep {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Answer the protocol error and close: the byte
                    // stream is no longer trustworthy.
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let response = Response::error(e.status(), &e.detail(), false);
                    response.write_into(&mut write_buf);
                    let _ = stream.write_all(&write_buf);
                    return Ok(());
                }
            }
        }

        // Deadline bookkeeping: a partially buffered request keeps its
        // start time; a fully drained parser resets it.
        if parser.mid_request() {
            let started = *request_started.get_or_insert_with(Instant::now);
            if started.elapsed() > config.request_deadline {
                // Slowloris: bytes dribble in fast enough to dodge the
                // idle timeout but the request never completes. Answer
                // 408 and free the slot.
                state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                let response = Response::error(408, "request did not complete in time", false);
                response.write_into(&mut write_buf);
                let _ = stream.write_all(&write_buf);
                return Ok(());
            }
        } else {
            request_started = None;
        }

        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut read_buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                parser.feed(&read_buf[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() > config.idle_timeout {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Body;

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn test_state() -> ServeState {
        ServeState::new(&ServeConfig {
            batch_threads: 2,
            ..ServeConfig::default()
        })
    }

    /// Unwrap the complete-response arm (everything but a valid batch).
    fn full(routed: Routed) -> Response {
        match routed {
            Routed::Response(response) => response,
            Routed::BatchStream { .. } => panic!("expected a complete response"),
        }
    }

    const PAGE: &str = "<html lang=th><head><title>ข่าว</title></head><body>\
        <p>ข่าววันนี้ของประเทศไทยทั้งหมด</p><img src=a alt=\"market stalls\"></body></html>";

    #[test]
    fn oversized_batch_body_answers_413_before_parsing() {
        let state = ServeState::new(&ServeConfig {
            batch_threads: 2,
            max_batch_bytes: 64,
            ..ServeConfig::default()
        });
        let big = vec![b'x'; 65];
        let resp = full(route(&state, &request("POST", "/v1/batch", &big)));
        assert_eq!(resp.status, 413);
        // At the cap is still admitted (and then rejected as bad JSON,
        // proving the guard ran first and the parser second).
        let at_cap = vec![b'x'; 64];
        let resp = full(route(&state, &request("POST", "/v1/batch", &at_cap)));
        assert_eq!(resp.status, 400);
        assert_eq!(state.counters.errors.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn rpc_routes_through_the_hook_with_the_batch_byte_cap() {
        let hook = RpcHook(Arc::new(|name: &str, body: &[u8]| match name {
            "echo" => Some((200, body.to_vec())),
            "teapot" => Some((418, b"{}".to_vec())),
            _ => None,
        }));
        let state = ServeState::new(&ServeConfig {
            batch_threads: 2,
            max_batch_bytes: 64,
            rpc: Some(hook),
            ..ServeConfig::default()
        });
        let ok = full(route(&state, &request("POST", "/v1/rpc/echo", b"[1,2]")));
        assert_eq!(ok.status, 200);
        match &ok.body {
            Body::Owned(b) => assert_eq!(b, b"[1,2]"),
            Body::Shared(b) => assert_eq!(b.as_slice(), b"[1,2]"),
        }
        assert_eq!(state.counters.rpc.load(Ordering::Relaxed), 1);
        // Hook-reported errors count as errors, not rpc successes.
        let err = full(route(&state, &request("POST", "/v1/rpc/teapot", b"")));
        assert_eq!(err.status, 418);
        // Unknown RPC name → 404; wrong method → 405; oversized → 413.
        let missing = full(route(&state, &request("POST", "/v1/rpc/nope", b"")));
        assert_eq!(missing.status, 404);
        let verb = full(route(&state, &request("GET", "/v1/rpc/echo", b"")));
        assert_eq!(verb.status, 405);
        let big = vec![b'x'; 65];
        let capped = full(route(&state, &request("POST", "/v1/rpc/echo", &big)));
        assert_eq!(capped.status, 413);
        assert_eq!(state.counters.rpc.load(Ordering::Relaxed), 1);
        assert_eq!(state.counters.errors.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn rpc_without_a_hook_is_404() {
        let state = test_state();
        let resp = full(route(&state, &request("POST", "/v1/rpc/unit", b"{}")));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn audit_route_answers_cached_bytes() {
        let state = test_state();
        let first = full(route(
            &state,
            &request("POST", "/v1/audit", PAGE.as_bytes()),
        ));
        assert_eq!(first.status, 200);
        let second = full(route(
            &state,
            &request("POST", "/v1/audit", PAGE.as_bytes()),
        ));
        assert_eq!(first.body, second.body, "cache hit must be byte-identical");
        match (&first.body, &second.body) {
            (Body::Shared(a), Body::Shared(b)) => {
                assert!(
                    Arc::ptr_eq(a, b),
                    "cache hit must reuse the cached allocation"
                );
            }
            _ => panic!("audit responses must carry shared cache bytes"),
        }
        assert_eq!(state.cache.hits(), 1);
        assert_eq!(state.cache.misses(), 1);
        assert_eq!(state.counters.snapshot().audit, 2);
    }

    #[test]
    fn batch_route_parses_pages_and_oracle_splices_single_audit_bytes() {
        let state = test_state();
        let single = full(route(
            &state,
            &request("POST", "/v1/audit", PAGE.as_bytes()),
        ));
        let batch_body = serde_json::to_string(&vec![PAGE.to_string(), PAGE.to_string()]).unwrap();
        let routed = route(&state, &request("POST", "/v1/batch", batch_body.as_bytes()));
        let Routed::BatchStream { pages, keep_alive } = routed else {
            panic!("valid batch must route to the streaming arm");
        };
        assert!(keep_alive);
        assert_eq!(pages, vec![PAGE.to_string(), PAGE.to_string()]);
        // The buffered oracle splices per-page bytes identical to the
        // single-audit response; the live streaming path is pinned
        // byte-identical to this oracle in tests/batch_stream.rs.
        let expected_single = String::from_utf8(single.body.to_vec()).unwrap();
        let expected = format!("[{expected_single},{expected_single}]");
        let oracle = String::from_utf8(batch_buffered(&state, &pages)).unwrap();
        assert_eq!(oracle, expected);
    }

    #[test]
    fn batch_rejects_non_array_body() {
        let state = test_state();
        let resp = full(route(
            &state,
            &request("POST", "/v1/batch", b"{\"nope\":1}"),
        ));
        assert_eq!(resp.status, 400);
        assert_eq!(state.counters.snapshot().errors, 1);
    }

    #[test]
    fn audit_rejects_invalid_utf8() {
        let state = test_state();
        let resp = full(route(
            &state,
            &request("POST", "/v1/audit", &[0xff, 0xfe, 0x80]),
        ));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn healthz_and_stats_routes() {
        let state = test_state();
        let health = full(route(&state, &request("GET", "/v1/healthz", b"")));
        assert_eq!(health.status, 200);
        let health_text = String::from_utf8(health.body.to_vec()).unwrap();
        assert!(health_text.starts_with("{\"status\":\"ok\""));
        assert!(health_text.contains("\"service\":\"langcrux-serve\""));
        assert!(health_text.contains("\"version\":\"0.1.0\""));
        assert!(health_text.contains("\"git_sha\":\""));
        assert!(health_text.contains("\"uptime_seconds\":"));
        assert!(health_text.contains("\"features\":[\"span-tracing\""));
        let stats = full(route(&state, &request("GET", "/v1/stats", b"")));
        assert_eq!(stats.status, 200);
        let text = String::from_utf8(stats.body.to_vec()).unwrap();
        assert!(text.contains("\"requests\""));
        assert!(text.contains("\"hit_rate\""));
        assert!(text.contains("\"p99_us\""));
        assert!(text.contains("\"shed\""));
        assert!(text.contains("\"peak_batch_buffer\""));
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let state = test_state();
        // Generate some traffic so counters are non-zero.
        let _ = route(&state, &request("POST", "/v1/audit", PAGE.as_bytes()));
        let _ = route(&state, &request("POST", "/v1/audit", PAGE.as_bytes()));
        let resp = full(route(&state, &request("GET", "/v1/metrics", b"")));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(text.contains("# TYPE langcrux_serve_requests_total counter"));
        assert!(text.contains("langcrux_serve_requests_total{endpoint=\"audit\"} 2"));
        assert!(text.contains("langcrux_serve_cache_hits_total 1"));
        assert!(text.contains("langcrux_serve_cache_misses_total 1"));
        assert!(text.contains("# TYPE langcrux_serve_request_latency_microseconds histogram"));
        assert!(text.contains("langcrux_serve_peak_batch_buffer_bytes 0"));
        // Every line is exposition-format: comment, or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line.split_once(' ').is_some_and(
                        |(name, value)| !name.is_empty() && value.parse::<f64>().is_ok()
                    ),
                "malformed exposition line: {line:?}"
            );
        }
    }

    /// The drift guard: every sample in the Prometheus exposition must
    /// appear in `/v1/stats`'s `metrics` object with an equal value, and
    /// vice versa — both are rendered from one encoder pass.
    #[test]
    fn stats_json_and_prometheus_expose_identical_metrics() {
        let state = test_state();
        let _ = route(&state, &request("POST", "/v1/audit", PAGE.as_bytes()));
        state.latency.record_us(120);
        state.latency.record_us(4_000);
        let stats = state.stats();
        let enc = state.encode_metrics(&stats);
        let samples = enc.flat_samples();
        assert!(samples.len() >= 18, "expected a full exposition");

        // JSON view: parse the /v1/stats document's `metrics` object.
        let resp = full(route(&state, &request("GET", "/v1/stats", b"")));
        let doc: Value =
            serde_json::from_str(std::str::from_utf8(resp.body.as_slice()).unwrap()).unwrap();
        let metrics = doc.get("metrics").expect("stats document has metrics");
        let json_fields = metrics.as_object().unwrap();

        // Prometheus view: parse every sample line of /v1/metrics.
        let resp = full(route(&state, &request("GET", "/v1/metrics", b"")));
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        let mut prom: Vec<(String, f64)> = Vec::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').unwrap();
            prom.push((name.to_string(), value.parse().unwrap()));
        }

        // Same families either way; values may advance between the two
        // scrapes (each route call bumps counters), so compare names
        // exhaustively and values for scrape-invariant series.
        let json_names: Vec<&str> = json_fields.iter().map(|(k, _)| k.as_str()).collect();
        for (name, _) in &prom {
            assert!(
                json_names.contains(&name.as_str()),
                "{name} in exposition but not in stats JSON"
            );
        }
        assert_eq!(prom.len(), json_fields.len(), "sample counts differ");
        for (name, value) in &samples {
            if name.contains("uptime") || name.contains("requests_total") {
                continue; // advances between scrapes
            }
            let json_value = json_fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| match v {
                    Value::UInt(u) => *u as f64,
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    other => panic!("non-numeric metric {name}: {other:?}"),
                })
                .unwrap_or_else(|| panic!("{name} missing from stats JSON"));
            assert_eq!(json_value, *value, "value drift for {name}");
        }
    }

    /// Collectors registered in `ServeState::extra` surface through both
    /// exposition paths — this is how the repro daemon exports pipeline
    /// gauges after a build.
    #[test]
    fn extra_registry_collectors_appear_in_both_views() {
        let state = test_state();
        state.extra.register(|enc| {
            enc.counter(
                "langcrux_crawl_retries_total",
                "Retries beyond each visit's first attempt.",
                7.0,
            )
        });
        let resp = full(route(&state, &request("GET", "/v1/metrics", b"")));
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(text.contains("langcrux_crawl_retries_total 7\n"));
        assert!(text.contains("langcrux_build_info{service=\"langcrux-serve\""));
        let resp = full(route(&state, &request("GET", "/v1/stats", b"")));
        let doc: Value =
            serde_json::from_str(std::str::from_utf8(resp.body.as_slice()).unwrap()).unwrap();
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics.get("langcrux_crawl_retries_total"),
            Some(&Value::UInt(7))
        );
    }

    #[test]
    fn latency_exposition_is_a_native_histogram() {
        let state = test_state();
        // route() skips the connection layer, which is where latency is
        // recorded — feed the histogram directly with a spread of
        // observations (fast mass, two mid buckets, one overflow).
        for us in [30, 30, 30, 40, 2_500, 2_600, 45_000, 8_000_000] {
            state.latency.record_us(us);
        }
        let resp = full(route(&state, &request("GET", "/v1/metrics", b"")));
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        // No summary-quantile series survives; the native series replaces it.
        assert!(!text.contains("quantile=\""), "summary leaked: {text}");
        // Parse the _bucket series back out of the exposition.
        let prefix = "langcrux_serve_request_latency_microseconds_bucket{le=\"";
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter_map(|line| line.strip_prefix(prefix))
            .map(|rest| {
                let (le, value) = rest.split_once("\"} ").expect("bucket line shape");
                (le.to_string(), value.parse().expect("bucket count"))
            })
            .collect();
        assert!(buckets.len() >= 2, "need data + +Inf: {buckets:?}");
        // Cumulative counts are monotone non-decreasing down the series,
        // finite le bounds are strictly increasing, and the mandatory
        // +Inf bucket closes the series at exactly _count.
        let mut prev_le = 0u64;
        let mut prev_cum = 0u64;
        for (le, cum) in &buckets[..buckets.len() - 1] {
            let le: u64 = le.parse().expect("finite le");
            assert!(le > prev_le, "le not increasing: {buckets:?}");
            assert!(*cum >= prev_cum, "cumulative dipped: {buckets:?}");
            prev_le = le;
            prev_cum = *cum;
        }
        let (inf_le, inf_cum) = buckets.last().unwrap();
        assert_eq!(inf_le, "+Inf");
        assert!(*inf_cum >= prev_cum);
        let count_line = format!("langcrux_serve_request_latency_microseconds_count {inf_cum}");
        assert!(text.contains(&count_line), "count != +Inf: {text}");
        // _sum is present (exact total, not mean×count).
        assert!(text.contains("langcrux_serve_request_latency_microseconds_sum "));
    }

    #[test]
    fn stats_route_negotiates_prometheus_via_accept() {
        let state = test_state();
        let mut req = request("GET", "/v1/stats", b"");
        req.headers
            .push(("accept".to_string(), "text/plain".to_string()));
        let resp = full(route(&state, &req));
        assert!(resp.content_type.starts_with("text/plain"));
        let text = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(text.contains("langcrux_serve_uptime_milliseconds"));
        // Plain GET still answers JSON, and both count as stats requests.
        let json = full(route(&state, &request("GET", "/v1/stats", b"")));
        assert_eq!(json.content_type, "application/json");
        assert_eq!(state.counters.snapshot().stats, 2);
        // A GET with Accept: application/json is unaffected.
        let mut req = request("GET", "/v1/stats", b"");
        req.headers
            .push(("accept".to_string(), "application/json".to_string()));
        assert_eq!(full(route(&state, &req)).content_type, "application/json");
        // q-values: tolerating text as a fallback (or refusing it) must
        // not switch an existing JSON client to the exposition format.
        for accept in [
            "application/json, text/plain;q=0.1",
            "text/plain;q=0",
            "text/plain;q=0.2, application/json;q=0.9",
        ] {
            let mut req = request("GET", "/v1/stats", b"");
            req.headers.push(("accept".to_string(), accept.to_string()));
            assert_eq!(
                full(route(&state, &req)).content_type,
                "application/json",
                "{accept}"
            );
        }
        // A scraper that genuinely prefers text still gets it.
        let mut req = request("GET", "/v1/stats", b"");
        req.headers.push((
            "accept".to_string(),
            "text/plain;version=0.0.4;q=0.9, application/json;q=0.2".to_string(),
        ));
        assert!(full(route(&state, &req))
            .content_type
            .starts_with("text/plain"));
    }

    #[test]
    fn unknown_path_is_404_wrong_method_is_405() {
        let state = test_state();
        assert_eq!(
            full(route(&state, &request("GET", "/nope", b""))).status,
            404
        );
        assert_eq!(
            full(route(&state, &request("GET", "/v1/audit", b""))).status,
            405
        );
        assert_eq!(
            full(route(&state, &request("POST", "/v1/healthz", b""))).status,
            405
        );
        assert_eq!(state.counters.snapshot().errors, 3);
    }

    #[test]
    fn serve_core_selection_and_fallback() {
        assert_eq!(ServeCore::ALL, [ServeCore::Threaded, ServeCore::Reactor]);
        assert_eq!(ServeCore::Threaded.name(), "threaded");
        assert_eq!(ServeCore::Reactor.name(), "reactor");
        assert_eq!(ServeCore::Threaded.effective(), ServeCore::Threaded);
        if cfg!(target_os = "linux") {
            assert_eq!(ServeCore::default(), ServeCore::Reactor);
            assert_eq!(ServeCore::Reactor.effective(), ServeCore::Reactor);
        } else {
            assert_eq!(ServeCore::default(), ServeCore::Threaded);
            assert_eq!(ServeCore::Reactor.effective(), ServeCore::Threaded);
        }
    }

    #[test]
    fn batch_buffered_empty_and_single() {
        let state = test_state();
        assert_eq!(batch_buffered(&state, &[]), b"[]");
        let one = batch_buffered(&state, &[PAGE.to_string()]);
        assert_eq!(one.first(), Some(&b'['));
        assert_eq!(one.last(), Some(&b']'));
        let single = full(route(
            &state,
            &request("POST", "/v1/audit", PAGE.as_bytes()),
        ));
        assert_eq!(&one[1..one.len() - 1], single.body.as_slice());
    }
}
