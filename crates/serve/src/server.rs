//! The HTTP server: accept loop, keep-alive connection handling, routing.
//!
//! Architecture (std-only, one OS thread per connection):
//!
//! ```text
//! spawn() ──► accept thread ──► connection threads (keep-alive loop)
//!                 │                   │  RequestParser::feed/poll
//!                 │                   │  route() ──► AuditService
//!                 │                   │          └─► ShardedCache
//!                 └─ ServerHandle::shutdown(): flag + self-connect to
//!                    unblock accept, then join accept + connections.
//! ```
//!
//! Batch requests fan their pages out over the workspace's work-stealing
//! pool (`crawl::pool::run_work_stealing`) so a many-page batch uses
//! every core, exactly like the offline crawl pipeline. Each page inside
//! a batch goes through the same content-hash cache as single audits, so
//! mixed single/batch traffic shares one response cache.

use crate::cache::{CacheSnapshot, ShardedCache};
use crate::http::{Limits, Request, RequestParser, Response};
use crate::service::AuditService;
use crate::stats::{LatencyHistogram, LatencySnapshot, RequestCounters, RequestSnapshot};
use langcrux_crawl::run_work_stealing;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Worker threads for batch fan-out (0 = one per core).
    pub batch_threads: usize,
    pub cache_shards: usize,
    pub cache_capacity_per_shard: usize,
    pub limits: Limits,
    /// Keep-alive connections idle longer than this are closed.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".parse().expect("loopback addr"),
            batch_threads: 0,
            cache_shards: 8,
            cache_capacity_per_shard: 256,
            limits: Limits::default(),
            idle_timeout: Duration::from_secs(10),
        }
    }
}

/// Shared server state.
pub struct ServeState {
    pub service: AuditService,
    pub cache: ShardedCache,
    pub counters: RequestCounters,
    pub latency: LatencyHistogram,
    batch_threads: usize,
    started: Instant,
}

/// The `GET /v1/stats` document.
#[derive(Debug, Clone, Serialize)]
pub struct StatsSnapshot {
    pub uptime_ms: u64,
    pub requests: RequestSnapshot,
    pub cache: CacheSnapshot,
    pub latency: LatencySnapshot,
}

impl ServeState {
    fn new(config: &ServeConfig) -> Self {
        ServeState {
            service: AuditService::new(),
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity_per_shard),
            counters: RequestCounters::default(),
            latency: LatencyHistogram::default(),
            batch_threads: config.batch_threads,
            started: Instant::now(),
        }
    }

    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            requests: self.counters.snapshot(),
            cache: self.cache.snapshot(),
            latency: self.latency.snapshot(),
        }
    }
}

/// Route one parsed request. Pure in `(state, request)` modulo telemetry,
/// which is what lets the router be unit-tested without sockets.
pub fn route(state: &ServeState, request: &Request) -> Response {
    let keep = request.keep_alive();
    let relaxed = Ordering::Relaxed;
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/audit") => {
            let Ok(html) = std::str::from_utf8(&request.body) else {
                state.counters.errors.fetch_add(1, relaxed);
                return Response::error(400, "body is not valid utf-8", keep);
            };
            let (bytes, _hit) = state
                .cache
                .get_or_compute(&request.body, || state.service.audit_json(html));
            state.counters.audit.fetch_add(1, relaxed);
            // The Arc goes straight into the response body: a cache hit
            // never copies the cached JSON.
            Response::json(200, bytes, keep)
        }
        ("POST", "/v1/batch") => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                state.counters.errors.fetch_add(1, relaxed);
                return Response::error(400, "body is not valid utf-8", keep);
            };
            let pages: Vec<String> = match serde_json::from_str(body) {
                Ok(pages) => pages,
                Err(_) => {
                    state.counters.errors.fetch_add(1, relaxed);
                    return Response::error(400, "body must be a JSON array of HTML strings", keep);
                }
            };
            let threads = if state.batch_threads == 0 {
                langcrux_crawl::default_threads()
            } else {
                state.batch_threads
            };
            // Fan the pages out over the work-stealing pool; every page
            // answers through the shared content-hash cache.
            let reports: Vec<Arc<Vec<u8>>> = run_work_stealing(threads, &pages, |_, page| {
                let (bytes, _hit) = state
                    .cache
                    .get_or_compute(page.as_bytes(), || state.service.audit_json(page));
                bytes
            });
            // Splice the per-page JSON documents into one array so each
            // element is byte-identical to its single-audit response.
            let total: usize = reports.iter().map(|r| r.len() + 1).sum();
            let mut body = Vec::with_capacity(total + 2);
            body.push(b'[');
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    body.push(b',');
                }
                body.extend_from_slice(report);
            }
            body.push(b']');
            state.counters.batch.fetch_add(1, relaxed);
            state
                .counters
                .batch_pages
                .fetch_add(pages.len() as u64, relaxed);
            Response::json(200, body, keep)
        }
        ("GET", "/v1/healthz") => {
            state.counters.healthz.fetch_add(1, relaxed);
            Response::json(200, b"{\"status\":\"ok\"}".to_vec(), keep)
        }
        ("GET", "/v1/stats") => {
            state.counters.stats.fetch_add(1, relaxed);
            let body = serde_json::to_string(&state.stats())
                .expect("stats serialize")
                .into_bytes();
            Response::json(200, body, keep)
        }
        (_, "/v1/audit" | "/v1/batch" | "/v1/healthz" | "/v1/stats") => {
            state.counters.errors.fetch_add(1, relaxed);
            Response::error(405, "method not allowed", keep)
        }
        _ => {
            state.counters.errors.fetch_add(1, relaxed);
            Response::error(404, "no such endpoint", keep)
        }
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process inspection (tests, the bench).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Stop accepting, drain connection threads, and join. Returns the
    /// final stats snapshot — "clean shutdown" means every worker joined.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        self.state.stats()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort stop if the caller never called shutdown().
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Start the server. Returns once the listener is bound, with the accept
/// loop running in the background.
pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServeState::new(&config));
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, state, shutdown, config))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        state,
        shutdown,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
) {
    // Connection threads are joined before the accept thread exits, so
    // ServerHandle::shutdown() returning means the server is fully quiet.
    // Only this thread touches the handles, so a plain Vec suffices.
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        let shutdown_flag = Arc::clone(&shutdown);
        let config = config.clone();
        let handle = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &state, &shutdown_flag, &config);
            })
            .expect("spawn connection thread");
        workers.push(handle);
        // Opportunistically reap finished workers so a long-lived server
        // does not accumulate handles.
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// Keep-alive loop for one connection.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    shutdown: &AtomicBool,
    config: &ServeConfig,
) -> std::io::Result<()> {
    // Short read timeout so the loop can observe shutdown and enforce the
    // idle deadline without a dedicated wakeup channel.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_nodelay(true)?;
    let mut parser = RequestParser::new(config.limits);
    let mut read_buf = [0u8; 16 * 1024];
    // One write buffer reused for every response on this connection.
    let mut write_buf: Vec<u8> = Vec::new();
    let mut last_activity = Instant::now();

    loop {
        // Drain every request already buffered (pipelining) before
        // touching the socket again.
        loop {
            match parser.poll() {
                Ok(Some(request)) => {
                    let started = Instant::now();
                    let response = route(state, &request);
                    let keep = response.keep_alive;
                    response.write_into(&mut write_buf);
                    stream.write_all(&write_buf)?;
                    state
                        .latency
                        .record_us(started.elapsed().as_micros() as u64);
                    last_activity = Instant::now();
                    if !keep {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Answer the protocol error and close: the byte
                    // stream is no longer trustworthy.
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let response = Response::error(e.status(), &e.detail(), false);
                    response.write_into(&mut write_buf);
                    let _ = stream.write_all(&write_buf);
                    return Ok(());
                }
            }
        }

        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut read_buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                parser.feed(&read_buf[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() > config.idle_timeout {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Body;

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn test_state() -> ServeState {
        ServeState::new(&ServeConfig {
            batch_threads: 2,
            ..ServeConfig::default()
        })
    }

    const PAGE: &str = "<html lang=th><head><title>ข่าว</title></head><body>\
        <p>ข่าววันนี้ของประเทศไทยทั้งหมด</p><img src=a alt=\"market stalls\"></body></html>";

    #[test]
    fn audit_route_answers_cached_bytes() {
        let state = test_state();
        let first = route(&state, &request("POST", "/v1/audit", PAGE.as_bytes()));
        assert_eq!(first.status, 200);
        let second = route(&state, &request("POST", "/v1/audit", PAGE.as_bytes()));
        assert_eq!(first.body, second.body, "cache hit must be byte-identical");
        match (&first.body, &second.body) {
            (Body::Shared(a), Body::Shared(b)) => {
                assert!(
                    Arc::ptr_eq(a, b),
                    "cache hit must reuse the cached allocation"
                );
            }
            _ => panic!("audit responses must carry shared cache bytes"),
        }
        assert_eq!(state.cache.hits(), 1);
        assert_eq!(state.cache.misses(), 1);
        assert_eq!(state.counters.snapshot().audit, 2);
    }

    #[test]
    fn batch_route_splices_single_audit_bytes() {
        let state = test_state();
        let single = route(&state, &request("POST", "/v1/audit", PAGE.as_bytes()));
        let batch_body = serde_json::to_string(&vec![PAGE.to_string(), PAGE.to_string()]).unwrap();
        let batch = route(&state, &request("POST", "/v1/batch", batch_body.as_bytes()));
        assert_eq!(batch.status, 200);
        let expected_single = String::from_utf8(single.body.to_vec()).unwrap();
        let expected = format!("[{expected_single},{expected_single}]");
        assert_eq!(String::from_utf8(batch.body.to_vec()).unwrap(), expected);
        let counters = state.counters.snapshot();
        assert_eq!(counters.batch, 1);
        assert_eq!(counters.batch_pages, 2);
    }

    #[test]
    fn batch_rejects_non_array_body() {
        let state = test_state();
        let resp = route(&state, &request("POST", "/v1/batch", b"{\"nope\":1}"));
        assert_eq!(resp.status, 400);
        assert_eq!(state.counters.snapshot().errors, 1);
    }

    #[test]
    fn audit_rejects_invalid_utf8() {
        let state = test_state();
        let resp = route(&state, &request("POST", "/v1/audit", &[0xff, 0xfe, 0x80]));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn healthz_and_stats_routes() {
        let state = test_state();
        let health = route(&state, &request("GET", "/v1/healthz", b""));
        assert_eq!(health.status, 200);
        assert_eq!(health.body.as_slice(), b"{\"status\":\"ok\"}");
        let stats = route(&state, &request("GET", "/v1/stats", b""));
        assert_eq!(stats.status, 200);
        let text = String::from_utf8(stats.body.to_vec()).unwrap();
        assert!(text.contains("\"requests\""));
        assert!(text.contains("\"hit_rate\""));
        assert!(text.contains("\"p99_us\""));
    }

    #[test]
    fn unknown_path_is_404_wrong_method_is_405() {
        let state = test_state();
        assert_eq!(route(&state, &request("GET", "/nope", b"")).status, 404);
        assert_eq!(route(&state, &request("GET", "/v1/audit", b"")).status, 405);
        assert_eq!(
            route(&state, &request("POST", "/v1/healthz", b"")).status,
            405
        );
        assert_eq!(state.counters.snapshot().errors, 3);
    }
}
