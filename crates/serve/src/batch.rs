//! Bounded reorder machinery for the streaming `/v1/batch` path.
//!
//! The batch endpoint fans pages out over the work-stealing pool and
//! writes each element's JSON as soon as it (and everything before it)
//! is done — element order preserved, no full-array buffering. Two
//! mechanisms keep memory at O(window × element) instead of O(batch):
//!
//! * **Lookahead window** — a worker must [`StreamFanout::admit`] unit
//!   `i` before computing it, which blocks while `i ≥ next + window`.
//!   Completed-but-unwritten results therefore always live in
//!   `[next, next + window)`.
//! * **Non-blocking completion** — [`StreamFanout::complete`] never
//!   waits, which is what makes the window admission deadlock-free: the
//!   head unit `next` is always admissible (`next < next + window`), the
//!   worker holding it is never parked, and every park is released when
//!   the writer advances `next`.
//!
//! Why no worker can starve the head: deques hold ascending contiguous
//! index blocks and steals take from the back, so if unit `next` is
//! still queued it is at the *front* of its owner's deque — the owner
//! picks it up next, and the owner itself cannot be parked on a
//! farther-ahead unit (it would have had to pop `next` first).
//!
//! The peak of buffered bytes is tracked and surfaced as the
//! `peak_batch_buffer` gauge on `GET /v1/stats`, which is what the
//! large-batch memory test asserts against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

struct FanState {
    /// Completed, not-yet-written elements, indexed absolutely.
    slots: Vec<Option<std::sync::Arc<Vec<u8>>>>,
    /// Next element the writer will emit.
    next: usize,
    /// Bytes currently parked in `slots`.
    buffered_bytes: usize,
    peak_bytes: usize,
    /// Writer gave up (client went away): stop parking workers and drop
    /// completions on the floor.
    abandoned: bool,
    /// A worker died without completing its unit: the writer must stop
    /// waiting for elements that will never arrive.
    poisoned: bool,
}

/// Reorder buffer between pool workers and the response writer.
pub struct StreamFanout {
    total: usize,
    window: usize,
    state: Mutex<FanState>,
    /// Notified on every `next` advance, completion, and abandon.
    changed: Condvar,
}

impl StreamFanout {
    /// `total` units, at most `window` (clamped to ≥ 1) in flight beyond
    /// the writer's cursor.
    pub fn new(total: usize, window: usize) -> Self {
        StreamFanout {
            total,
            window: window.max(1),
            state: Mutex::new(FanState {
                slots: (0..total).map(|_| None).collect(),
                next: 0,
                buffered_bytes: 0,
                peak_bytes: 0,
                abandoned: false,
                poisoned: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Block until unit `idx` is inside the lookahead window (or the
    /// stream failed — writer abandoned it or a worker died). Call
    /// before computing the unit.
    pub fn admit(&self, idx: usize) {
        let mut state = self.state.lock().expect("fanout lock");
        while idx >= state.next + self.window && !state.abandoned && !state.poisoned {
            state = self.changed.wait(state).expect("fanout wait");
        }
    }

    /// Deliver unit `idx`'s bytes. Never blocks.
    pub fn complete(&self, idx: usize, bytes: std::sync::Arc<Vec<u8>>) {
        let mut state = self.state.lock().expect("fanout lock");
        if state.abandoned || state.poisoned {
            return;
        }
        state.buffered_bytes += bytes.len();
        state.peak_bytes = state.peak_bytes.max(state.buffered_bytes);
        state.slots[idx] = Some(bytes);
        self.changed.notify_all();
    }

    /// Writer side: wait for and take the next in-order element. `None`
    /// once all `total` elements have been taken — or, on a poisoned
    /// fan-out, as soon as the next element can never arrive (the
    /// caller must treat an early `None` as a failed stream).
    pub fn next(&self) -> Option<std::sync::Arc<Vec<u8>>> {
        let mut state = self.state.lock().expect("fanout lock");
        if state.next >= self.total {
            return None;
        }
        while state.slots[state.next].is_none() {
            if state.poisoned {
                return None;
            }
            state = self.changed.wait(state).expect("fanout wait");
        }
        let idx = state.next;
        let bytes = state.slots[idx].take().expect("checked above");
        state.buffered_bytes -= bytes.len();
        state.next += 1;
        self.changed.notify_all();
        Some(bytes)
    }

    /// A worker is dying without completing its unit (panic unwinding):
    /// wake the writer so it fails the stream instead of waiting forever
    /// for an element that will never arrive, and release every parked
    /// worker.
    pub fn poison(&self) {
        let mut state = self.state.lock().expect("fanout lock");
        state.poisoned = true;
        self.changed.notify_all();
    }

    /// Writer bails (client closed mid-stream): release every parked
    /// worker permanently and discard any further completions so the
    /// pool can drain without the writer consuming.
    pub fn abandon(&self) {
        let mut state = self.state.lock().expect("fanout lock");
        state.abandoned = true;
        state.buffered_bytes = 0;
        for slot in &mut state.slots {
            *slot = None;
        }
        self.changed.notify_all();
    }

    /// High-water mark of bytes parked in the reorder buffer.
    pub fn peak_bytes(&self) -> usize {
        self.state.lock().expect("fanout lock").peak_bytes
    }
}

/// Monotonic high-water gauge for `peak_batch_buffer` (bytes). Lives on
/// the server state; every finished batch folds its fan-out peak in.
#[derive(Default)]
pub struct PeakGauge {
    peak: AtomicUsize,
}

impl PeakGauge {
    /// Raise the gauge to at least `value`.
    pub fn observe(&self, value: usize) {
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn bytes(len: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![b'x'; len])
    }

    #[test]
    fn in_order_single_threaded_round_trip() {
        let fan = StreamFanout::new(3, 2);
        fan.admit(0);
        fan.complete(0, bytes(5));
        assert_eq!(fan.next().unwrap().len(), 5);
        fan.admit(1);
        fan.complete(1, bytes(7));
        fan.admit(2);
        fan.complete(2, bytes(9));
        assert_eq!(fan.next().unwrap().len(), 7);
        assert_eq!(fan.next().unwrap().len(), 9);
        assert!(fan.next().is_none());
        assert!(fan.next().is_none(), "exhausted fanout stays exhausted");
    }

    #[test]
    fn empty_batch_yields_nothing() {
        let fan = StreamFanout::new(0, 4);
        assert!(fan.next().is_none());
    }

    #[test]
    fn window_bounds_buffered_bytes() {
        // Workers race ahead; the writer drains slowly. Peak buffered
        // bytes must stay within window × element size.
        let total = 64;
        let window = 4;
        let element = 1000;
        let fan = StreamFanout::new(total, window);
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let fan = &fan;
                scope.spawn(move || {
                    let mut idx = worker;
                    while idx < total {
                        fan.admit(idx);
                        fan.complete(idx, bytes(element));
                        idx += 4;
                    }
                });
            }
            for _ in 0..total {
                let taken = fan.next().expect("element");
                assert_eq!(taken.len(), element);
            }
        });
        assert!(fan.next().is_none());
        let peak = fan.peak_bytes();
        assert!(peak > 0);
        assert!(
            peak <= window * element,
            "peak {peak} exceeds window bound {}",
            window * element
        );
    }

    #[test]
    fn out_of_order_completion_reorders() {
        let fan = StreamFanout::new(3, 3);
        fan.admit(2);
        fan.complete(2, bytes(3));
        fan.admit(1);
        fan.complete(1, bytes(2));
        fan.admit(0);
        fan.complete(0, bytes(1));
        assert_eq!(fan.next().unwrap().len(), 1);
        assert_eq!(fan.next().unwrap().len(), 2);
        assert_eq!(fan.next().unwrap().len(), 3);
    }

    #[test]
    fn abandon_releases_parked_workers() {
        let fan = StreamFanout::new(8, 1);
        std::thread::scope(|scope| {
            let parked = scope.spawn(|| {
                // Unit 5 is far beyond the window with next == 0: parks
                // until abandon.
                fan.admit(5);
                fan.complete(5, bytes(10));
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            fan.abandon();
            parked.join().expect("parked worker released");
        });
        assert_eq!(fan.peak_bytes(), 0, "post-abandon completion discarded");
    }

    #[test]
    fn poison_wakes_a_blocked_writer_and_parked_workers() {
        let fan = StreamFanout::new(4, 1);
        fan.admit(0);
        fan.complete(0, bytes(5));
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                // Element 0 streams; element 1 never arrives — the
                // writer must get an early None, not hang.
                let first = fan.next();
                let second = fan.next();
                (first, second)
            });
            let parked = scope.spawn(|| {
                // Far beyond the window: parked until the poison.
                fan.admit(3);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            fan.poison();
            let (first, second) = writer.join().expect("writer released");
            assert_eq!(first.map(|b| b.len()), Some(5));
            assert!(second.is_none(), "poisoned gap must yield None");
            parked.join().expect("parked worker released");
        });
    }

    #[test]
    fn peak_gauge_is_monotonic() {
        let gauge = PeakGauge::default();
        assert_eq!(gauge.get(), 0);
        gauge.observe(100);
        gauge.observe(40);
        assert_eq!(gauge.get(), 100);
        gauge.observe(250);
        assert_eq!(gauge.get(), 250);
    }
}
