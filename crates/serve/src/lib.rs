//! # langcrux-serve
//!
//! Audit-as-a-service: the paper's offline page-analysis pipeline
//! (Bhuiyan et al., IMC 2025) exposed as an HTTP service, the deployment
//! shape the ROADMAP's production north star asks for — site operators
//! POST a page and get back the language-composition, lang-attribute,
//! audit-rule, and screen-reader verdicts the paper computes offline.
//!
//! The crate is std-only (`std::net::TcpListener`; the build environment
//! has no crates.io access, so no hyper/tokio):
//!
//! * [`http`] — incremental HTTP/1.1 request parser (chunking-agnostic,
//!   `Content-Length` *and* `Transfer-Encoding: chunked` request bodies,
//!   typed protocol errors → 400/413/431/501) and response writer,
//!   including chunked-response helpers for streaming bodies.
//! * [`governor`] — bounded admission: hard connection cap, bounded
//!   pending queue, `503 + Retry-After` shedding beyond both.
//! * [`cache`] — sharded, content-hash-keyed LRU response cache
//!   (FNV-1a keys, per-shard `parking_lot` mutexes, exact-LRU eviction).
//! * [`service`] — the audit engine façade: HTML in, deterministic
//!   [`AuditResponse`] JSON out (fused extraction, `audit::rules`,
//!   Kizuki rescoring via the carried histogram, speak-order pass).
//! * [`server`] — the connection engines behind a [`ServeCore`]
//!   selection: the thread-per-connection oracle and (Linux) the epoll
//!   reactor, both driving identical routing: `POST /v1/audit`,
//!   `POST /v1/batch` (streamed as chunked encoding while the
//!   work-stealing pool completes units), `GET /v1/healthz`,
//!   `GET /v1/stats` (JSON, or the Prometheus text exposition via
//!   `Accept: text/plain`), `GET /v1/metrics` (always Prometheus).
//! * `reactor` (Linux) — the event-driven core: non-blocking sockets on
//!   a raw-`epoll` readiness loop, per-connection state machines over
//!   the same push parser, deadlines on a hashed timing wheel.
//! * [`wheel`] — that timing wheel: tick-based, generation-cancelled,
//!   clock-free and unit-tested without time.
//! * [`fairness`] — per-peer token buckets (integer micro-token math on
//!   a virtual clock): greedy peers collect `429 + Retry-After` while
//!   quiet peers ride undisturbed.
//! * [`batch`] — the bounded reorder window between pool workers and the
//!   streaming batch writer (`peak_batch_buffer` gauge).
//! * [`stats`] — request counters (incl. shed/timeout) and a lock-free
//!   latency histogram (p50/p99) behind `GET /v1/stats`.
//! * [`loadgen`] — loopback load generator used by `repro --serve-bench`
//!   to produce `BENCH_serve.json` (cold vs cache-hot vs governed
//!   req/s); its response reader understands both framings.
//!
//! ## Quickstart
//!
//! ```no_run
//! use langcrux_serve::{spawn, ServeConfig};
//!
//! let server = spawn(ServeConfig::default()).expect("bind loopback");
//! println!("auditing on http://{}", server.addr());
//! // POST HTML to /v1/audit, then:
//! server.shutdown();
//! ```

pub mod batch;
pub mod cache;
pub mod fairness;
pub mod governor;
pub mod http;
pub mod loadgen;
pub mod pidfile;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
pub mod service;
pub mod stats;
pub mod wheel;

pub use batch::{PeakGauge, StreamFanout};
pub use cache::{CacheKey, CacheSnapshot, ShardedCache};
pub use fairness::{FairnessConfig, PeerLimiter, TokenBucket};
pub use governor::{Admission, Governor};
pub use http::{Limits, ParseError, Request, RequestParser, Response};
pub use loadgen::{run_idle_load, run_load, IdleLoadRun, LoadGenRun};
pub use pidfile::{claim as claim_pidfile, examine as examine_pidfile, PidFileDoc, PidFileStatus};
pub use server::{
    batch_buffered, encode_stats, prometheus_text, route, spawn, ReactorSnapshot, Routed, RpcHook,
    ServeConfig, ServeCore, ServeState, ServerHandle, StatsSnapshot,
};
pub use service::{AuditResponse, AuditService, ScriptSlice};
pub use stats::{
    LatencyBucket, LatencyHistogram, LatencySnapshot, RequestCounters, RequestSnapshot,
};
