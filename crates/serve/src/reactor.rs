//! The event-driven serve core: a single-threaded, readiness-driven
//! reactor over raw `epoll`, replacing thread-per-connection with
//! per-connection state machines.
//!
//! Design in one paragraph: every socket is non-blocking and registered
//! level-triggered with an interest set derived from connection state
//! (`EPOLLIN` while we want bytes, `EPOLLOUT` while a response is
//! buffered). The push parser ([`RequestParser`]) already resumes at any
//! tear, so "readable" is just *feed whatever arrived*; routing and
//! response serialization reuse the exact functions the threaded core
//! calls, which is what makes the two cores byte-identical. Deadlines
//! (slowloris 408, idle close, write stall) live on one hashed timing
//! wheel instead of per-thread socket timeouts, and the governor is the
//! reactor's admission layer: `Serve` registers, `Queued` parks inside
//! the governor until a close frees the slot, `Shed` becomes a tiny
//! write-503-then-drain state machine. Per-peer fairness (429) runs at
//! the same point in the request path as the threaded core's check.
//!
//! Two deliberate simplifications keep behaviour aligned with the
//! oracle:
//!
//! * **Run to completion.** A batch response streams through the shared
//!   [`stream_batch`] with the socket temporarily flipped back to
//!   blocking. The reactor stalls for that batch's duration — exactly
//!   the threaded core's per-connection behaviour, and the price buys
//!   byte-for-byte and counter-for-counter equivalence.
//! * **Lazy timer cancellation.** Connections never remove wheel
//!   entries; they bump a generation counter and stale entries are
//!   discarded when they fire ([`TimerWheel`] docs).
//!
//! The raw `epoll` FFI follows the same std-only `extern "C"`
//! discipline as the daemon's signal handling in the bench crate: no
//! libc crate, just the four syscall wrappers this module needs.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::governor::{Admission, Governor};
use crate::http::{self, RequestParser, Response};
use crate::server::{accept_loop, route, stream_batch, Routed, ServeConfig, ServeState};
use crate::wheel::{TimerEntry, TimerWheel, TICK_MS};

/// Raw `epoll` bindings — std-only, mirroring the `extern "C"` signal
/// discipline used elsewhere in the workspace. Only what the reactor
/// needs: create, ctl, wait, close, and errno for the EINTR retry.
mod sys {
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    pub const EINTR: i32 = 4;

    /// `struct epoll_event`: packed on x86-64 (the kernel ABI), natural
    /// alignment elsewhere. Field reads copy by value — never take a
    /// reference into a packed struct.
    #[derive(Debug, Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        #[link_name = "__errno_location"]
        pub fn errno_location() -> *mut i32;
    }
}

/// Owned epoll instance; the fd closes on drop.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, events)
    }

    fn modify(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, events)
    }

    fn delete(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait for readiness, retrying on EINTR. A non-EINTR failure yields
    /// zero events after a short sleep rather than spinning hot.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> usize {
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return n as usize;
            }
            let errno = unsafe { *sys::errno_location() };
            if errno != sys::EINTR {
                std::thread::sleep(Duration::from_millis(5));
                return 0;
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// The listener's reserved token; connections count from 1.
const LISTENER: u64 = 0;

/// Readiness events pulled per `epoll_wait`.
const EVENT_BATCH: usize = 256;

/// Poll ceiling: the reactor wakes at least this often to observe the
/// shutdown flag, matching the threaded core's 50 ms read timeout.
const MAX_POLL_MS: u64 = 50;

/// Read passes per readiness event before yielding back to the loop —
/// level-triggered epoll re-reports leftover bytes, so fairness costs
/// nothing.
const MAX_READ_PASSES: usize = 16;

/// Shed windows, matching the threaded core's detached shed thread: up
/// to 250 ms to write the 503, then up to 100 ms draining the client's
/// request bytes so the close does not RST the response away.
const SHED_WRITE_MS: u64 = 250;
const SHED_DRAIN_MS: u64 = 100;

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Buffered response bytes not yet accepted by the socket…
    out: Vec<u8>,
    /// …and the cursor into them (avoids re-shuffling the Vec front).
    out_pos: usize,
    /// When the current write stall began (None while `out` drains
    /// freely) — feeds the write-timeout deadline.
    out_since: Option<Instant>,
    /// Interest set currently registered with epoll.
    interest: u32,
    last_activity: Instant,
    /// First byte of a partially buffered request — the slowloris clock.
    request_started: Option<Instant>,
    /// Close once `out` flushes (Connection: close, protocol error, 408,
    /// 429, drain).
    close_after_flush: bool,
    /// Peer sent FIN (or a read failed): no more request bytes.
    read_closed: bool,
    /// Hard-close now, regardless of pending output.
    dead: bool,
    /// Governor-refused connection running the 503 write/drain script.
    shedding: bool,
    /// Shed phase two: response flushed, half-closed, draining reads.
    shed_draining: bool,
    /// Whether this connection occupies a governor slot (shed ones
    /// don't) — a close must `finish()` to hand the slot to a queued
    /// waiter.
    holds_slot: bool,
    /// Timer generation: bumping it cancels armed wheel entries lazily.
    gen: u64,
    /// Tick of the live wheel entry (0 = none) — re-arming is skipped
    /// when the deadline's tick is unchanged, bounding wheel churn.
    armed_tick: u64,
}

impl Conn {
    fn new(stream: TcpStream, config: &ServeConfig, holds_slot: bool) -> Conn {
        Conn {
            stream,
            parser: RequestParser::new(config.limits),
            out: Vec::new(),
            out_pos: 0,
            out_since: None,
            interest: 0,
            last_activity: Instant::now(),
            request_started: None,
            close_after_flush: false,
            read_closed: false,
            dead: false,
            shedding: false,
            shed_draining: false,
            holds_slot,
            gen: 0,
            armed_tick: 0,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    fn append(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

struct Reactor {
    ep: Epoll,
    state: Arc<ServeState>,
    config: ServeConfig,
    governor: Governor<TcpStream>,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    epoch: Instant,
    next_token: u64,
    draining: bool,
    /// Shared serialization scratch: responses render here, then extend
    /// the connection's `out`. ([`Response::write_into`] clears its
    /// target, so it cannot append to `out` directly.)
    scratch: Vec<u8>,
    /// Shared read buffer — per-connection buffers would cost 16 KiB ×
    /// connections for mostly-idle keep-alive fleets.
    read_buf: Box<[u8; 16 * 1024]>,
}

/// Run the reactor until shutdown completes its drain. Takes the same
/// signature as [`accept_loop`] so [`crate::spawn`] dispatches on
/// [`crate::ServeCore`] alone; if epoll itself cannot be created (no
/// known failure mode on Linux short of fd exhaustion), falls back to
/// the threaded core rather than serving nothing.
pub(crate) fn run(
    listener: TcpListener,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    config: ServeConfig,
) {
    let ep = match Epoll::new() {
        Ok(ep) => ep,
        Err(_) => {
            let _ = listener.set_nonblocking(false);
            return accept_loop(listener, state, shutdown, config);
        }
    };
    if listener.set_nonblocking(true).is_err()
        || ep
            .add(listener.as_raw_fd(), LISTENER, sys::EPOLLIN)
            .is_err()
    {
        let _ = listener.set_nonblocking(false);
        return accept_loop(listener, state, shutdown, config);
    }
    let governor = Governor::new(config.max_connections, config.accept_queue);
    let mut reactor = Reactor {
        ep,
        state,
        config,
        governor,
        listener: Some(listener),
        conns: HashMap::new(),
        wheel: TimerWheel::new(256),
        epoch: Instant::now(),
        next_token: 1,
        draining: false,
        scratch: Vec::new(),
        read_buf: Box::new([0u8; 16 * 1024]),
    };
    reactor.run_loop(&shutdown);
}

impl Reactor {
    fn run_loop(&mut self, shutdown: &AtomicBool) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        let mut expired: Vec<TimerEntry> = Vec::new();
        loop {
            if !self.draining && shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                break;
            }

            let timeout_ms = self.poll_timeout_ms();
            let n = self.ep.wait(&mut events, timeout_ms);
            if n > 0 {
                self.state
                    .reactor
                    .ready_events
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) event before use.
                let token = ev.data;
                let mask = ev.events;
                if token == LISTENER {
                    self.accept_all(shutdown);
                } else {
                    self.handle_event(token, mask);
                }
            }

            // Advance the wheel to the current tick and fire deadlines.
            let now_tick = self.tick_now();
            if now_tick > self.wheel.now_tick() {
                expired.clear();
                self.wheel.advance(now_tick, &mut expired);
                for entry in expired.drain(..) {
                    self.on_timer(entry);
                }
            }

            self.state
                .reactor
                .armed_connections
                .store(self.conns.len() as u64, Ordering::Relaxed);
            self.state
                .reactor
                .wheel_depth
                .store(self.wheel.len() as u64, Ordering::Relaxed);
        }
    }

    /// Milliseconds since the reactor started, in wheel ticks.
    fn tick_now(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64 / TICK_MS
    }

    /// Absolute wheel tick for a deadline instant (rounded up so a fired
    /// entry is never early by more than re-validation can absorb).
    fn tick_of(&self, deadline: Instant) -> u64 {
        deadline.saturating_duration_since(self.epoch).as_millis() as u64 / TICK_MS + 1
    }

    /// Bounded poll: the earliest wheel deadline, capped at
    /// [`MAX_POLL_MS`] so the shutdown flag is observed promptly.
    fn poll_timeout_ms(&mut self) -> i32 {
        let cap = if self.draining { 10 } else { MAX_POLL_MS };
        let ms = match self.wheel.next_deadline_tick() {
            Some(tick) => (tick.saturating_sub(self.tick_now()) * TICK_MS).clamp(1, cap),
            None => cap,
        };
        ms as i32
    }

    // ---- admission -------------------------------------------------

    fn accept_all(&mut self, shutdown: &AtomicBool) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        continue; // refuse by drop, like the threaded loop
                    }
                    let _ = stream.set_nonblocking(true);
                    match self.governor.admit(stream) {
                        Admission::Serve(stream) => self.register_conn(stream, true),
                        Admission::Queued => {
                            // Parked inside the governor; a closing
                            // connection hands over its slot.
                        }
                        Admission::Shed(stream) => self.register_shed(stream),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, holds_slot: bool) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true); // queued streams already are
        let token = self.next_token;
        self.next_token += 1;
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, &self.config, holds_slot);
        conn.interest = sys::EPOLLIN | sys::EPOLLRDHUP;
        if self.ep.add(fd, token, conn.interest).is_err() {
            // Registration failure closes the stream; release the slot.
            drop(conn);
            if holds_slot {
                if let Some(next) = self.governor.finish(!self.draining) {
                    self.register_conn(next, true);
                }
            }
            return;
        }
        self.arm_deadline(token, &mut conn);
        self.conns.insert(token, conn);
    }

    /// Governor-refused connection: write `503 + Retry-After`, half-
    /// close, drain briefly — the same script as the threaded core's
    /// detached shed thread, as reactor state instead of a thread.
    fn register_shed(&mut self, stream: TcpStream) {
        self.state.counters.shed.fetch_add(1, Ordering::Relaxed);
        let token = self.next_token;
        self.next_token += 1;
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, &self.config, false);
        conn.shedding = true;
        conn.out = http::shed_response_bytes(crate::server::RETRY_AFTER_SECS);
        conn.interest = sys::EPOLLOUT | sys::EPOLLRDHUP;
        if self.ep.add(fd, token, conn.interest).is_err() {
            return; // dropped: still closes the socket immediately
        }
        self.arm_shed_window(token, &mut conn, SHED_WRITE_MS);
        self.conns.insert(token, conn);
    }

    fn arm_shed_window(&mut self, token: u64, conn: &mut Conn, window_ms: u64) {
        conn.gen += 1;
        let tick = self.tick_of(Instant::now() + Duration::from_millis(window_ms));
        conn.armed_tick = tick;
        self.wheel.insert_at(tick, token, conn.gen);
    }

    // ---- readiness -------------------------------------------------

    fn handle_event(&mut self, token: u64, mask: u32) {
        // Stale tokens (connection closed earlier in this same event
        // batch) simply miss the map. Tokens are monotonic, so a reused
        // fd can never alias a dead connection's events.
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        if mask & sys::EPOLLERR != 0 {
            conn.dead = true;
            self.settle(token, conn);
            return;
        }
        if conn.shedding {
            if conn.shed_draining && mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
                self.drain_shed_reads(&mut conn);
            }
            self.settle(token, conn);
            return;
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 && !conn.read_closed {
            self.read_some(&mut conn);
        }
        if !conn.dead && !self.process_requests(&mut conn) {
            conn.dead = true;
        }
        self.settle(token, conn);
    }

    /// Feed the parser everything available (bounded passes; level-
    /// triggered epoll re-reports any remainder).
    fn read_some(&mut self, conn: &mut Conn) {
        for _ in 0..MAX_READ_PASSES {
            match conn.stream.read(&mut self.read_buf[..]) {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => {
                    conn.parser.feed(&self.read_buf[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard read error: the threaded core closes here too.
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Drain every complete buffered request — the exact inner loop of
    /// the threaded core's `handle_connection`, state-machine flavoured.
    /// Returns false if the connection died mid-batch.
    fn process_requests(&mut self, conn: &mut Conn) -> bool {
        loop {
            if conn.close_after_flush {
                // keep=false (or an error) already decided this
                // connection's fate; buffered pipelined requests are
                // dropped, exactly like the threaded early return.
                return true;
            }
            match conn.parser.poll() {
                Ok(Some(request)) => {
                    // One request parsed: re-arm the slowloris clock for
                    // whatever is buffered next.
                    conn.request_started = None;
                    // Per-peer fairness, before routing — same point in
                    // the request path as the threaded core.
                    if let Some(limiter) = &self.state.fairness {
                        if let Ok(peer) = conn.stream.peer_addr() {
                            if !limiter.admit(peer.ip()) {
                                self.state
                                    .counters
                                    .rate_limited
                                    .fetch_add(1, Ordering::Relaxed);
                                conn.append(&http::rate_limited_response_bytes(
                                    limiter.retry_after_secs(),
                                ));
                                conn.close_after_flush = true;
                                return true;
                            }
                        }
                    }
                    let started = Instant::now();
                    let keep = match route(&self.state, &request) {
                        Routed::Response(response) => {
                            response.write_into(&mut self.scratch);
                            conn.out.extend_from_slice(&self.scratch);
                            response.keep_alive
                        }
                        Routed::BatchStream { pages, keep_alive } => {
                            if self.run_batch_blocking(conn, &pages, keep_alive).is_err() {
                                return false;
                            }
                            keep_alive
                        }
                    };
                    self.state
                        .latency
                        .record_us(started.elapsed().as_micros() as u64);
                    conn.last_activity = Instant::now();
                    if !keep {
                        conn.close_after_flush = true;
                        return true;
                    }
                }
                Ok(None) => return true,
                Err(e) => {
                    // Protocol error: answer it and close — the byte
                    // stream is no longer trustworthy.
                    self.state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let response = Response::error(e.status(), &e.detail(), false);
                    response.write_into(&mut self.scratch);
                    conn.out.extend_from_slice(&self.scratch);
                    conn.close_after_flush = true;
                    return true;
                }
            }
        }
    }

    /// Stream a batch through the shared [`stream_batch`] with the
    /// socket temporarily blocking: run-to-completion buys exact byte,
    /// counter, and peak-gauge parity with the threaded core.
    fn run_batch_blocking(
        &mut self,
        conn: &mut Conn,
        pages: &[String],
        keep_alive: bool,
    ) -> std::io::Result<()> {
        conn.stream.set_nonblocking(false)?;
        conn.stream
            .set_write_timeout(Some(self.config.write_timeout))?;
        let result = (|| {
            if !conn.flushed() {
                let pos = conn.out_pos;
                conn.stream.write_all(&conn.out[pos..])?;
            }
            conn.out.clear();
            conn.out_pos = 0;
            conn.out_since = None;
            stream_batch(
                &mut conn.stream,
                &self.state,
                &self.config,
                pages,
                keep_alive,
                &mut self.scratch,
            )
        })();
        self.scratch.clear();
        let restored = conn.stream.set_nonblocking(true);
        result?;
        restored
    }

    /// Write as much buffered output as the socket accepts.
    fn try_flush(&mut self, conn: &mut Conn) {
        while !conn.flushed() {
            let pos = conn.out_pos;
            match conn.stream.write(&conn.out[pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.flushed() {
            conn.out.clear();
            conn.out_pos = 0;
            conn.out_since = None;
        } else {
            conn.out_since.get_or_insert_with(Instant::now);
        }
    }

    /// Shed phase two: discard the client's request bytes until EOF so
    /// closing does not RST the 503 out of the receive buffer.
    fn drain_shed_reads(&mut self, conn: &mut Conn) {
        for _ in 0..8 {
            match conn.stream.read(&mut self.read_buf[..]) {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    // ---- settling --------------------------------------------------

    /// Common epilogue for every event and timer: flush, maybe close,
    /// re-arm interest and deadline, put the connection back.
    fn settle(&mut self, token: u64, mut conn: Conn) {
        if !conn.dead {
            self.try_flush(&mut conn);
        }
        if conn.shedding && !conn.shed_draining && conn.flushed() && !conn.dead {
            // 503 fully written: half-close and drain reads briefly.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.shed_draining = true;
            self.arm_shed_window(token, &mut conn, SHED_DRAIN_MS);
        }
        let finished = conn.flushed() && (conn.close_after_flush || conn.read_closed);
        if conn.dead || finished {
            self.close(conn);
            return;
        }
        let mut want = sys::EPOLLRDHUP;
        if conn.shedding {
            want |= if conn.shed_draining {
                sys::EPOLLIN
            } else {
                sys::EPOLLOUT
            };
        } else {
            if !conn.read_closed && !conn.close_after_flush {
                want |= sys::EPOLLIN;
            }
            if !conn.flushed() {
                want |= sys::EPOLLOUT;
            }
        }
        if want != conn.interest {
            let _ = self.ep.modify(conn.stream.as_raw_fd(), token, want);
            conn.interest = want;
        }
        if !conn.shedding {
            self.arm_deadline(token, &mut conn);
        }
        self.conns.insert(token, conn);
    }

    /// The connection's next deadline, as the wheel sees it: slowloris
    /// request deadline while mid-parse, idle timeout otherwise, capped
    /// by the write timeout while output is stalled.
    fn arm_deadline(&mut self, token: u64, conn: &mut Conn) {
        let mut deadline = if conn.parser.mid_request() {
            *conn.request_started.get_or_insert_with(Instant::now) + self.config.request_deadline
        } else {
            conn.request_started = None;
            conn.last_activity + self.config.idle_timeout
        };
        if !conn.flushed() {
            let stalled = conn.out_since.unwrap_or_else(Instant::now);
            deadline = deadline.min(stalled + self.config.write_timeout);
        }
        let tick = self.tick_of(deadline);
        if tick != conn.armed_tick {
            conn.gen += 1;
            conn.armed_tick = tick;
            self.wheel.insert_at(tick, token, conn.gen);
        }
    }

    /// A wheel entry fired: discard if stale, otherwise re-validate the
    /// deadline against real clocks (ticks are coarse) and act.
    fn on_timer(&mut self, entry: TimerEntry) {
        let Some(mut conn) = self.conns.remove(&entry.token) else {
            return;
        };
        if conn.gen != entry.gen {
            self.conns.insert(entry.token, conn);
            return;
        }
        conn.armed_tick = 0;
        let now = Instant::now();
        if conn.shedding {
            // Write or drain window expired: the threaded shed thread
            // would have given up here too.
            conn.dead = true;
        } else if !conn.flushed()
            && conn
                .out_since
                .is_some_and(|s| now.duration_since(s) >= self.config.write_timeout)
        {
            // Non-reading client stalled a response past the write
            // timeout — the threaded core's write_all would have failed.
            conn.dead = true;
        } else if conn.parser.mid_request()
            && conn
                .request_started
                .is_some_and(|s| now.duration_since(s) > self.config.request_deadline)
        {
            // Slowloris: bytes dribble in but the request never
            // completes. Answer 408 and close.
            self.state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            let response = Response::error(408, "request did not complete in time", false);
            response.write_into(&mut self.scratch);
            conn.out.extend_from_slice(&self.scratch);
            conn.close_after_flush = true;
        } else if !conn.parser.mid_request()
            && conn.flushed()
            && now.duration_since(conn.last_activity) > self.config.idle_timeout
        {
            conn.dead = true; // silent idle close, like the threaded return
        }
        self.settle(entry.token, conn);
    }

    /// Close a connection: deregister, drop (closing the fd), and hand
    /// the governor slot to a queued waiter unless draining.
    fn close(&mut self, conn: Conn) {
        self.ep.delete(conn.stream.as_raw_fd());
        let holds_slot = conn.holds_slot;
        drop(conn);
        if holds_slot {
            if let Some(next) = self.governor.finish(!self.draining) {
                self.register_conn(next, true);
            }
        }
    }

    // ---- drain -----------------------------------------------------

    /// Graceful drain: stop accepting, refuse the queue, answer every
    /// already-buffered complete request, then close each connection as
    /// its output flushes. In-flight batches ran to completion before
    /// the flag was observed (run-to-completion), so streams are never
    /// truncated mid-response.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            self.ep.delete(listener.as_raw_fd());
        }
        drop(self.governor.drain_queue());
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            if !conn.shedding {
                if !self.process_requests(&mut conn) {
                    conn.dead = true;
                }
                conn.close_after_flush = true;
            }
            self.settle(token, conn);
        }
    }
}
