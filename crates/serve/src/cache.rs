//! The sharded, content-hash-keyed LRU response cache.
//!
//! Repeated audits of the same page bytes must never re-parse: the server
//! keys the serialized JSON response by an FNV-1a hash of the raw request
//! body and answers cache hits byte-identically. The map is split into
//! [`ShardedCache::shard_count`] shards, each behind its own
//! `parking_lot::Mutex`, so concurrent hits on different pages contend
//! only when they land on the same shard — the classic striped-lock
//! layout of production response caches.
//!
//! Eviction is exact LRU per shard: every entry carries the shard's
//! monotonic access tick; inserting into a full shard evicts the entry
//! with the smallest tick. Capacities are small (hundreds of entries), so
//! the O(shard-len) eviction scan is cheaper than maintaining an
//! intrusive list — and trivially correct, which the eviction-order tests
//! exercise directly.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// 64-bit FNV-1a over arbitrary bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Murmur3's 64-bit finalizer (fmix64): two xor-shift/multiply rounds that
/// give full avalanche — every input bit flips every output bit with
/// probability ≈ 1/2. FNV-1a alone is a fine identity hash but a poor
/// *distribution* hash for one-or-two-byte inputs (the last multiply
/// under-mixes the high bits), and shard selection reduces the hash
/// modulo a small count, so it needs the avalanche.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Cache key: content hash plus original length (the length guard turns a
/// 64-bit-collision stale answer into a 64-bit-collision *on equal-length
/// bodies*, which is as close to content addressing as a fixed-width key
/// gets without storing the body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub hash: u64,
    pub len: u64,
}

impl CacheKey {
    /// Key for a raw request body.
    pub fn of(body: &[u8]) -> CacheKey {
        CacheKey {
            hash: fnv1a64(body),
            len: body.len() as u64,
        }
    }

    /// Hex rendering used in audit responses (`content_hash`).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

struct Shard {
    entries: HashMap<CacheKey, (Arc<Vec<u8>>, u64)>,
    tick: u64,
}

/// Counters snapshot, serialized into `GET /v1/stats`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheSnapshot {
    pub shards: usize,
    pub capacity_per_shard: usize,
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Hits as a share of lookups, 0–1 (0 when no lookups yet).
    pub hit_rate: f64,
}

/// The sharded LRU response cache.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// `shards` stripes of `capacity_per_shard` entries each. Both are
    /// clamped to at least 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key lands on. FNV-1a's final multiply leaves the
    /// high word under-mixed for short inputs (measured: 3 of 8 shards
    /// absorbed everything on `page-N` keys under the earlier XOR-fold of
    /// the halves), so the hash goes through a full 64-bit finalizer
    /// before reduction.
    pub fn shard_of(&self, key: CacheKey) -> usize {
        (mix64(key.hash) as usize) % self.shards.len()
    }

    /// Look up a key, bumping its recency on hit.
    pub fn get(&self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.shards[self.shard_of(key)].lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(&key) {
            Some((bytes, last_used)) => {
                *last_used = tick;
                let bytes = Arc::clone(bytes);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) a value, evicting the shard's LRU entry when
    /// full.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<u8>>) {
        let mut shard = self.shards[self.shard_of(key)].lock();
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.capacity_per_shard {
            if let Some(&victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, (value, tick));
    }

    /// The serve hot path: answer from cache, or compute, insert, and
    /// answer. Returns `(bytes, was_hit)`.
    ///
    /// `compute` runs *outside* the shard lock — an audit takes hundreds
    /// of microseconds and must not serialize the whole shard behind it.
    /// Two racers on the same cold key may both compute; both produce
    /// byte-identical JSON (the engine is deterministic), so last-write
    /// wins safely.
    pub fn get_or_compute(
        &self,
        body: &[u8],
        compute: impl FnOnce() -> Vec<u8>,
    ) -> (Arc<Vec<u8>>, bool) {
        let key = CacheKey::of(body);
        if let Some(found) = self.get(key) {
            return (found, true);
        }
        let value = Arc::new(compute());
        self.insert(key, Arc::clone(&value));
        (value, false)
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries per shard, in shard order (used by the striping tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().entries.len()).collect()
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        let hits = self.hits();
        let misses = self.misses();
        let lookups = hits + misses;
        CacheSnapshot {
            shards: self.shard_count(),
            capacity_per_shard: self.capacity_per_shard,
            entries: self.len(),
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn val(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn get_or_compute_hits_after_miss() {
        let cache = ShardedCache::new(4, 8);
        let computed = AtomicUsize::new(0);
        let compute = || {
            computed.fetch_add(1, Ordering::Relaxed);
            b"json".to_vec()
        };
        let (a, hit_a) = cache.get_or_compute(b"<html>page</html>", compute);
        assert!(!hit_a);
        let (b, hit_b) = cache.get_or_compute(b"<html>page</html>", || unreachable!());
        assert!(hit_b);
        assert_eq!(a, b, "cached bytes must be identical");
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_eviction_order_is_exact() {
        // Single shard so the order is fully observable.
        let cache = ShardedCache::new(1, 3);
        let (ka, kb, kc, kd) = (
            CacheKey::of(b"a"),
            CacheKey::of(b"b"),
            CacheKey::of(b"c"),
            CacheKey::of(b"d"),
        );
        cache.insert(ka, val("A"));
        cache.insert(kb, val("B"));
        cache.insert(kc, val("C"));
        // Touch `a`: `b` becomes least recently used.
        assert!(cache.get(ka).is_some());
        cache.insert(kd, val("D"));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(kb).is_none(), "b was LRU and must be evicted");
        assert!(cache.get(ka).is_some());
        assert!(cache.get(kc).is_some());
        assert!(cache.get(kd).is_some());

        // Continue: now the recency order is a, c, d (b missed above does
        // not count); touching c then inserting a fifth key evicts a.
        assert!(cache.get(kc).is_some());
        let ke = CacheKey::of(b"e");
        cache.insert(ke, val("E"));
        assert!(cache.get(ka).is_none(), "a was LRU after c was touched");
        assert_eq!(cache.snapshot().evictions, 2);
    }

    #[test]
    fn reinsert_of_existing_key_does_not_evict() {
        let cache = ShardedCache::new(1, 2);
        let (ka, kb) = (CacheKey::of(b"a"), CacheKey::of(b"b"));
        cache.insert(ka, val("A"));
        cache.insert(kb, val("B"));
        cache.insert(ka, val("A2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.snapshot().evictions, 0);
        assert_eq!(cache.get(ka).unwrap().as_slice(), b"A2");
    }

    #[test]
    fn keys_stripe_across_shards() {
        let cache = ShardedCache::new(8, 64);
        for i in 0..256u32 {
            let body = format!("page-{i}");
            cache.insert(CacheKey::of(body.as_bytes()), val(&body));
        }
        let lens = cache.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 256);
        // FNV distributes: no shard may be empty or hold the majority.
        for (i, len) in lens.iter().enumerate() {
            assert!(*len > 0, "shard {i} empty: {lens:?}");
            assert!(*len < 128, "shard {i} overloaded: {lens:?}");
        }
    }

    #[test]
    fn short_keys_stripe_across_shards() {
        // The under-mixed-high-bits failure mode: one- and two-byte
        // bodies. With the fmix64 finalizer every shard must take a fair
        // share; without it a handful of shards absorb everything.
        let cache = ShardedCache::new(8, 64);
        let mut inserted = 0;
        for a in b'a'..=b'z' {
            cache.insert(CacheKey::of(&[a]), val("x"));
            inserted += 1;
            for b in b'0'..=b'9' {
                cache.insert(CacheKey::of(&[a, b]), val("y"));
                inserted += 1;
            }
        }
        let lens = cache.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), inserted);
        let expected = inserted / 8;
        for (i, len) in lens.iter().enumerate() {
            assert!(
                *len >= expected / 2 && *len <= expected * 2,
                "shard {i} holds {len} of {inserted} (expected ≈{expected}): {lens:?}"
            );
        }
    }

    #[test]
    fn shards_fill_independently() {
        // Each shard holds its own LRU set: filling one shard far past
        // its capacity must not evict entries resident in other shards.
        let cache = ShardedCache::new(4, 4);
        let resident: Vec<CacheKey> = (0..8)
            .map(|i| {
                let body = format!("resident-{i}");
                let key = CacheKey::of(body.as_bytes());
                cache.insert(key, val(&body));
                key
            })
            .collect();
        // Hammer one specific shard with fresh keys.
        let victim_shard = cache.shard_of(resident[0]);
        let mut hammered = 0;
        let mut i = 0u32;
        while hammered < 64 {
            let body = format!("hammer-{i}");
            let key = CacheKey::of(body.as_bytes());
            i += 1;
            if cache.shard_of(key) == victim_shard {
                cache.insert(key, val(&body));
                hammered += 1;
            }
        }
        for key in &resident {
            if cache.shard_of(*key) != victim_shard {
                assert!(
                    cache.get(*key).is_some(),
                    "entry outside the hammered shard was evicted"
                );
            }
        }
    }

    #[test]
    fn concurrent_hits_count_exactly() {
        let cache = Arc::new(ShardedCache::new(8, 32));
        for i in 0..16u32 {
            let body = format!("page-{i}");
            cache.insert(CacheKey::of(body.as_bytes()), val(&body));
        }
        const THREADS: usize = 8;
        const LOOKUPS: usize = 200;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for j in 0..LOOKUPS {
                        let body = format!("page-{}", (t * 7 + j) % 16);
                        assert!(cache.get(CacheKey::of(body.as_bytes())).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.hits(), (THREADS * LOOKUPS) as u64);
        assert_eq!(cache.misses(), 0);
        let snap = cache.snapshot();
        assert!((snap.hit_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_shape() {
        let cache = ShardedCache::new(2, 4);
        assert!(cache.is_empty());
        let snap = cache.snapshot();
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.capacity_per_shard, 4);
        assert_eq!(snap.hit_rate, 0.0);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"hit_rate\""));
    }

    #[test]
    fn key_hex_is_stable() {
        let k = CacheKey::of(b"foobar");
        assert_eq!(k.hex(), "85944171f73967e8");
        assert_eq!(k.len, 6);
    }
}
