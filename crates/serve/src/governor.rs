//! The connection governor: bounded admission for the accept loop.
//!
//! Three-tier backpressure, the standard front-door shape of a bounded
//! server:
//!
//! 1. **Serve** — while fewer than `max_active` connections are live, a
//!    new connection claims a slot and gets its own handler thread. The
//!    slot count is therefore also the hard bound on connection threads.
//! 2. **Queue** — at the cap, up to `queue_cap` connections wait in a
//!    bounded pending queue. A handler thread that finishes its
//!    connection pops the queue and serves the waiter on the same thread
//!    (and the same slot) instead of releasing the slot.
//! 3. **Shed** — cap and queue both full: the connection is answered
//!    `503 Service Unavailable` + `Retry-After` straight from the accept
//!    loop and closed. Load the server cannot absorb is refused in O(1)
//!    instead of accumulating unbounded threads or sockets.
//!
//! Queued connections are drained by slot turnover, and slot turnover is
//! guaranteed by the per-connection deadlines in `server` (idle timeout,
//! request deadline, write timeout): an idle or stuck keep-alive
//! connection cannot pin its slot forever, so a queued waiter is served
//! within one deadline period even under a slowloris storm.
//!
//! The governor is generic over the connection type so its admission
//! logic is unit-testable without sockets; the server instantiates it
//! with `TcpStream`.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where an arriving connection goes.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission<T> {
    /// A slot was claimed: serve on a fresh handler thread.
    Serve(T),
    /// Cap reached, queue had room: parked until a handler frees up.
    Queued,
    /// Cap and queue full: answer 503 + Retry-After and close.
    Shed(T),
}

/// Bounded admission state shared by the accept loop and every handler
/// thread. Deliberately counter-free: the server's `RequestCounters`
/// (surfaced on `/v1/stats`) are the single source of shed telemetry,
/// counted by the caller on the [`Admission::Shed`] arm.
pub struct Governor<T> {
    max_active: usize,
    queue_cap: usize,
    active: AtomicUsize,
    queue: Mutex<VecDeque<T>>,
}

impl<T> Governor<T> {
    /// `max_active` slots (clamped to ≥ 1) and `queue_cap` pending
    /// waiters (0 = shed immediately at the cap).
    pub fn new(max_active: usize, queue_cap: usize) -> Self {
        Governor {
            max_active: max_active.max(1),
            queue_cap,
            active: AtomicUsize::new(0),
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Admit one connection: claim a slot, park it, or shed it.
    pub fn admit(&self, conn: T) -> Admission<T> {
        if self.try_claim_slot() {
            return Admission::Serve(conn);
        }
        {
            let mut queue = self.queue.lock();
            if queue.len() >= self.queue_cap {
                return Admission::Shed(conn);
            }
            queue.push_back(conn);
        }
        // Repair the admit/finish race: a handler may have released the
        // last slot between our failed claim and the push above, with no
        // later finish() left to pop the queue. If a slot is free now,
        // claim it and serve the queue head (not necessarily the
        // connection we just pushed — FIFO order is the fairness here).
        if self.try_claim_slot() {
            match self.queue.lock().pop_front() {
                Some(waiter) => return Admission::Serve(waiter),
                None => self.release_slot(),
            }
        }
        Admission::Queued
    }

    /// A handler thread finished its connection. Returns the next queued
    /// connection to serve on the same slot, or releases the slot when
    /// the queue is empty (or the server is draining — queued waiters
    /// are refused at shutdown, not served).
    pub fn finish(&self, serve_queued: bool) -> Option<T> {
        if serve_queued {
            if let Some(next) = self.queue.lock().pop_front() {
                return Some(next);
            }
        }
        self.release_slot();
        None
    }

    /// Empty the pending queue (shutdown: dropping a `TcpStream` closes
    /// the socket, which is the refusal).
    pub fn drain_queue(&self) -> Vec<T> {
        self.queue.lock().drain(..).collect()
    }

    /// Live connections holding slots.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    fn try_claim_slot(&self) -> bool {
        let mut current = self.active.load(Ordering::SeqCst);
        while current < self.max_active {
            match self.active.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
        false
    }

    fn release_slot(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_up_to_cap_then_queues_then_sheds() {
        let governor: Governor<u32> = Governor::new(2, 1);
        assert_eq!(governor.admit(1), Admission::Serve(1));
        assert_eq!(governor.admit(2), Admission::Serve(2));
        assert_eq!(governor.active(), 2);
        assert_eq!(governor.admit(3), Admission::Queued);
        assert_eq!(governor.admit(4), Admission::Shed(4));
        assert_eq!(governor.admit(5), Admission::Shed(5));
    }

    #[test]
    fn finish_pops_the_queue_keeping_the_slot() {
        let governor: Governor<u32> = Governor::new(1, 2);
        assert_eq!(governor.admit(1), Admission::Serve(1));
        assert_eq!(governor.admit(2), Admission::Queued);
        assert_eq!(governor.admit(3), Admission::Queued);
        // Handler finishes: serves waiter 2 on the same slot.
        assert_eq!(governor.finish(true), Some(2));
        assert_eq!(governor.active(), 1, "slot is reused, not released");
        assert_eq!(governor.finish(true), Some(3));
        assert_eq!(governor.finish(true), None);
        assert_eq!(governor.active(), 0);
    }

    #[test]
    fn finish_at_shutdown_refuses_queued_waiters() {
        let governor: Governor<u32> = Governor::new(1, 2);
        assert_eq!(governor.admit(1), Admission::Serve(1));
        assert_eq!(governor.admit(2), Admission::Queued);
        assert_eq!(governor.finish(false), None, "drain mode skips the queue");
        assert_eq!(governor.active(), 0);
        assert_eq!(governor.drain_queue(), vec![2]);
        assert!(governor.drain_queue().is_empty());
    }

    #[test]
    fn zero_queue_sheds_exactly_beyond_cap() {
        // The torture suite's cap-storm contract: cap + N arrivals with
        // no queue shed exactly N.
        let governor: Governor<u32> = Governor::new(3, 0);
        let mut served = 0;
        let mut shed = 0;
        for conn in 0..8 {
            match governor.admit(conn) {
                Admission::Serve(_) => served += 1,
                Admission::Shed(_) => shed += 1,
                Admission::Queued => panic!("queue_cap 0 must never queue"),
            }
        }
        assert_eq!(served, 3);
        assert_eq!(shed, 5);
    }

    #[test]
    fn slots_free_under_concurrent_churn() {
        // Hammer admit/finish from many threads; the invariant is that
        // active never exceeds the cap and ends at zero.
        let governor: Governor<usize> = Governor::new(4, 8);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let governor = &governor;
                scope.spawn(move || {
                    for i in 0..200 {
                        match governor.admit(t * 1000 + i) {
                            Admission::Serve(_) => {
                                assert!(governor.active() <= 4);
                                let mut next = governor.finish(true);
                                while next.is_some() {
                                    next = governor.finish(true);
                                }
                            }
                            Admission::Queued | Admission::Shed(_) => {}
                        }
                    }
                });
            }
        });
        // Every Serve path ran its finish() chain to None, so all slots
        // are back; only never-picked-up queue stragglers may remain.
        assert_eq!(governor.active(), 0);
        let stragglers = governor.drain_queue();
        assert!(stragglers.len() <= 8);
    }
}
