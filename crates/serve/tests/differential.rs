//! The cross-core differential oracle: arbitrary pipelined request
//! schedules — CL/chunked framing mix, torn writes, keep-alive/close,
//! protocol errors, optional per-peer fairness — replayed against a
//! fresh server on each [`ServeCore`] must produce **byte-identical
//! response streams** and matching `/v1/stats` counters.
//!
//! This is the contract that lets the epoll reactor replace the
//! thread-per-connection core: not "passes the same tests" but "emits
//! the same bytes". Schedules draw only from deterministic-body
//! endpoints (`/v1/healthz` and `/v1/stats` carry uptime, so they are
//! compared structurally via counters, not bytes).

use langcrux_serve::{spawn, FairnessConfig, ServeConfig, ServeCore};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

mod common;

/// Tiny deterministic corpus: multilingual pages exercising the audit
/// engine's verdict paths without slowing 128 replays to a crawl.
const PAGES: [&str; 4] = [
    "<html lang=hi><body><p>आज की मुख्य ख़बरें यहाँ पढ़ें।</p></body></html>",
    "<html lang=ta><body><p>தமிழ் செய்திகள் இன்று</p><img src=a></body></html>",
    "<html lang=en><body><p>plain english filler page</p></body></html>",
    "<html><body><p>bn খবর mixed বাংলা content</p></body></html>",
];

/// Splitmix-style generator: one u64 seed drives the whole schedule, so
/// every case is reproducible from the proptest seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One request's raw bytes. `close` adds `Connection: close`; chunked
/// framing splits the body into `pieces` chunks.
fn audit_request(body: &[u8], chunked: bool, pieces: usize, close: bool) -> Vec<u8> {
    let conn = if close { "Connection: close\r\n" } else { "" };
    if chunked {
        let mut raw = format!(
            "POST /v1/audit HTTP/1.1\r\nHost: d\r\n{conn}Transfer-Encoding: chunked\r\n\r\n"
        )
        .into_bytes();
        let step = body.len().div_ceil(pieces.max(1)).max(1);
        for chunk in body.chunks(step) {
            raw.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            raw.extend_from_slice(chunk);
            raw.extend_from_slice(b"\r\n");
        }
        raw.extend_from_slice(b"0\r\n\r\n");
        raw
    } else {
        let mut raw = format!(
            "POST /v1/audit HTTP/1.1\r\nHost: d\r\n{conn}Content-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(body);
        raw
    }
}

/// Build one pipelined schedule from a seed: the raw bytes to send and
/// whether it ends in a request that closes the connection server-side.
fn build_schedule(rng: &mut Rng) -> Vec<u8> {
    let mut raw = Vec::new();
    let requests = 1 + rng.below(6) as usize;
    for i in 0..requests {
        // A close or a protocol error ends the connection server-side;
        // later requests are dropped identically by both cores, which
        // is itself part of the contract under test.
        let close = rng.below(5) == 0;
        match rng.below(10) {
            // Audit, Content-Length framing.
            0..=3 => {
                let page = PAGES[rng.below(PAGES.len() as u64) as usize];
                raw.extend_from_slice(&audit_request(page.as_bytes(), false, 1, close));
            }
            // Audit, chunked framing with 1–4 chunks.
            4..=6 => {
                let page = PAGES[rng.below(PAGES.len() as u64) as usize];
                let pieces = 1 + rng.below(4) as usize;
                raw.extend_from_slice(&audit_request(page.as_bytes(), true, pieces, close));
            }
            // Small batch (0–2 pages) — streamed chunked response.
            7 => {
                let count = rng.below(3) as usize;
                let pages: Vec<&str> = (0..count)
                    .map(|_| PAGES[rng.below(PAGES.len() as u64) as usize])
                    .collect();
                let payload = serde_json::to_string(&pages).expect("payload");
                let conn = if close { "Connection: close\r\n" } else { "" };
                raw.extend_from_slice(
                    format!(
                        "POST /v1/batch HTTP/1.1\r\nHost: d\r\n{conn}Content-Length: {}\r\n\r\n{payload}",
                        payload.len()
                    )
                    .as_bytes(),
                );
            }
            // Unknown endpoint → 404, connection stays usable.
            8 => {
                let conn = if close { "Connection: close\r\n" } else { "" };
                raw.extend_from_slice(
                    format!("GET /v2/nope HTTP/1.1\r\nHost: d\r\n{conn}\r\n").as_bytes(),
                );
            }
            // Invalid UTF-8 audit body → route-level 400, keep-alive
            // honoured; or (rarely, last slot only) a malformed start
            // line → parse-level 400 + close.
            _ => {
                if i == requests - 1 && rng.below(3) == 0 {
                    raw.extend_from_slice(b"BROKEN\r\n\r\n");
                } else {
                    let body = [0xFFu8, 0xFE, 0x80, 0x90];
                    raw.extend_from_slice(&audit_request(&body, false, 1, close));
                }
            }
        }
    }
    raw
}

/// Send `raw` torn at the given offsets, half-close, read to EOF.
fn replay(addr: std::net::SocketAddr, raw: &[u8], tears: &[usize]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut offsets: Vec<usize> = tears.iter().map(|t| t % (raw.len() + 1)).collect();
    offsets.push(0);
    offsets.push(raw.len());
    offsets.sort_unstable();
    offsets.dedup();
    for window in offsets.windows(2) {
        // A mid-schedule `Connection: close` (or protocol error) may
        // close the socket under our remaining writes — that early
        // close is itself part of the differential contract.
        if stream.write_all(&raw[window[0]..window[1]]).is_err() {
            break;
        }
        if window[1] != raw.len() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

/// One core's replay outcome: the core, its response byte stream, and
/// its post-replay counters.
type CoreReplay = (ServeCore, Vec<u8>, Vec<(String, u64)>);

/// The counters the differential contract pins. Fetched over HTTP
/// (`/v1/stats`) unless the schedule may have drained the peer's
/// fairness bucket — a 429'd stats fetch carries no counters — in which
/// case the in-process snapshot (the same data `/v1/stats` renders) is
/// compared instead.
fn stats_counters(server: &langcrux_serve::ServerHandle, via_http: bool) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    if via_http {
        let mut stream = TcpStream::connect(server.addr()).expect("stats connect");
        let mut scratch = Vec::new();
        let (status, body) =
            langcrux_serve::loadgen::get(&mut stream, "/v1/stats", &mut scratch).expect("stats");
        assert_eq!(status, 200);
        let stats: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("stats json");
        let grab = |obj: &serde_json::Value, key: &str| -> u64 {
            match obj.get(key) {
                Some(serde_json::Value::UInt(v)) => *v,
                other => panic!("{key} missing or non-uint: {other:?}"),
            }
        };
        let requests = stats.get("requests").expect("requests");
        for key in [
            "audit",
            "batch",
            "batch_pages",
            "errors",
            "timeouts",
            "rate_limited",
        ] {
            out.push((format!("requests.{key}"), grab(requests, key)));
        }
        let cache = stats.get("cache").expect("cache");
        for key in ["hits", "misses", "entries"] {
            out.push((format!("cache.{key}"), grab(cache, key)));
        }
    } else {
        let stats = server.state().stats();
        let requests = &stats.requests;
        for (key, value) in [
            ("audit", requests.audit),
            ("batch", requests.batch),
            ("batch_pages", requests.batch_pages),
            ("errors", requests.errors),
            ("timeouts", requests.timeouts),
            ("rate_limited", requests.rate_limited),
        ] {
            out.push((format!("requests.{key}"), value));
        }
        for (key, value) in [
            ("hits", stats.cache.hits),
            ("misses", stats.cache.misses),
            ("entries", stats.cache.entries as u64),
        ] {
            out.push((format!("cache.{key}"), value));
        }
    }
    out
}

proptest! {
    /// The differential oracle: one schedule, every core, same bytes,
    /// same counters.
    #[test]
    fn pipelined_schedules_are_byte_identical_across_cores(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let raw = build_schedule(&mut rng);
        let tears: Vec<usize> = (0..rng.below(4)).map(|_| rng.below(4096) as usize).collect();
        // Every fourth seed turns on a tight per-peer limit, so the 429
        // path is part of the differential contract too.
        let fairness = if rng.below(4) == 0 {
            Some(FairnessConfig { rate_per_sec: 1, burst: 3, retry_after_secs: 1 })
        } else {
            None
        };

        let mut streams: Vec<CoreReplay> = Vec::new();
        for core in common::cores() {
            let server = spawn(ServeConfig {
                core,
                fairness,
                ..ServeConfig::default()
            })
            .expect("spawn");
            let bytes = replay(server.addr(), &raw, &tears);
            let counters = stats_counters(&server, fairness.is_none());
            server.shutdown();
            streams.push((core, bytes, counters));
        }

        let (base_core, base_bytes, base_counters) = &streams[0];
        prop_assert!(!base_bytes.is_empty(), "no response at all on {}", base_core.name());
        for (core, bytes, counters) in &streams[1..] {
            prop_assert_eq!(
                bytes, base_bytes,
                "seed {seed:#x}: {} response stream drifted from {}",
                core.name(), base_core.name()
            );
            prop_assert_eq!(
                counters, base_counters,
                "seed {seed:#x}: {} counters drifted from {}",
                core.name(), base_core.name()
            );
        }
    }
}
