//! Property tests for the chunked-transfer request decoder, mirroring
//! the parser proptests in `http_proptests.rs`.
//!
//! Core invariants:
//!
//! * **Tear-invariance** — the decoded request is a pure function of the
//!   byte stream, however TCP tears it: across chunk-size lines,
//!   extensions, data CRLFs, and trailer lines.
//! * **Content-Length oracle** — a chunked request decodes to exactly
//!   the body of the equivalent `Content-Length` request, whatever the
//!   chunk split, extensions, or trailers.
//! * **Limit mapping** — a declared chunk total beyond the body limit is
//!   413 at declaration time, under any chunking.

use langcrux_serve::http::{Limits, ParseError, Request, RequestParser};
use proptest::prelude::*;

mod common;

/// Feed `bytes` split at `cuts` (offsets taken modulo the length, any
/// order, duplicates fine) and return the first complete poll result.
fn parse_torn(bytes: &[u8], cuts: &[usize], limits: Limits) -> Result<Option<Request>, ParseError> {
    let mut offsets: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    offsets.push(0);
    offsets.push(bytes.len());
    offsets.sort_unstable();
    offsets.dedup();
    let mut parser = RequestParser::new(limits);
    let mut last = Ok(None);
    for window in offsets.windows(2) {
        parser.feed(&bytes[window[0]..window[1]]);
        last = parser.poll();
        if !matches!(last, Ok(None)) {
            return last;
        }
    }
    last
}

/// Assemble a chunked request: `body` split at `splits` (relative
/// offsets), with optional chunk extensions and trailer fields.
fn build_chunked(
    path: &str,
    body: &[u8],
    splits: &[usize],
    extension: &str,
    trailers: &[(String, String)],
) -> Vec<u8> {
    let mut cuts: Vec<usize> = splits.iter().map(|s| s % (body.len() + 1)).collect();
    cuts.push(0);
    cuts.push(body.len());
    cuts.sort_unstable();
    cuts.dedup();
    let mut raw =
        format!("POST {path} HTTP/1.1\r\nHost: prop\r\nTransfer-Encoding: chunked\r\n\r\n")
            .into_bytes();
    for window in cuts.windows(2) {
        let chunk = &body[window[0]..window[1]];
        if chunk.is_empty() {
            continue; // a zero-size chunk would terminate the stream
        }
        let ext = if extension.is_empty() {
            String::new()
        } else {
            format!(";{extension}")
        };
        raw.extend_from_slice(format!("{:x}{ext}\r\n", chunk.len()).as_bytes());
        raw.extend_from_slice(chunk);
        raw.extend_from_slice(b"\r\n");
    }
    raw.extend_from_slice(b"0\r\n");
    for (name, value) in trailers {
        raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    raw
}

/// The equivalent Content-Length request (the oracle).
fn build_fixed(path: &str, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "POST {path} HTTP/1.1\r\nHost: prop\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

proptest! {
    /// Chunked decode ≡ the Content-Length oracle's body, under any
    /// chunk split, extension, trailer set, and TCP tearing.
    #[test]
    fn chunked_equals_content_length_oracle(
        path in "/[a-z0-9/]{0,12}",
        body in prop::collection::vec(any::<u8>(), 0..400),
        splits in prop::collection::vec(0usize..512, 0..8),
        extension in "[a-z0-9=]{0,12}",
        trailer_names in prop::collection::vec("[A-Za-z][A-Za-z0-9-]{0,8}", 0..3),
        trailer_values in prop::collection::vec("[ -~]{0,16}", 0..3),
        cuts in prop::collection::vec(0usize..2048, 0..12),
    ) {
        let trailers: Vec<(String, String)> = trailer_names
            .iter()
            .cloned()
            .zip(trailer_values.iter().map(|v| v.replace(':', ";").trim().to_string()))
            .collect();
        let chunked_raw = build_chunked(&path, &body, &splits, &extension, &trailers);
        let fixed_raw = build_fixed(&path, &body);

        let oracle = {
            let mut parser = RequestParser::new(Limits::default());
            parser.feed(&fixed_raw);
            parser.poll().unwrap().expect("oracle parses")
        };
        let torn = parse_torn(&chunked_raw, &cuts, Limits::default())
            .unwrap()
            .expect("chunked request parses");
        // Same method, path, body; framing headers differ by design, and
        // trailers must NOT surface as headers.
        prop_assert_eq!(&torn.method, &oracle.method);
        prop_assert_eq!(&torn.path, &oracle.path);
        prop_assert_eq!(&torn.body, &oracle.body);
        prop_assert_eq!(torn.header("host"), Some("prop"));
        for (name, _) in &trailers {
            prop_assert_eq!(torn.header(&name.to_ascii_lowercase()), None);
        }
    }

    /// One-shot and torn parses agree byte-for-byte on the whole Request.
    #[test]
    fn chunked_tearing_is_invisible(
        body in prop::collection::vec(any::<u8>(), 0..300),
        splits in prop::collection::vec(0usize..512, 0..6),
        cuts in prop::collection::vec(0usize..1024, 0..10),
    ) {
        let raw = build_chunked("/v1/audit", &body, &splits, "", &[]);
        let one_shot = {
            let mut parser = RequestParser::new(Limits::default());
            parser.feed(&raw);
            parser.poll()
        };
        let torn = parse_torn(&raw, &cuts, Limits::default());
        prop_assert_eq!(one_shot, torn);
    }

    /// Byte-at-a-time feeding (every CRLF, size line, and trailer torn)
    /// decodes identically.
    #[test]
    fn chunked_byte_at_a_time_decodes_identically(
        body in prop::collection::vec(any::<u8>(), 1..200),
        splits in prop::collection::vec(0usize..256, 0..5),
    ) {
        let raw = build_chunked("/v1/audit", &body, &splits, "x=1", &[("T".to_string(), "v".to_string())]);
        let mut parser = RequestParser::new(Limits::default());
        parser.feed(&raw);
        let one_shot = parser.poll().unwrap().expect("parses");

        let mut trickle = RequestParser::new(Limits::default());
        let mut result = None;
        for byte in &raw {
            trickle.feed(std::slice::from_ref(byte));
            if let Some(request) = trickle.poll().unwrap() {
                result = Some(request);
            }
        }
        prop_assert_eq!(result.expect("parsed by final byte"), one_shot);
    }

    /// A declared chunk total beyond the limit is 413 at declaration
    /// time — before the oversized data arrives — under any chunking.
    #[test]
    fn oversized_chunk_totals_are_413(
        fill in prop::collection::vec(any::<u8>(), 64..128),
        over in 1usize..4096,
        cuts in prop::collection::vec(0usize..512, 0..8),
    ) {
        let limits = Limits { max_body_bytes: 128, ..Limits::default() };
        // First a legitimate chunk, then a declaration that pushes the
        // total over the limit; its data is never sent.
        let mut raw =
            b"POST /v1/audit HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(format!("{:x}\r\n", fill.len()).as_bytes());
        raw.extend_from_slice(&fill);
        raw.extend_from_slice(b"\r\n");
        let second = 128 - fill.len() + over;
        raw.extend_from_slice(format!("{second:x}\r\n").as_bytes());

        let err = parse_torn(&raw, &cuts, limits).unwrap_err();
        prop_assert_eq!(&err, &ParseError::BodyTooLarge(128 + over));
        prop_assert_eq!(err.status(), 413);
    }

    /// Live-server tear replay across cores: a chunked audit, torn at an
    /// arbitrary offset (chunk-size lines, data CRLFs, and the trailer
    /// block included), must be answered byte-identically by both cores.
    #[test]
    fn torn_chunked_audit_is_identical_across_cores(
        body in prop::collection::vec(any::<u8>(), 1..200),
        splits in prop::collection::vec(0usize..256, 0..5),
        cut in 0usize..1024,
    ) {
        let raw = build_chunked(
            "/v1/audit",
            &body,
            &splits,
            "x=1",
            &[("X-Trailer".to_string(), "ignored".to_string())],
        );
        let replies = common::replay_torn_across_cores(&raw, cut);
        prop_assert!(!replies[0].1.is_empty(), "no response on {}", replies[0].0.name());
        for (core, reply) in &replies[1..] {
            prop_assert_eq!(
                reply,
                &replies[0].1,
                "{} drifted from {}",
                core.name(),
                replies[0].0.name()
            );
        }
    }
}
