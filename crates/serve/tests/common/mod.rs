//! Shared cross-core harness: every behavioural suite runs its body
//! against each [`ServeCore`] — the thread-per-connection oracle and the
//! epoll reactor — without copy-pasting test bodies. A test takes
//! `core: ServeCore`, builds its `ServeConfig { core, .. }`, and the
//! wrapper loops the effective cores (deduplicated off Linux, where the
//! reactor falls back to the threaded core).
#![allow(dead_code)]

use langcrux_serve::{spawn, ServeConfig, ServeCore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The distinct cores available on this platform, in oracle-first order.
pub fn cores() -> Vec<ServeCore> {
    let mut cores: Vec<ServeCore> = ServeCore::ALL.iter().map(|c| c.effective()).collect();
    cores.dedup();
    cores
}

/// Run one test body once per available core, labelling failures with
/// the core that produced them.
pub fn for_each_core(test: impl Fn(ServeCore)) {
    for core in cores() {
        eprintln!("=== serve core: {} ===", core.name());
        test(core);
    }
}

/// Replay one raw request byte stream — torn in two at `cut` — against
/// a fresh server on every core, returning each core's complete raw
/// response stream. The client half-closes after sending, so keep-alive
/// responses still end in EOF. Callers assert the streams are
/// byte-identical across cores (use only deterministic-body endpoints:
/// `/v1/healthz` and `/v1/stats` carry uptime).
pub fn replay_torn_across_cores(raw: &[u8], cut: usize) -> Vec<(ServeCore, Vec<u8>)> {
    let cut = cut % (raw.len() + 1);
    cores()
        .into_iter()
        .map(|core| {
            let server = spawn(ServeConfig {
                core,
                ..ServeConfig::default()
            })
            .expect("spawn");
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.write_all(&raw[..cut]).expect("first half");
            if cut != raw.len() {
                // A real TCP tear: let the server read a short segment.
                std::thread::sleep(Duration::from_millis(2));
                stream.write_all(&raw[cut..]).expect("second half");
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut out = Vec::new();
            let _ = stream.read_to_end(&mut out);
            server.shutdown();
            (core, out)
        })
        .collect()
}
