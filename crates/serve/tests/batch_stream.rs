//! Streaming-batch equivalence: the chunked `/v1/batch` response, after
//! de-chunking, must be byte-identical to the pre-streaming buffered
//! array (`batch_buffered`, the oracle) — for empty, single-element, and
//! random multi-page batches — and a large batch must stream through a
//! bounded reorder buffer instead of materializing the whole array
//! (asserted via the `peak_batch_buffer` gauge on `/v1/stats`).

use langcrux_serve::loadgen::{get, post};
use langcrux_serve::{batch_buffered, spawn, ServeConfig, ServeCore, ServerHandle};

mod common;
use langcrux_webgen::{render, SitePlan};
use std::io::{Read, Write};
use std::net::TcpStream;

fn corpus_page(idx: u32) -> String {
    use langcrux_lang::Country;
    use langcrux_net::ContentVariant;
    let country = Country::STUDY[idx as usize % Country::STUDY.len()];
    let plan = SitePlan::build(0xBA7C4, country, idx, Some(true));
    render(&plan, ContentVariant::Localized, "/").0
}

fn connect(server: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

#[test]
fn streamed_batch_bytes_equal_buffered_oracle() {
    common::for_each_core(streamed_batch_equals_buffered);
}

fn streamed_batch_equals_buffered(core: ServeCore) {
    let server = spawn(ServeConfig {
        core,
        batch_threads: 3,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut stream = connect(&server);
    let mut scratch = Vec::new();

    // Batch shapes the issue calls out: empty, single, and a few sizes
    // whose elements complete out of order on a multi-worker pool.
    for (round, size) in [0usize, 1, 2, 7, 16].into_iter().enumerate() {
        let pages: Vec<String> = (0..size as u32)
            .map(|i| corpus_page(round as u32 * 100 + i))
            .collect();
        let expected = batch_buffered(server.state(), &pages);
        let payload = serde_json::to_string(&pages).expect("payload");
        let (status, body) =
            post(&mut stream, "/v1/batch", payload.as_bytes(), &mut scratch).expect("batch");
        assert_eq!(status, 200, "batch of {size}");
        assert_eq!(
            body, expected,
            "batch of {size}: de-chunked stream drifted from the buffered oracle"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests.batch, 5);
    assert_eq!(stats.requests.batch_pages, 26);
    assert_eq!(stats.requests.errors, 0);
}

#[test]
fn batch_response_is_actually_chunked() {
    common::for_each_core(batch_framing_is_chunked);
}

fn batch_framing_is_chunked(core: ServeCore) {
    // Raw socket check that the framing really is chunked encoding (the
    // loadgen client would transparently de-chunk either framing).
    let server = spawn(ServeConfig {
        core,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut stream = connect(&server);
    let payload = serde_json::to_string(&vec![corpus_page(0)]).expect("payload");
    let head = format!(
        "POST /v1/batch HTTP/1.1\r\nHost: raw\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(payload.as_bytes()).expect("payload");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text:.120}");
    assert!(text.contains("Transfer-Encoding: chunked\r\n"));
    assert!(!text.contains("Content-Length"), "chunked excludes length");
    assert!(text.ends_with("0\r\n\r\n"), "terminating chunk missing");
    server.shutdown();
}

#[test]
fn large_batch_streams_through_a_bounded_buffer() {
    common::for_each_core(large_batch_bounded_buffer);
}

fn large_batch_bounded_buffer(core: ServeCore) {
    // A batch whose full response is far larger than the reorder window
    // can ever hold: the peak_batch_buffer gauge proves the response was
    // never materialized in one buffer.
    let server = spawn(ServeConfig {
        core,
        batch_threads: 4,
        batch_window: 4,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let pages: Vec<String> = (0..48).map(corpus_page).collect();
    let expected = batch_buffered(server.state(), &pages);
    let payload = serde_json::to_string(&pages).expect("payload");

    let mut stream = connect(&server);
    let mut scratch = Vec::new();
    let (status, body) =
        post(&mut stream, "/v1/batch", payload.as_bytes(), &mut scratch).expect("batch");
    assert_eq!(status, 200);
    assert_eq!(body, expected);

    // The gauge is visible over HTTP and bounded well below the full
    // response: with window 4, at most 4 elements are ever parked.
    let (status, stats_body) = get(&mut stream, "/v1/stats", &mut scratch).expect("stats");
    assert_eq!(status, 200);
    let stats: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&stats_body).unwrap()).expect("stats json");
    let peak = match stats.get("peak_batch_buffer") {
        Some(serde_json::Value::UInt(peak)) => *peak as usize,
        other => panic!("peak_batch_buffer missing or non-uint: {other:?}"),
    };
    assert!(peak > 0, "the reorder buffer must have been used");
    let largest = pages
        .iter()
        .map(|p| server.state().service.audit_json(p).len())
        .max()
        .unwrap();
    assert!(
        peak <= 4 * largest,
        "peak {peak} exceeds the window bound {}",
        4 * largest
    );
    assert!(
        peak < expected.len() / 2,
        "peak {peak} is not small vs the {}-byte response — did the batch buffer?",
        expected.len()
    );
    server.shutdown();
}
