//! Property tests for the incremental HTTP request parser.
//!
//! The core invariant: the parse result is a pure function of the byte
//! stream, independent of how TCP tears it into read chunks — start-lines,
//! CRLFs and bodies may be split at any offset, including inside the
//! `\r\n\r\n` terminator.

use langcrux_serve::http::{Limits, ParseError, Request, RequestParser};
use proptest::prelude::*;

mod common;

/// Parse a full byte stream in one feed.
fn parse_one_shot(bytes: &[u8], limits: Limits) -> Result<Option<Request>, ParseError> {
    let mut parser = RequestParser::new(limits);
    parser.feed(bytes);
    parser.poll()
}

/// Parse the same stream fed in chunks split at `cuts` (offsets into the
/// stream, in any order, possibly duplicated).
fn parse_chunked(
    bytes: &[u8],
    cuts: &[usize],
    limits: Limits,
) -> Result<Option<Request>, ParseError> {
    let mut offsets: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    offsets.push(0);
    offsets.push(bytes.len());
    offsets.sort_unstable();
    offsets.dedup();
    let mut parser = RequestParser::new(limits);
    let mut last = Ok(None);
    for window in offsets.windows(2) {
        parser.feed(&bytes[window[0]..window[1]]);
        last = parser.poll();
        if !matches!(last, Ok(None)) {
            return last;
        }
    }
    last
}

/// Assemble a syntactically valid request from generated parts.
fn build_request(path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut raw = format!("POST {path} HTTP/1.1\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    /// Arbitrary chunking never changes the parse of a valid request.
    #[test]
    fn chunking_is_invisible(
        path in "/[a-z0-9/]{0,12}",
        names in prop::collection::vec("[A-Za-z][A-Za-z0-9-]{0,10}", 0..5),
        values in prop::collection::vec("[ -~]{0,24}", 0..5),
        body in prop::collection::vec(any::<u8>(), 0..300),
        cuts in prop::collection::vec(0usize..2048, 0..12),
    ) {
        let mut seen = std::collections::HashSet::new();
        let headers: Vec<(String, String)> = names
            .iter()
            .zip(values.iter())
            // `:` inside a generated value would truncate the value at
            // parse time but not change validity; keep values colon-free
            // so the equality assertion below can compare verbatim.
            .map(|(n, v)| (n.clone(), v.replace(':', ";").trim().to_string()))
            .filter(|(n, _)| !n.eq_ignore_ascii_case("content-length")
                && !n.eq_ignore_ascii_case("transfer-encoding")
                // header() returns the first match: keep names unique so
                // the per-header assertion below is well-defined.
                && seen.insert(n.to_ascii_lowercase()))
            .collect();
        let raw = build_request(&path, &headers, &body);

        let one_shot = parse_one_shot(&raw, Limits::default());
        let chunked = parse_chunked(&raw, &cuts, Limits::default());
        prop_assert_eq!(&one_shot, &chunked);

        let request = one_shot.unwrap().expect("complete request must parse");
        prop_assert_eq!(request.method.as_str(), "POST");
        prop_assert_eq!(request.path.as_str(), path.as_str());
        prop_assert_eq!(&request.body, &body);
        for (name, value) in &headers {
            prop_assert_eq!(
                request.header(&name.to_ascii_lowercase()),
                Some(value.as_str())
            );
        }
    }

    /// Byte-at-a-time feeding (every CRLF torn) parses identically.
    #[test]
    fn torn_crlfs_parse_identically(
        body in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let raw = build_request("/v1/audit", &[("Host".to_string(), "x".to_string())], &body);
        let one_shot = parse_one_shot(&raw, Limits::default()).unwrap().unwrap();

        let mut parser = RequestParser::new(Limits::default());
        let mut trickled = None;
        for byte in &raw {
            parser.feed(std::slice::from_ref(byte));
            if let Some(request) = parser.poll().unwrap() {
                trickled = Some(request);
            }
        }
        prop_assert_eq!(trickled.expect("parsed by final byte"), one_shot);
    }

    /// Any declared Content-Length beyond the limit fails with 413 — at
    /// header-parse time, regardless of how much body ever arrives and of
    /// chunking.
    #[test]
    fn oversized_bodies_are_413(
        over in 1usize..10_000,
        cuts in prop::collection::vec(0usize..256, 0..6),
    ) {
        let limits = Limits { max_body_bytes: 2048, ..Limits::default() };
        let declared = 2048 + over;
        let raw = format!("POST /v1/audit HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let err = parse_chunked(raw.as_bytes(), &cuts, limits).unwrap_err();
        prop_assert_eq!(&err, &ParseError::BodyTooLarge(declared));
        prop_assert_eq!(err.status(), 413);
    }

    /// Garbage start-lines fail with a 400-class error, never a panic,
    /// under any chunking.
    #[test]
    fn malformed_start_lines_are_400(
        junk in "[a-z ]{1,30}",
        cuts in prop::collection::vec(0usize..64, 0..4),
    ) {
        // Lower-case method (or stray spaces) is always malformed.
        let raw = format!("{junk} HTTP/1.1\r\n\r\n");
        let result = parse_chunked(raw.as_bytes(), &cuts, Limits::default());
        let err = result.unwrap_err();
        prop_assert_eq!(err.status(), 400);
    }

    /// Live-server tear replay across cores: the same torn audit stream
    /// (valid or invalid UTF-8 → 200 or 400) answered by the threaded
    /// oracle and the reactor produces byte-identical response streams.
    #[test]
    fn torn_audit_replay_is_identical_across_cores(
        body in prop::collection::vec(any::<u8>(), 0..200),
        cut in 0usize..1024,
    ) {
        let raw = build_request("/v1/audit", &[("Host".to_string(), "xc".to_string())], &body);
        let replies = common::replay_torn_across_cores(&raw, cut);
        prop_assert!(!replies[0].1.is_empty(), "no response on {}", replies[0].0.name());
        for (core, reply) in &replies[1..] {
            prop_assert_eq!(
                reply,
                &replies[0].1,
                "{} drifted from {}",
                core.name(),
                replies[0].0.name()
            );
        }
    }
}

#[test]
fn split_inside_every_terminator_position() {
    // Deterministic sweep: split the stream at every single offset and
    // confirm the two-chunk parse equals the one-shot parse. This pins
    // the "torn CRLF" regressions at the exact boundary offsets.
    let raw = build_request(
        "/v1/audit",
        &[("X-One".to_string(), "alpha".to_string())],
        b"<html lang=ja>body</html>",
    );
    let expected = parse_one_shot(&raw, Limits::default()).unwrap().unwrap();
    for cut in 0..=raw.len() {
        let mut parser = RequestParser::new(Limits::default());
        parser.feed(&raw[..cut]);
        let early = parser.poll().unwrap();
        parser.feed(&raw[cut..]);
        let request = match early {
            Some(request) => request,
            None => parser.poll().unwrap().expect("complete after second chunk"),
        };
        assert_eq!(request, expected, "cut at {cut}");
    }
}
