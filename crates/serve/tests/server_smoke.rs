//! Live-server integration tests: the CI smoke sequence (healthz → audit
//! → batch → stats → clean shutdown) plus the API's two load-bearing
//! guarantees — `POST /v1/audit` bytes are identical to the direct
//! library call, and `/v1/stats` counters agree with the cache.

use langcrux_serve::loadgen::{get, post};
use langcrux_serve::{spawn, AuditService, ServeConfig, ServeCore};

mod common;
use langcrux_webgen::{render, SitePlan};
use std::net::TcpStream;

/// A real corpus page — the same renderer the offline pipeline crawls.
fn corpus_page(idx: u32) -> String {
    use langcrux_lang::Country;
    use langcrux_net::ContentVariant;
    let plan = SitePlan::build(0xA11C, Country::Bangladesh, idx, Some(true));
    render(&plan, ContentVariant::Localized, "/").0
}

fn connect(server: &langcrux_serve::ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

#[test]
fn smoke_healthz_audit_batch_stats_shutdown() {
    common::for_each_core(smoke_sequence);
}

fn smoke_sequence(core: ServeCore) {
    let server = spawn(ServeConfig {
        core,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut stream = connect(&server);
    let mut scratch = Vec::new();

    // healthz: build-info document — status plus version / git SHA /
    // uptime / compiled feature flags (the satellite pin for PR 7).
    let (status, body) = get(&mut stream, "/v1/healthz", &mut scratch).expect("healthz");
    assert_eq!(status, 200);
    let health: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).expect("healthz json");
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(
        health.get("service").and_then(|v| v.as_str()),
        Some("langcrux-serve")
    );
    assert_eq!(
        health.get("version").and_then(|v| v.as_str()),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(health
        .get("git_sha")
        .and_then(|v| v.as_str())
        .is_some_and(|sha| !sha.is_empty()));
    assert!(matches!(
        health.get("uptime_seconds"),
        Some(serde_json::Value::UInt(_))
    ));
    let features = health
        .get("features")
        .and_then(|v| v.as_array())
        .expect("features array");
    assert!(features.iter().any(|f| f.as_str() == Some("span-tracing")));
    assert!(features
        .iter()
        .any(|f| f.as_str() == Some("metrics-registry")));

    // one audit
    let page = corpus_page(0);
    let (status, audit_body) =
        post(&mut stream, "/v1/audit", page.as_bytes(), &mut scratch).expect("audit");
    assert_eq!(status, 200);
    let audit: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&audit_body).unwrap()).expect("audit json");
    assert!(audit.get("audit").is_some());
    assert!(audit.get("kizuki").is_some());
    assert!(audit.get("speak_order").is_some());

    // one batch over the same keep-alive connection
    let batch_payload =
        serde_json::to_string(&vec![corpus_page(1), corpus_page(2)]).expect("payload");
    let (status, batch_body) = post(
        &mut stream,
        "/v1/batch",
        batch_payload.as_bytes(),
        &mut scratch,
    )
    .expect("batch");
    assert_eq!(status, 200);
    let batch: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&batch_body).unwrap()).expect("batch json");
    assert_eq!(batch.as_array().expect("array").len(), 2);

    // stats reflect the traffic
    let (status, stats_body) = get(&mut stream, "/v1/stats", &mut scratch).expect("stats");
    assert_eq!(status, 200);
    let stats: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&stats_body).unwrap()).expect("stats json");
    let requests = stats.get("requests").expect("requests");
    assert_eq!(requests.get("audit"), Some(&serde_json::Value::UInt(1)));
    assert_eq!(requests.get("batch"), Some(&serde_json::Value::UInt(1)));
    assert_eq!(
        requests.get("batch_pages"),
        Some(&serde_json::Value::UInt(2))
    );
    assert_eq!(requests.get("healthz"), Some(&serde_json::Value::UInt(1)));

    // Prometheus exposition over the wire: same counters, text format.
    let (status, metrics_body) = get(&mut stream, "/v1/metrics", &mut scratch).expect("metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics_body).expect("utf-8 exposition");
    assert!(metrics.contains("langcrux_serve_requests_total{endpoint=\"audit\"} 1"));
    assert!(metrics.contains("langcrux_serve_requests_total{endpoint=\"batch\"} 1"));
    assert!(metrics.contains("langcrux_serve_batch_pages_total 2"));
    assert!(metrics.contains("# TYPE langcrux_serve_cache_hits_total counter"));
    // Latency goes out as a native histogram with the mandatory +Inf
    // bucket closing the series at _count.
    assert!(metrics.contains("# TYPE langcrux_serve_request_latency_microseconds histogram"));
    assert!(metrics.contains("langcrux_serve_request_latency_microseconds_bucket{le=\"+Inf\"} 4"));

    // clean shutdown: every worker joined, final stats returned
    let finale = server.shutdown();
    assert_eq!(finale.requests.audit, 1);
    assert_eq!(finale.requests.errors, 0);
    assert_eq!(finale.latency.count, 5);
}

#[test]
fn audit_bytes_equal_direct_library_call() {
    common::for_each_core(audit_bytes_equal_direct);
}

fn audit_bytes_equal_direct(core: ServeCore) {
    // The acceptance criterion: POST /v1/audit returns byte-identical
    // JSON to the equivalent direct (Dataset-path) library call.
    let server = spawn(ServeConfig {
        core,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let service = AuditService::new();
    let mut stream = connect(&server);
    let mut scratch = Vec::new();

    for idx in 0..3 {
        let page = corpus_page(idx);
        let expected = service.audit_json(&page);
        let (status, served) =
            post(&mut stream, "/v1/audit", page.as_bytes(), &mut scratch).expect("audit");
        assert_eq!(status, 200);
        assert_eq!(
            served, expected,
            "page {idx}: served bytes must be byte-identical"
        );

        // And the cache-hit answer must be the very same bytes.
        let (_, cached) =
            post(&mut stream, "/v1/audit", page.as_bytes(), &mut scratch).expect("cache hit");
        assert_eq!(cached, expected, "page {idx}: cache-hit bytes drifted");
    }
    let stats = server.shutdown();
    assert_eq!(stats.cache.misses, 3);
    assert_eq!(stats.cache.hits, 3);
}

#[test]
fn stats_counters_match_cache_behaviour() {
    common::for_each_core(stats_counters_match_cache);
}

fn stats_counters_match_cache(core: ServeCore) {
    // Scripted traffic with a known hit/miss pattern; /v1/stats must
    // report exactly the cache's counters.
    let server = spawn(ServeConfig {
        core,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut stream = connect(&server);
    let mut scratch = Vec::new();

    let pages: Vec<String> = (10..14).map(corpus_page).collect();
    // First pass: 4 misses. Second + third pass: 8 hits.
    for _ in 0..3 {
        for page in &pages {
            let (status, _) =
                post(&mut stream, "/v1/audit", page.as_bytes(), &mut scratch).expect("audit");
            assert_eq!(status, 200);
        }
    }
    let (_, stats_body) = get(&mut stream, "/v1/stats", &mut scratch).expect("stats");
    let stats: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&stats_body).unwrap()).expect("stats json");
    let cache = stats.get("cache").expect("cache");
    assert_eq!(cache.get("misses"), Some(&serde_json::Value::UInt(4)));
    assert_eq!(cache.get("hits"), Some(&serde_json::Value::UInt(8)));
    assert_eq!(cache.get("entries"), Some(&serde_json::Value::UInt(4)));
    match cache.get("hit_rate") {
        Some(serde_json::Value::Float(rate)) => {
            assert!((rate - 8.0 / 12.0).abs() < 1e-9, "hit rate {rate}")
        }
        other => panic!("hit_rate missing or non-float: {other:?}"),
    }
    // In-process view agrees with the HTTP view.
    assert_eq!(server.state().cache.hits(), 8);
    assert_eq!(server.state().cache.misses(), 4);
    server.shutdown();
}

#[test]
fn protocol_errors_answer_and_close() {
    common::for_each_core(protocol_errors_respond_then_close);
}

fn protocol_errors_respond_then_close(core: ServeCore) {
    use std::io::{Read, Write};
    let server = spawn(ServeConfig {
        core,
        limits: langcrux_serve::Limits {
            max_body_bytes: 1024,
            ..Default::default()
        },
        ..ServeConfig::default()
    })
    .expect("spawn");

    // Oversized declared body → 413.
    let mut stream = connect(&server);
    stream
        .write_all(b"POST /v1/audit HTTP/1.1\r\nContent-Length: 4096\r\n\r\n")
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 413 "), "{response}");
    assert!(response.contains("Connection: close"));

    // Malformed start-line → 400.
    let mut stream = connect(&server);
    stream.write_all(b"NOT-HTTP\r\n\r\n").expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

    // Unknown endpoint → 404, connection stays usable.
    let mut stream = connect(&server);
    let mut scratch = Vec::new();
    let (status, _) = get(&mut stream, "/v2/nope", &mut scratch).expect("404");
    assert_eq!(status, 404);
    let (status, _) = get(&mut stream, "/v1/healthz", &mut scratch).expect("healthz after 404");
    assert_eq!(status, 200);

    let stats = server.shutdown();
    assert!(
        stats.requests.errors >= 3,
        "errors {}",
        stats.requests.errors
    );
}
