//! Protocol torture suite: hostile (and hostile-looking) clients
//! against a live server, each pinning one hardening guarantee:
//!
//! * **slowloris** — byte-at-a-time headers trip the request deadline
//!   (408 + close), they do not pin a connection thread.
//! * **sustained pipelining** — the deadline's false-positive guard: a
//!   fast valid client whose stream always ends mid-request must never
//!   be mistaken for a slowloris (the timer is per-request, not
//!   per-first-partial).
//! * **cap storm** — `max_connections` holders + N more clients: exactly
//!   N are shed with `503 + Retry-After`, and a freed slot readmits.
//! * **chunk tears** — pipelined chunked requests torn at every chunk
//!   boundary parse and answer identically to the untorn stream.
//! * **graceful drain** — shutdown under load: the in-flight (streamed
//!   batch) response completes byte-perfect, new connections are
//!   refused.
//! * **stalled batch reader** — a client that requests a huge streamed
//!   batch and never reads a byte is failed at the OS write deadline;
//!   it cannot pin the server (in the reactor: the event loop itself,
//!   which runs batches blocking) and a concurrent `/v1/audit` still
//!   answers promptly and byte-exact.
//!
//! Every scenario runs against both serve cores (`common::for_each_core`):
//! the thread-per-connection oracle and the epoll reactor must satisfy
//! identical guarantees.

use langcrux_serve::loadgen::{get, post, read_response};
use langcrux_serve::{spawn, ServeConfig, ServeCore, ServerHandle};

mod common;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn connect(server: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Collect everything the server sends until EOF (or a reset — a shed
/// client that races the server's close may see ECONNRESET after the
/// response bytes have already arrived).
fn read_to_end_string(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut buf = [0u8; 2048];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

const PAGE: &str = "<html lang=hi><head><title>समाचार</title></head><body>\
    <p>आज की मुख्य ख़बरें और विश्लेषण यहाँ पढ़ें।</p>\
    <img src=a alt=\"market photo\"></body></html>";

#[test]
fn slowloris_headers_hit_the_deadline_not_a_hang() {
    common::for_each_core(slowloris_headers_hit_the_deadline);
}

fn slowloris_headers_hit_the_deadline(core: ServeCore) {
    let server = spawn(ServeConfig {
        core,
        request_deadline: Duration::from_millis(300),
        // Idle timeout far beyond the deadline: if the connection dies
        // within ~the deadline it was the slowloris bound, not idleness.
        idle_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    })
    .expect("spawn");

    let mut stream = connect(&server);
    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\n")
        .expect("start line");
    let started = Instant::now();
    // Dribble header bytes fast enough that the connection is never
    // idle, but never finish the head.
    let filler = b"X-Slowloris: aaaaaaaa\r\n";
    let mut response = Vec::new();
    'dribble: for _ in 0..400 {
        for &b in filler {
            if stream.write_all(&[b]).is_err() {
                break 'dribble; // server already closed on us
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Poll for an early answer without blocking forever.
        stream
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("read timeout");
        let mut buf = [0u8; 1024];
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                response.extend_from_slice(&buf[..n]);
                break;
            }
            Err(_) => {}
        }
    }
    // Collect whatever remains until the server closes the socket.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut buf = [0u8; 1024];
    while let Ok(n) = stream.read(&mut buf) {
        if n == 0 {
            break;
        }
        response.extend_from_slice(&buf[..n]);
    }
    let elapsed = started.elapsed();
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "expected 408, got: {text:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline did not bound the slowloris: {elapsed:?}"
    );
    let stats = server.shutdown();
    assert_eq!(stats.requests.timeouts, 1);
    assert_eq!(stats.requests.healthz, 0, "the request never completed");
}

#[test]
fn sustained_pipelining_is_not_mistaken_for_slowloris() {
    common::for_each_core(sustained_pipelining_is_not_cut_off);
}

fn sustained_pipelining_is_not_cut_off(core: ServeCore) {
    // A fast, valid client that pipelines nonstop keeps the parser
    // mid-request almost permanently (reads tear at arbitrary offsets).
    // The request deadline must bound a *single* request's parse — it
    // resets on every completed request — so sustained pipelining far
    // past the deadline must never be answered 408.
    let server = spawn(ServeConfig {
        core,
        request_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .expect("spawn");
    let mut stream = connect(&server);
    let mut scratch = Vec::new();

    let raw = b"GET /v1/healthz HTTP/1.1\r\nHost: p\r\n\r\n";
    // Keep a 10-byte partial of the next request pending at ALL times:
    // the first write ends 10 bytes into request 1, every later write
    // completes the pending request and starts the next one's first 10
    // bytes. The server's parser is therefore never empty for the whole
    // run — the exact state a naive from-first-partial deadline would
    // misread as a slowloris.
    const PARTIAL: usize = 10;
    let mut sent = raw.len() + PARTIAL;
    let first: Vec<u8> = (0..sent).map(|i| raw[i % raw.len()]).collect();
    stream.write_all(&first).expect("first pipelined write");
    let mut acked = 0usize;
    let t_end = Instant::now() + Duration::from_millis(800);
    while Instant::now() < t_end {
        let chunk: Vec<u8> = (sent..sent + raw.len())
            .map(|i| raw[i % raw.len()])
            .collect();
        stream.write_all(&chunk).expect("pipelined write");
        sent += raw.len();
        let (status, _) = read_response(&mut stream, &mut scratch).expect("pipelined read");
        assert_eq!(status, 200, "pipelining was cut off after {acked} requests");
        acked += 1;
    }
    // Collect the last completed request still in flight.
    let (status, _) = read_response(&mut stream, &mut scratch).expect("final read");
    assert_eq!(status, 200);
    acked += 1;
    assert!(acked > 0);
    let stats = server.shutdown();
    assert_eq!(
        stats.requests.timeouts, 0,
        "sustained pipelining tripped the slowloris deadline"
    );
    assert_eq!(stats.requests.healthz, acked as u64);
}

#[test]
fn connection_cap_storm_sheds_exactly_the_overflow() {
    common::for_each_core(connection_cap_storm_sheds_overflow);
}

fn connection_cap_storm_sheds_overflow(core: ServeCore) {
    const CAP: usize = 2;
    const OVERFLOW: usize = 3;
    let server = spawn(ServeConfig {
        core,
        max_connections: CAP,
        accept_queue: 0,
        ..ServeConfig::default()
    })
    .expect("spawn");

    // Fill every slot with a live keep-alive connection (the completed
    // round-trip proves each holder's thread is serving, not queued).
    let mut holders: Vec<TcpStream> = (0..CAP).map(|_| connect(&server)).collect();
    let mut scratch = Vec::new();
    for holder in &mut holders {
        let (status, _) = get(holder, "/v1/healthz", &mut scratch).expect("holder healthz");
        assert_eq!(status, 200);
    }

    // The storm: every extra client must be shed with 503 + Retry-After
    // and a closed connection.
    for i in 0..OVERFLOW {
        let mut client = connect(&server);
        client
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: storm\r\n\r\n")
            .expect("storm write");
        let text = read_to_end_string(&mut client);
        assert!(
            text.starts_with("HTTP/1.1 503 "),
            "storm client {i}: expected 503, got {text:?}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "storm client {i}");
        assert!(text.contains("Connection: close\r\n"), "storm client {i}");
    }
    assert_eq!(server.state().counters.snapshot().shed, OVERFLOW as u64);

    // Free one slot; the governor must readmit within the 50 ms
    // connection-loop poll.
    drop(holders.pop());
    let deadline = Instant::now() + Duration::from_secs(2);
    let recovered = loop {
        let mut client = connect(&server);
        client
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: retry\r\n\r\n")
            .expect("retry write");
        let text = read_to_end_string(&mut client);
        if text.starts_with("HTTP/1.1 200 ") {
            break true;
        }
        assert!(text.starts_with("HTTP/1.1 503 "), "unexpected: {text:?}");
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(recovered, "freed slot was never reused");

    let stats = server.shutdown();
    // Exactly the overflow (plus any 503s from the retry loop) was shed;
    // the holders and the recovered client were all served.
    assert!(stats.requests.shed >= OVERFLOW as u64);
    assert!(stats.requests.healthz > CAP as u64);
}

#[test]
fn pipelined_chunked_requests_torn_at_every_chunk_boundary() {
    common::for_each_core(chunked_requests_torn_at_every_boundary);
}

fn chunked_requests_torn_at_every_boundary(core: ServeCore) {
    // Two pipelined chunked audits over one connection. The stream is
    // torn in two at every chunk boundary (and the head/trailer seams);
    // every tear must produce the same two responses as the untorn
    // stream — and the same bytes as the Content-Length equivalents.
    let body_a = PAGE.as_bytes();
    let body_b = "<html lang=ta><body><p>தமிழ் செய்திகள் இன்று</p></body></html>".as_bytes();

    // Chunked request for `body`, split into `pieces` chunks, recording
    // the offsets of every framing boundary within the request bytes.
    fn chunked_request(
        body: &[u8],
        pieces: usize,
        boundaries: &mut Vec<usize>,
        base: usize,
    ) -> Vec<u8> {
        let mut raw =
            b"POST /v1/audit HTTP/1.1\r\nHost: tear\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        boundaries.push(base + raw.len());
        let step = body.len().div_ceil(pieces).max(1);
        for chunk in body.chunks(step) {
            raw.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            raw.extend_from_slice(chunk);
            raw.extend_from_slice(b"\r\n");
            boundaries.push(base + raw.len());
        }
        raw.extend_from_slice(b"0\r\nX-Trailer: ignored\r\n\r\n");
        boundaries.push(base + raw.len());
        raw
    }

    let server = spawn(ServeConfig {
        core,
        ..ServeConfig::default()
    })
    .expect("spawn");

    // Oracle: the same bodies as Content-Length requests.
    let mut scratch = Vec::new();
    let mut oracle_conn = connect(&server);
    let (status_a, oracle_a) = post(&mut oracle_conn, "/v1/audit", body_a, &mut scratch).unwrap();
    let (status_b, oracle_b) = post(&mut oracle_conn, "/v1/audit", body_b, &mut scratch).unwrap();
    assert_eq!((status_a, status_b), (200, 200));
    drop(oracle_conn);

    let mut boundaries = Vec::new();
    let mut raw = chunked_request(body_a, 7, &mut boundaries, 0);
    let second = chunked_request(body_b, 5, &mut boundaries, raw.len());
    raw.extend_from_slice(&second);
    boundaries.push(0);
    boundaries.sort_unstable();
    boundaries.dedup();

    for &cut in &boundaries {
        let mut stream = connect(&server);
        stream.write_all(&raw[..cut]).expect("first half");
        // A real TCP tear: give the server time to read a short segment.
        std::thread::sleep(Duration::from_millis(2));
        stream.write_all(&raw[cut..]).expect("second half");
        let (status, first) = read_response(&mut stream, &mut scratch).expect("first response");
        assert_eq!(status, 200, "cut at {cut}");
        assert_eq!(first, oracle_a, "cut at {cut}: first response drifted");
        let (status, second) = read_response(&mut stream, &mut scratch).expect("second response");
        assert_eq!(status, 200, "cut at {cut}");
        assert_eq!(second, oracle_b, "cut at {cut}: second response drifted");
    }
    server.shutdown();
}

#[test]
fn stalled_batch_reader_is_cut_at_the_write_deadline() {
    common::for_each_core(stalled_batch_reader_cannot_pin_the_server);
}

/// Set a socket's receive buffer (std-only `extern "C"`, matching the
/// reactor's epoll discipline). Shrinking it before the request matters:
/// the kernel's receive-buffer auto-tuning can otherwise absorb tens of
/// megabytes of response on loopback, and a "non-reading" client never
/// actually makes the server's writes block. Re-enlarging it before the
/// drain matters just as much: through a 16 KiB window the server's
/// already-queued send buffer trickles out at ~100 KB/s, slow enough to
/// look like an endless stream.
fn set_recv_buffer(stream: &TcpStream, size: i32) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    }
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&size as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

fn stalled_batch_reader_cannot_pin_the_server(core: ServeCore) {
    const WRITE_TIMEOUT: Duration = Duration::from_millis(400);
    let server = spawn(ServeConfig {
        core,
        write_timeout: WRITE_TIMEOUT,
        ..ServeConfig::default()
    })
    .expect("spawn");

    // A batch whose streamed response dwarfs the loopback socket buffers.
    // The pages are identical, so after the first audit every element is
    // a response-cache hit: generation is fast and the *write* path is
    // what stalls when the client never reads.
    let pages: Vec<String> = vec![PAGE.to_string(); 12_000];
    let payload = serde_json::to_string(&pages).expect("payload");
    let mut stalled = connect(&server);
    set_recv_buffer(&stalled, 16 * 1024);
    let request = format!(
        "POST /v1/batch HTTP/1.1\r\nHost: stall\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stalled
        .write_all(request.as_bytes())
        .expect("batch request");
    // Deliberately never read from `stalled`.

    // Let the server start streaming and fill both socket buffers.
    std::thread::sleep(Duration::from_millis(100));

    // A concurrent audit must answer within a couple of write deadlines
    // — in the reactor the batch runs blocking on the event loop, so
    // without the OS write deadline this request would hang forever.
    let oracle = langcrux_serve::AuditService::new().audit_json(PAGE);
    let started = Instant::now();
    let mut client = connect(&server);
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let mut scratch = Vec::new();
    let (status, body) =
        post(&mut client, "/v1/audit", PAGE.as_bytes(), &mut scratch).expect("concurrent audit");
    let elapsed = started.elapsed();
    assert_eq!(status, 200);
    assert_eq!(body, oracle, "audit bytes drifted behind a stalled batch");
    assert!(
        elapsed < Duration::from_secs(10),
        "stalled batch delayed a concurrent audit by {elapsed:?}"
    );

    // Let the deadline expire before touching the stalled socket: on the
    // threaded core the audit above returns in milliseconds, and draining
    // immediately would reopen the receive window while the server's
    // blocked write is still inside its 400 ms grace.
    std::thread::sleep(WRITE_TIMEOUT * 3);

    // The stalled connection itself was failed at the deadline: once we
    // finally drain it, the stream ends (EOF or reset) after only the
    // bytes that fit in the socket buffers — had the server still been
    // attached, reopening the window would resume the stream and deliver
    // the full multi-megabyte batch. Reopen the window wide first so the
    // kernel-buffered remainder arrives in seconds, not minutes.
    set_recv_buffer(&stalled, 8 * 1024 * 1024);
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let full_response = 12_000 * oracle.len();
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let mut drained = 0usize;
    let mut buf = [0u8; 65536];
    let closed = loop {
        match stalled.read(&mut buf) {
            Ok(0) | Err(_) => break true,
            Ok(n) => {
                drained += n;
                if Instant::now() > drain_deadline {
                    break false;
                }
            }
        }
    };
    assert!(
        closed,
        "server kept streaming to a client it should have cut \
         (drained {drained} of ~{full_response} bytes)"
    );
    assert!(
        drained < full_response / 2,
        "drained {drained} of ~{full_response} bytes: the write deadline never fired"
    );
    server.shutdown();
}

#[test]
fn graceful_drain_completes_in_flight_and_refuses_new() {
    common::for_each_core(graceful_drain_completes_in_flight);
}

fn graceful_drain_completes_in_flight(core: ServeCore) {
    let server = spawn(ServeConfig {
        core,
        batch_threads: 2,
        ..ServeConfig::default()
    })
    .expect("spawn");
    let addr = server.addr();

    // The in-flight load: a streamed batch big enough to still be
    // running when shutdown lands. The oracle is computed with a private
    // engine so the server's cache stays cold and the batch stays slow.
    let pages: Vec<String> = (0..40)
        .map(|i| PAGE.replace("विश्लेषण", &format!("विश्लेषण {i}")))
        .collect();
    let oracle = langcrux_serve::AuditService::new();
    let elements: Vec<String> = pages
        .iter()
        .map(|p| String::from_utf8(oracle.audit_json(p)).expect("utf8 json"))
        .collect();
    let expected = format!("[{}]", elements.join(",")).into_bytes();
    let payload = serde_json::to_string(&pages).expect("payload");

    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut scratch = Vec::new();
        post(&mut stream, "/v1/batch", payload.as_bytes(), &mut scratch)
    });

    // Let the batch get in flight, then drain.
    std::thread::sleep(Duration::from_millis(20));
    let stats = server.shutdown();

    let (status, body) = client
        .join()
        .expect("client thread")
        .expect("in-flight batch must complete through the drain");
    assert_eq!(status, 200);
    assert_eq!(body, expected, "drained batch bytes drifted from oracle");
    assert_eq!(stats.requests.batch, 1);
    assert_eq!(stats.requests.batch_pages, 40);

    // The front door is gone: new connections are refused.
    assert!(
        TcpStream::connect(addr).is_err(),
        "post-drain connect must be refused"
    );
}
