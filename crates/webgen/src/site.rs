//! Per-site planning.
//!
//! A [`SitePlan`] is everything that makes one synthetic website *itself*:
//! its hostname, archetype, CrUX-style rank, visible-language mix, per-kind
//! missing/empty rates (drawn from the Table 2 mixtures), its
//! label-language profile (drawn from the country's Figure 4/5 model), and
//! its uninformative-label behaviour (Figure 3). The plan is sampled once
//! from `(seed, country, index)` and then drives deterministic page
//! rendering in [`crate::page`].

use crate::calibration::{
    country_profile, element_calibration, element_category_multiplier, element_discard_scale,
    CountryProfile, MISMATCH_MIXED, MISMATCH_NATIVE,
};
use crate::sample::{triangular, weighted};
use langcrux_filter::DiscardCategory;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::{rng, Country, Language};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Site archetypes: coarse genres with different element profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    News,
    Government,
    Ecommerce,
    Blog,
    Education,
    Corporate,
    Portal,
    Forum,
}

impl Archetype {
    pub const ALL: [Archetype; 8] = [
        Archetype::News,
        Archetype::Government,
        Archetype::Ecommerce,
        Archetype::Blog,
        Archetype::Education,
        Archetype::Corporate,
        Archetype::Portal,
        Archetype::Forum,
    ];

    /// Multiplier on element counts per kind: news sites are image/link
    /// heavy, government sites form-heavy, e-commerce button/select heavy.
    pub fn count_factor(self, kind: ElementKind) -> f64 {
        use Archetype as A;
        use ElementKind as K;
        match (self, kind) {
            (A::News, K::ImageAlt) => 1.5,
            (A::News, K::LinkName) => 1.4,
            (A::Government, K::Label) => 2.0,
            (A::Government, K::SelectName) => 1.8,
            (A::Government, K::InputButtonName) => 1.5,
            (A::Ecommerce, K::ButtonName) => 1.6,
            (A::Ecommerce, K::SelectName) => 1.5,
            (A::Ecommerce, K::ImageAlt) => 1.3,
            (A::Blog, K::ImageAlt) => 1.2,
            (A::Blog, K::LinkName) => 0.8,
            (A::Education, K::Label) => 1.4,
            (A::Forum, K::LinkName) => 1.3,
            (A::Forum, K::ButtonName) => 1.2,
            (A::Portal, K::LinkName) => 1.6,
            (A::Corporate, K::SvgImgAlt) => 1.5,
            _ => 1.0,
        }
    }

    /// Hostname stem for this archetype.
    fn host_stem(self) -> &'static str {
        match self {
            Archetype::News => "sangbad",
            Archetype::Government => "seba",
            Archetype::Ecommerce => "bazar",
            Archetype::Blog => "kotha",
            Archetype::Education => "shiksha",
            Archetype::Corporate => "korpo",
            Archetype::Portal => "duar",
            Archetype::Forum => "mancha",
        }
    }
}

/// What the generator decided to plant into one accessibility slot.
#[derive(Debug, Clone, PartialEq)]
pub enum PlantedText {
    /// No accessibility text source at all.
    Missing,
    /// A source attribute present but whitespace-only.
    Empty,
    /// An uninformative label of the given category.
    Uninformative(DiscardCategory, String),
    /// An informative label in the given language bucket.
    Informative(LangBucket, String),
}

/// Language bucket of a planted informative label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LangBucket {
    Native,
    English,
    Mixed,
}

/// Which partial-localisation (translation-gap) scenarios a site ships.
///
/// All false by default; only [`SitePlan::build_gapped`] with gap
/// scenarios enabled ever sets one, so the default corpus renders
/// byte-identically with the flag off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapPlan {
    /// Navigation and footer chrome left in English around translated
    /// body copy.
    pub chrome: bool,
    /// A subtree tagged with the native language but shipped in English —
    /// `lang` metadata contradicted by content.
    pub attr_mismatch: bool,
    /// A *correctly* `lang="en"`-tagged English subtree: the control case
    /// that detection must NOT flag.
    pub control_tagged: bool,
    /// An unmarked English fallback block (`<aside>`) embedded in the
    /// non-Latin page.
    pub fallback: bool,
}

impl GapPlan {
    /// True when any scenario (including the non-gap control) is planted.
    pub fn any(self) -> bool {
        self.chrome || self.attr_mismatch || self.control_tagged || self.fallback
    }

    /// True when a scenario that detection should flag is planted.
    pub fn any_gap(self) -> bool {
        self.chrome || self.attr_mismatch || self.fallback
    }
}

/// Everything sampled once per site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SitePlan {
    pub host: String,
    pub country: Country,
    pub archetype: Archetype,
    /// CrUX-style global popularity rank (Figure 7).
    pub rank: u64,
    /// Derived seed for page rendering.
    pub seed: u64,
    /// Target share of visible text in the native language (localized
    /// variant). Qualifying sites sit in [0.55, 0.98]; disqualified ones
    /// below 0.5.
    pub visible_native_share: f64,
    /// Whether the site is *designed* to clear the paper's 50% threshold
    /// (ground truth for the selection pipeline).
    pub designed_qualifying: bool,
    /// Informative-label language weights `(native, english, mixed)`.
    pub lang_weights: (f64, f64, f64),
    /// Whether this site is a "mismatch" site (Figure 5's bottom-right
    /// cluster: native visible content, ~no native accessibility text).
    pub mismatch_site: bool,
    /// Per-kind `(missing, empty)` rates, indexed by `ElementKind::ALL`.
    pub element_rates: [(f64, f64); 12],
    /// Base total uninformative share for this site (before per-element
    /// scaling).
    pub uninformative_total: f64,
    /// Per-category discard distribution (conditional on uninformative),
    /// indexed by `DiscardCategory::ALL`.
    pub discard_dist: [f64; 11],
    /// Whether the site declares `<html lang=…>`.
    pub declares_lang: bool,
    /// Among declaring sites: the declaration is wrong (`lang="en"` on a
    /// native-language page) — §1's "absent, incorrect, or inconsistent"
    /// metadata.
    pub declared_lang_wrong: bool,
    /// Probability this site detects VPN ranges (most sites: 0).
    pub vpn_detecting: f64,
    /// Probability this site geo-blocks foreign vantages.
    pub geo_block: f64,
    /// Partial-localisation scenarios (all false unless the corpus enables
    /// gap scenarios).
    pub gaps: GapPlan,
}

impl SitePlan {
    /// Sample the plan for site `index` of `country`.
    ///
    /// `force_qualifying`: `None` samples the ~12% disqualification rate
    /// that exercises the paper's replacement rule; `Some(q)` pins it
    /// (tests).
    pub fn build(
        workspace_seed: u64,
        country: Country,
        index: u32,
        force_qualifying: Option<bool>,
    ) -> SitePlan {
        SitePlan::build_gapped(workspace_seed, country, index, force_qualifying, false)
    }

    /// [`Self::build`] plus translation-gap scenario sampling.
    ///
    /// Gap decisions come from their own RNG stream (`0x6A70`), never from
    /// the plan stream, so `build_gapped(.., true)` produces exactly the
    /// same plan as [`Self::build`] in every other field — enabling gaps
    /// cannot perturb the rest of the corpus.
    pub fn build_gapped(
        workspace_seed: u64,
        country: Country,
        index: u32,
        force_qualifying: Option<bool>,
        gap_scenarios: bool,
    ) -> SitePlan {
        let profile = country_profile(country);
        let mut r = rng::rng_for(workspace_seed, &[0x517E, country as u64, u64::from(index)]);

        let archetype = *weighted(
            &mut r,
            &[
                (0.22, Archetype::News),
                (0.12, Archetype::Government),
                (0.16, Archetype::Ecommerce),
                (0.12, Archetype::Blog),
                (0.10, Archetype::Education),
                (0.10, Archetype::Corporate),
                (0.10, Archetype::Portal),
                (0.08, Archetype::Forum),
            ],
        );

        let designed_qualifying = force_qualifying.unwrap_or_else(|| r.gen::<f64>() >= 0.12);
        let visible_native_share = if designed_qualifying {
            // Floor at 0.58: the measured character share of borderline
            // sites fluctuates a few points around the design target, and
            // the selection stage (like the paper's) rejects sites that
            // measure below 50% — the floor keeps that rejection rate to
            // the realistic few percent instead of dominating.
            triangular(&mut r, 0.58, profile.visible_peak.clamp(0.59, 0.97), 0.98)
        } else {
            // Popular-but-English-dominant local sites: below the paper's
            // 50% inclusion threshold.
            triangular(&mut r, 0.10, 0.30, 0.45)
        };

        let mismatch_site = r.gen::<f64>() < profile.mismatch_frac;
        let lang_weights = sample_lang_weights(&mut r, profile, mismatch_site);

        let mut element_rates = [(0.0, 0.0); 12];
        for (i, kind) in ElementKind::ALL.iter().enumerate() {
            let cal = element_calibration(*kind);
            let missing = cal.missing.sample(&mut r);
            let empty = cal.empty.sample(&mut r);
            element_rates[i] = (missing, empty.min(1.0 - missing));
        }

        // Per-site jitter around the country's discard behaviour.
        let jitter = 0.7 + r.gen::<f64>() * 0.6;
        let uninformative_total = (profile.total_discard() * jitter).min(0.85);
        let mut discard_dist = profile.discard_rates;
        let sum: f64 = discard_dist.iter().sum();
        if sum > 0.0 {
            for d in &mut discard_dist {
                *d /= sum;
            }
        }

        let rank = sample_rank(&mut r, profile);
        let host = host_name(country, archetype, index);
        let seed = rng::derive(workspace_seed, &[0x9A6E, rng::stream_id(&host)]);

        let gaps = if gap_scenarios {
            sample_gap_plan(workspace_seed, country, index)
        } else {
            GapPlan::default()
        };

        SitePlan {
            host,
            country,
            archetype,
            rank,
            seed,
            visible_native_share,
            designed_qualifying,
            lang_weights,
            mismatch_site,
            element_rates,
            uninformative_total,
            discard_dist,
            declares_lang: r.gen::<f64>() < 0.72,
            declared_lang_wrong: r.gen::<f64>() < 0.22,
            vpn_detecting: if r.gen::<f64>() < 0.04 { 0.8 } else { 0.0 },
            geo_block: if r.gen::<f64>() < 0.015 { 1.0 } else { 0.0 },
            gaps,
        }
    }

    /// The native language of this site's country.
    pub fn native_language(&self) -> Language {
        self.country.target_language()
    }

    /// `(missing, empty)` rates for a kind.
    pub fn rates(&self, kind: ElementKind) -> (f64, f64) {
        let idx = ElementKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL");
        self.element_rates[idx]
    }

    /// The per-element uninformative share and category distribution
    /// (country base × Figure 9 element modulation, renormalised).
    pub fn discard_profile(&self, kind: ElementKind) -> (f64, [f64; 11]) {
        let total = (self.uninformative_total * element_discard_scale(kind)).min(0.92);
        let mut dist = self.discard_dist;
        for (i, cat) in DiscardCategory::ALL.iter().enumerate() {
            dist[i] *= element_category_multiplier(kind, *cat);
        }
        let sum: f64 = dist.iter().sum();
        if sum > 0.0 {
            for d in &mut dist {
                *d /= sum;
            }
        }
        (total, dist)
    }

    /// Sample the language bucket for one informative label.
    pub fn sample_bucket(&self, r: &mut StdRng) -> LangBucket {
        let (native, english, mixed) = self.lang_weights;
        *weighted(
            r,
            &[
                (native, LangBucket::Native),
                (english, LangBucket::English),
                (mixed, LangBucket::Mixed),
            ],
        )
    }
}

fn sample_lang_weights(
    r: &mut StdRng,
    profile: &CountryProfile,
    mismatch_site: bool,
) -> (f64, f64, f64) {
    if mismatch_site {
        let native = MISMATCH_NATIVE * (0.5 + r.gen::<f64>());
        let mixed = MISMATCH_MIXED * (0.5 + r.gen::<f64>());
        return (native, 1.0 - native - mixed, mixed);
    }
    let (native, english, mixed) = profile.conditional_lang_weights();
    // Per-site Dirichlet-ish jitter: scale each weight by U[0.6, 1.4] and
    // renormalise. Keeps country aggregates at the target while giving the
    // Figure 8 scatter its vertical spread.
    let jn = native * (0.6 + r.gen::<f64>() * 0.8);
    let je = english * (0.6 + r.gen::<f64>() * 0.8);
    let jm = mixed * (0.6 + r.gen::<f64>() * 0.8);
    let sum = jn + je + jm;
    (jn / sum, je / sum, jm / sum)
}

/// Sample which gap scenarios a site ships, from the dedicated `0x6A70`
/// stream. Roughly a third of sites are partially localised; a selected
/// gap site always plants at least one detectable scenario.
fn sample_gap_plan(workspace_seed: u64, country: Country, index: u32) -> GapPlan {
    let mut r = rng::rng_for(workspace_seed, &[0x6A70, country as u64, u64::from(index)]);
    if r.gen::<f64>() >= 0.35 {
        return GapPlan::default();
    }
    let mut gaps = GapPlan {
        chrome: r.gen::<f64>() < 0.60,
        attr_mismatch: r.gen::<f64>() < 0.45,
        control_tagged: r.gen::<f64>() < 0.35,
        fallback: r.gen::<f64>() < 0.40,
    };
    if !gaps.any_gap() {
        gaps.chrome = true;
    }
    gaps
}

fn sample_rank(r: &mut StdRng, profile: &CountryProfile) -> u64 {
    let (min, peak, max) = profile.rank_range;
    let (lmin, lpeak, lmax) = (
        (min as f64).log10(),
        (peak as f64).log10(),
        (max as f64).log10(),
    );
    let sample = triangular(r, lmin, lpeak, lmax);
    10f64.powf(sample).round() as u64
}

fn host_name(country: Country, archetype: Archetype, index: u32) -> String {
    format!("{}-{}.{}", archetype.host_stem(), index, country.tld())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let a = SitePlan::build(42, Country::Thailand, 7, None);
        let b = SitePlan::build(42, Country::Thailand, 7, None);
        assert_eq!(a.host, b.host);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.visible_native_share, b.visible_native_share);
        assert_eq!(a.element_rates, b.element_rates);
    }

    #[test]
    fn different_sites_differ() {
        let a = SitePlan::build(42, Country::Thailand, 7, None);
        let b = SitePlan::build(42, Country::Thailand, 8, None);
        assert_ne!(a.host, b.host);
        assert_ne!(a.visible_native_share, b.visible_native_share);
    }

    #[test]
    fn qualifying_share_above_half() {
        for i in 0..200 {
            let p = SitePlan::build(1, Country::Japan, i, Some(true));
            assert!(p.visible_native_share >= 0.58);
            assert!(p.designed_qualifying);
        }
    }

    #[test]
    fn disqualified_share_below_half() {
        for i in 0..50 {
            let p = SitePlan::build(1, Country::Japan, i, Some(false));
            assert!(p.visible_native_share < 0.5, "{}", p.visible_native_share);
        }
    }

    #[test]
    fn natural_disqualification_rate() {
        let n = 2000;
        let fails = (0..n)
            .filter(|&i| !SitePlan::build(3, Country::India, i, None).designed_qualifying)
            .count();
        let rate = fails as f64 / n as f64;
        assert!((0.08..0.16).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn mismatch_rate_tracks_country() {
        let rate = |c: Country| {
            let n = 1500;
            (0..n)
                .filter(|&i| SitePlan::build(5, c, i, Some(true)).mismatch_site)
                .count() as f64
                / n as f64
        };
        let bd = rate(Country::Bangladesh);
        let jp = rate(Country::Japan);
        assert!(bd > 0.38 && bd < 0.52, "bd = {bd}");
        assert!(jp < 0.12, "jp = {jp}");
    }

    #[test]
    fn mismatch_sites_have_little_native() {
        for i in 0..300 {
            let p = SitePlan::build(9, Country::Bangladesh, i, Some(true));
            if p.mismatch_site {
                assert!(
                    p.lang_weights.0 < 0.05,
                    "native weight {}",
                    p.lang_weights.0
                );
            }
        }
    }

    #[test]
    fn gap_sampling_never_perturbs_the_plan() {
        for i in 0..200 {
            let off = SitePlan::build(42, Country::Bangladesh, i, None);
            let on = SitePlan::build_gapped(42, Country::Bangladesh, i, None, true);
            assert_eq!(off.gaps, GapPlan::default());
            // Every non-gap field identical: enabling scenarios only adds.
            assert_eq!(off.host, on.host);
            assert_eq!(off.rank, on.rank);
            assert_eq!(off.seed, on.seed);
            assert_eq!(off.visible_native_share, on.visible_native_share);
            assert_eq!(off.lang_weights, on.lang_weights);
            assert_eq!(off.element_rates, on.element_rates);
            assert_eq!(off.declares_lang, on.declares_lang);
            assert_eq!(off.declared_lang_wrong, on.declared_lang_wrong);
        }
    }

    #[test]
    fn gap_sites_are_a_deterministic_minority_with_a_scenario() {
        let n = 1000;
        let plans: Vec<GapPlan> = (0..n)
            .map(|i| SitePlan::build_gapped(42, Country::Thailand, i, None, true).gaps)
            .collect();
        let again: Vec<GapPlan> = (0..n)
            .map(|i| SitePlan::build_gapped(42, Country::Thailand, i, None, true).gaps)
            .collect();
        assert_eq!(plans, again);
        let gapped = plans.iter().filter(|g| g.any()).count();
        let rate = gapped as f64 / n as f64;
        assert!((0.28..0.42).contains(&rate), "gap-site rate = {rate}");
        // Every selected gap site plants at least one *detectable* gap.
        for g in plans.iter().filter(|g| g.any()) {
            assert!(g.any_gap());
        }
        // All four scenarios occur somewhere.
        assert!(plans.iter().any(|g| g.chrome));
        assert!(plans.iter().any(|g| g.attr_mismatch));
        assert!(plans.iter().any(|g| g.control_tagged));
        assert!(plans.iter().any(|g| g.fallback));
    }

    #[test]
    fn rates_within_unit_interval_and_consistent() {
        let p = SitePlan::build(2, Country::Russia, 0, None);
        for kind in ElementKind::ALL {
            let (missing, empty) = p.rates(kind);
            assert!((0.0..=1.0).contains(&missing));
            assert!((0.0..=1.0).contains(&empty));
            assert!(missing + empty <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn discard_profile_normalised() {
        let p = SitePlan::build(2, Country::Greece, 3, None);
        for kind in ElementKind::ALL {
            let (total, dist) = p.discard_profile(kind);
            assert!((0.0..=0.92).contains(&total));
            let sum: f64 = dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{kind:?} sum {sum}");
        }
    }

    #[test]
    fn summary_discards_more_than_images() {
        let p = SitePlan::build(2, Country::Greece, 3, None);
        let (summary, _) = p.discard_profile(ElementKind::SummaryName);
        let (image, _) = p.discard_profile(ElementKind::ImageAlt);
        assert!(summary > image);
    }

    #[test]
    fn ranks_span_the_country_range() {
        let ranks: Vec<u64> = (0..500)
            .map(|i| SitePlan::build(7, Country::India, i, None).rank)
            .collect();
        let min = *ranks.iter().min().unwrap();
        let max = *ranks.iter().max().unwrap();
        assert!(min < 20_000, "min = {min}");
        assert!(max > 200_000, "India tail missing: max = {max}");
        // Non-India countries stay under their cap.
        let jp_max = (0..500)
            .map(|i| SitePlan::build(7, Country::Japan, i, None).rank)
            .max()
            .unwrap();
        assert!(jp_max <= 100_000, "jp max = {jp_max}");
    }

    #[test]
    fn hostnames_unique_per_country() {
        let mut hosts: Vec<String> = (0..100)
            .map(|i| SitePlan::build(1, Country::Egypt, i, None).host)
            .collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), 100);
        assert!(hosts[0].ends_with(".eg"));
    }
}
