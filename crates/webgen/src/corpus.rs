//! Corpus assembly: plans + simulated internet.
//!
//! [`Corpus::build`] stands in for "the web as seen from CrUX": for every
//! study country it creates an over-provisioned, rank-ordered candidate
//! list (the paper extends its search to lower-ranked sites when top sites
//! fail the language threshold) and registers each site's renderer with the
//! simulated [`Internet`]. The selection pipeline in `langcrux-core` then
//! walks candidates in rank order exactly as §2 describes: fetch through
//! the country VPN, verify the 50% native-visible-text rule, replace
//! failures with the next candidate.

use crate::calibration::rank_quantile;
use crate::page::{render, PageTruth};
use crate::site::SitePlan;
use langcrux_lang::{rng, Country};
use langcrux_net::{ContentServer, ContentVariant, FaultPlan, Internet};
use std::collections::HashMap;

/// Corpus construction parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Workspace seed: same seed ⇒ byte-identical corpus.
    pub seed: u64,
    /// Target number of *qualifying* sites per country (the paper: 10,000;
    /// the default harness: 1,500 for tractable runtimes).
    pub sites_per_country: usize,
    /// Countries to generate.
    pub countries: Vec<Country>,
    /// Fault behaviour of the simulated network.
    pub fault_plan: FaultPlan,
    /// Candidate overprovisioning factor (>1): extra lower-ranked sites
    /// available as replacements for threshold/fetch failures.
    pub overprovision: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: rng::DEFAULT_SEED,
            sites_per_country: 1_500,
            countries: Country::STUDY.to_vec(),
            fault_plan: FaultPlan::default(),
            overprovision: 1.5,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for unit/integration tests.
    pub fn small(seed: u64, sites_per_country: usize) -> Self {
        CorpusConfig {
            seed,
            sites_per_country,
            fault_plan: FaultPlan::RELIABLE,
            ..CorpusConfig::default()
        }
    }

    fn candidates_per_country(&self) -> usize {
        ((self.sites_per_country as f64) * self.overprovision).ceil() as usize
    }
}

/// The generated corpus: rank-ordered candidates per country plus the
/// simulated internet that serves them.
pub struct Corpus {
    config: CorpusConfig,
    internet: Internet,
    candidates: HashMap<Country, Vec<SitePlan>>,
}

/// A [`ContentServer`] rendering one site's pages on demand.
struct SiteServer {
    plan: SitePlan,
}

impl ContentServer for SiteServer {
    fn serve(&self, variant: ContentVariant, path: &str) -> String {
        render(&self.plan, variant, path).0
    }
}

impl Corpus {
    /// Build the corpus. Cost is O(total sites) for planning; page bodies
    /// render lazily on fetch.
    pub fn build(config: CorpusConfig) -> Corpus {
        let mut internet = Internet::new(config.seed, config.fault_plan);
        let mut candidates: HashMap<Country, Vec<SitePlan>> = HashMap::new();
        let n = config.candidates_per_country();
        // The paper walks CrUX ranks downward until the quota of
        // *qualifying* sites is filled; the Figure 7 rank distribution is
        // therefore a property of the selected population. Candidate ranks
        // are assigned as order statistics of the country's rank model over
        // the expected selection depth (quota inflated by the ~12%
        // disqualification rate), so the walk's output reproduces the
        // calibrated distribution; overprovisioned spares extend past the
        // model's maximum.
        let expected_depth = (config.sites_per_country as f64 / 0.86).ceil();
        for &country in &config.countries {
            let mut plans = Vec::with_capacity(n);
            for index in 0..n as u32 {
                let mut plan = SitePlan::build(config.seed, country, index, None);
                let u = (f64::from(index) + 0.5) / expected_depth;
                plan.rank = if u <= 1.0 {
                    rank_quantile(country, u)
                } else {
                    // Spares live beyond the modelled range.
                    (rank_quantile(country, 1.0) as f64 * u).round() as u64
                };
                internet.register(
                    &plan.host,
                    country,
                    plan.vpn_detecting,
                    plan.geo_block,
                    Box::new(SiteServer { plan: plan.clone() }),
                );
                plans.push(plan);
            }
            // CrUX presents sites by rank: best (lowest) rank first.
            plans.sort_by_key(|p| (p.rank, p.host.clone()));
            candidates.insert(country, plans);
        }
        Corpus {
            config,
            internet,
            candidates,
        }
    }

    /// The simulated internet serving this corpus.
    pub fn internet(&self) -> &Internet {
        &self.internet
    }

    /// The build configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Rank-ordered candidate plans for a country.
    pub fn candidates(&self, country: Country) -> &[SitePlan] {
        self.candidates
            .get(&country)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Countries present in the corpus.
    pub fn countries(&self) -> impl Iterator<Item = Country> + '_ {
        self.config.countries.iter().copied()
    }

    /// Ground truth of what a given plan plants for a variant (renders the
    /// page and discards the HTML).
    pub fn truth_for(plan: &SitePlan, variant: ContentVariant) -> PageTruth {
        render(plan, variant, "/").1
    }

    /// Total candidate count across all countries.
    pub fn total_candidates(&self) -> usize {
        self.candidates.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_net::{vpn_vantage, Request, Url};

    fn small() -> Corpus {
        Corpus::build(CorpusConfig::small(77, 30))
    }

    #[test]
    fn builds_overprovisioned_rank_ordered_lists() {
        let corpus = small();
        for country in Country::STUDY {
            let c = corpus.candidates(country);
            assert_eq!(c.len(), 45, "{country:?}"); // ceil(30 * 1.5)
            for w in c.windows(2) {
                assert!(w[0].rank <= w[1].rank);
            }
        }
        assert_eq!(corpus.total_candidates(), 45 * 12);
        assert_eq!(corpus.internet().host_count(), 45 * 12);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        for country in Country::STUDY {
            let ha: Vec<&str> = a
                .candidates(country)
                .iter()
                .map(|p| p.host.as_str())
                .collect();
            let hb: Vec<&str> = b
                .candidates(country)
                .iter()
                .map(|p| p.host.as_str())
                .collect();
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn sites_are_fetchable_through_vpn() {
        let corpus = small();
        let plan = &corpus.candidates(Country::Thailand)[0];
        let vantage = vpn_vantage(Country::Thailand).unwrap();
        let req = Request::new(Url::from_host(&plan.host), vantage);
        let resp = corpus.internet().fetch(&req).unwrap();
        assert_eq!(resp.variant, ContentVariant::Localized);
        assert!(resp.text().contains("<!DOCTYPE html>"));
    }

    #[test]
    fn served_body_matches_direct_render() {
        let corpus = small();
        let plan = &corpus.candidates(Country::Greece)[3];
        let vantage = vpn_vantage(Country::Greece).unwrap();
        let req = Request::new(Url::from_host(&plan.host), vantage);
        let resp = corpus.internet().fetch(&req).unwrap();
        let (direct, _) = render(plan, ContentVariant::Localized, "/");
        assert_eq!(resp.text(), direct);
    }

    #[test]
    fn truth_for_reports_planted_elements() {
        let corpus = small();
        let plan = &corpus.candidates(Country::Israel)[0];
        let truth = Corpus::truth_for(plan, ContentVariant::Localized);
        use langcrux_lang::a11y::ElementKind;
        assert!(truth.kind(ElementKind::LinkName).total >= 25);
        assert!(truth.kind(ElementKind::ImageAlt).total >= 6);
    }

    #[test]
    fn most_candidates_qualify() {
        let corpus = small();
        let qualifying = corpus
            .candidates(Country::Egypt)
            .iter()
            .filter(|p| p.designed_qualifying)
            .count();
        let total = corpus.candidates(Country::Egypt).len();
        assert!(qualifying as f64 / total as f64 > 0.75);
        assert!(qualifying < total, "some must fail to exercise replacement");
    }
}
