//! Corpus assembly: plans + simulated internet.
//!
//! [`Corpus::build`] stands in for "the web as seen from CrUX": for every
//! study country it describes an over-provisioned, rank-ordered candidate
//! list (the paper extends its search to lower-ranked sites when top sites
//! fail the language threshold) and exposes every site to the simulated
//! [`Internet`]. The selection pipeline in `langcrux-core` then walks
//! candidates in rank order exactly as §2 describes: fetch through the
//! country VPN, verify the 50% native-visible-text rule, replace failures
//! with the next candidate.
//!
//! ## Lazy shards
//!
//! Since the zero-alloc generation PR the corpus no longer materialises
//! anything up front. Candidates live in **per-country shards** built on
//! first touch (a crawl worker asking for the candidate list) and bounded
//! by an LRU residency cap ([`CorpusConfig::resident_shards`]), so
//! corpora larger than memory stream through a crawl: an evicted shard is
//! rebuilt on demand, bit-identical, because shard contents are a pure
//! function of `(corpus seed, country)`. The *fetch* path never touches
//! the cache at all — the host resolver re-derives a site's plan straight
//! from its hostname (see `CorpusResolver::plan_for`). Residency is
//! therefore only a cache — site plans, fetch outcomes and
//! `Dataset::to_json` bytes are unchanged at every worker count and every
//! cap (tested). [`Corpus::shard_stats`] exposes the
//! builds/evictions/residency gauges (`peak_live` is the true
//! corpus-memory high-water mark).
//!
//! Page rendering inside the resolver runs through a shared
//! [`ScratchPool`] of render arenas, so steady-state crawling allocates
//! neither corpus memory (beyond resident shards) nor render scratch.

use crate::calibration::rank_quantile;
use crate::page::{render, render_into, PageTruth, ScratchPool};
use crate::site::SitePlan;
use langcrux_lang::{rng, Country};
use langcrux_net::{ContentVariant, FaultPlan, HostResolver, Internet, ResolvedHost};
use serde::Serialize;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Corpus construction parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Workspace seed: same seed ⇒ byte-identical corpus.
    pub seed: u64,
    /// Target number of *qualifying* sites per country (the paper: 10,000;
    /// the default harness: 1,500 for tractable runtimes).
    pub sites_per_country: usize,
    /// Countries to generate.
    pub countries: Vec<Country>,
    /// Fault behaviour of the simulated network.
    pub fault_plan: FaultPlan,
    /// Candidate overprovisioning factor (>1): extra lower-ranked sites
    /// available as replacements for threshold/fetch failures.
    pub overprovision: f64,
    /// Maximum country shards resident in memory at once (LRU-evicted
    /// beyond this); `0` means unbounded. Contents are seed-derived, so a
    /// small cap trades rebuild CPU for memory without changing any
    /// output byte.
    pub resident_shards: usize,
    /// Plant partial-localisation (translation-gap) scenarios: untranslated
    /// chrome, mistagged `lang` subtrees, unmarked English fallback blocks.
    /// Default `false`, under which the corpus is byte-identical to one
    /// built before gap support existed (gap sampling uses dedicated RNG
    /// streams that are never drawn when disabled).
    pub gap_scenarios: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: rng::DEFAULT_SEED,
            sites_per_country: 1_500,
            countries: Country::STUDY.to_vec(),
            fault_plan: FaultPlan::default(),
            overprovision: 1.5,
            resident_shards: 0,
            gap_scenarios: false,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for unit/integration tests.
    pub fn small(seed: u64, sites_per_country: usize) -> Self {
        CorpusConfig {
            seed,
            sites_per_country,
            fault_plan: FaultPlan::RELIABLE,
            ..CorpusConfig::default()
        }
    }

    fn candidates_per_country(&self) -> usize {
        ((self.sites_per_country as f64) * self.overprovision).ceil() as usize
    }
}

/// One country's materialised candidate list.
struct CountryShard {
    /// Rank-ordered plans (best rank first).
    plans: Vec<SitePlan>,
    /// Live-allocation gauge, decremented when the last `Arc` to this
    /// shard drops (`None` for the static empty shard).
    gauge: Option<Arc<LiveShardGauge>>,
}

impl Drop for CountryShard {
    fn drop(&mut self) {
        if let Some(gauge) = &self.gauge {
            gauge.live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Rank-ordered candidate plans for one country, leased from the shard
/// cache. Derefs to `[SitePlan]`; holding it pins the shard contents (but
/// not its cache residency — an evicted shard simply rebuilds for the
/// next caller).
pub struct CandidateSet {
    shard: Arc<CountryShard>,
}

impl Deref for CandidateSet {
    type Target = [SitePlan];

    fn deref(&self) -> &[SitePlan] {
        &self.shard.plans
    }
}

/// Residency state of one country slot.
enum Slot {
    /// Another thread is building the shard; wait on the condvar.
    Building,
    Ready {
        shard: Arc<CountryShard>,
        /// LRU tick of the most recent access.
        last_used: u64,
    },
}

struct ShardMap {
    slots: HashMap<Country, Slot>,
    tick: u64,
}

/// Observability counters for the lazy-shard cache (see
/// [`Corpus::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ShardStats {
    /// Shard constructions, including rebuilds after eviction.
    pub builds: u64,
    /// Shards dropped by the LRU bound.
    pub evictions: u64,
    /// High-water mark of simultaneously *cache-resident* shards (the
    /// LRU gauge; never exceeds `resident_cap` when bounded).
    pub peak_resident: usize,
    /// Shards resident in the cache right now.
    pub resident: usize,
    /// High-water mark of shard allocations simultaneously **alive** —
    /// the true corpus-memory gauge: peak corpus memory ≈
    /// `peak_live` × the per-country shard size. Counts every shard the
    /// process holds, including evicted ones kept alive by outstanding
    /// [`CandidateSet`] leases or in-flight renders, so it can exceed
    /// `peak_resident` by up to a couple of shards per concurrent
    /// worker (a lease plus a revived rebuild).
    pub peak_live: usize,
    /// Shard allocations alive right now.
    pub live: usize,
    /// The configured bound (0 = unbounded).
    pub resident_cap: usize,
}

impl ShardStats {
    /// Register the shard gauges into the unified metrics registry
    /// (`langcrux_corpus_*` family — see `docs/observability.md`).
    pub fn encode_metrics(&self, enc: &mut langcrux_obs::Encoder) {
        enc.counter(
            "langcrux_corpus_shard_builds_total",
            "Country-shard constructions, including rebuilds after eviction.",
            self.builds as f64,
        );
        enc.counter(
            "langcrux_corpus_shard_evictions_total",
            "Country shards dropped by the LRU bound.",
            self.evictions as f64,
        );
        enc.gauge(
            "langcrux_corpus_shards_resident",
            "Country shards resident in the cache right now.",
            self.resident as f64,
        );
        enc.gauge(
            "langcrux_corpus_shards_resident_peak",
            "High-water mark of cache-resident country shards.",
            self.peak_resident as f64,
        );
        enc.gauge(
            "langcrux_corpus_shards_live",
            "Country-shard allocations alive right now (leases included).",
            self.live as f64,
        );
        enc.gauge(
            "langcrux_corpus_shards_live_peak",
            "High-water mark of simultaneously live shard allocations.",
            self.peak_live as f64,
        );
        enc.gauge(
            "langcrux_corpus_shard_resident_cap",
            "Configured residency bound (0 = unbounded).",
            self.resident_cap as f64,
        );
    }
}

/// The lazy per-country shard cache. Shared between the [`Corpus`] handle
/// and the internet's host resolver.
struct ShardCache {
    seed: u64,
    sites_per_country: usize,
    overprovision: f64,
    countries: Vec<Country>,
    resident_cap: usize,
    gap_scenarios: bool,
    map: Mutex<ShardMap>,
    built: Condvar,
    builds: AtomicU64,
    evictions: AtomicU64,
    peak_resident: AtomicUsize,
    /// Shard allocations alive (incremented on build, decremented by
    /// `CountryShard::drop` when the last `Arc` goes away).
    live: Arc<LiveShardGauge>,
}

/// Exact live-allocation accounting for [`ShardStats::peak_live`].
#[derive(Debug, Default)]
struct LiveShardGauge {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl ShardCache {
    fn new(config: &CorpusConfig) -> Self {
        ShardCache {
            seed: config.seed,
            sites_per_country: config.sites_per_country,
            overprovision: config.overprovision,
            countries: config.countries.clone(),
            resident_cap: config.resident_shards,
            gap_scenarios: config.gap_scenarios,
            map: Mutex::new(ShardMap {
                slots: HashMap::new(),
                tick: 0,
            }),
            built: Condvar::new(),
            builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            peak_resident: AtomicUsize::new(0),
            live: Arc::new(LiveShardGauge::default()),
        }
    }

    fn candidates_per_country(&self) -> usize {
        ((self.sites_per_country as f64) * self.overprovision).ceil() as usize
    }

    /// Get (building or reviving if needed) the shard for `country`.
    fn shard(&self, country: Country) -> Arc<CountryShard> {
        let mut map = self.map.lock().expect("shard map");
        loop {
            map.tick += 1;
            let tick = map.tick;
            match map.slots.get_mut(&country) {
                Some(Slot::Ready { shard, last_used }) => {
                    *last_used = tick;
                    return Arc::clone(shard);
                }
                Some(Slot::Building) => {
                    // Another thread is building this shard; park until it
                    // publishes, then re-check from scratch.
                    map = self.built.wait(map).expect("shard condvar");
                }
                None => break,
            }
        }

        // This thread builds. Mark the slot so concurrent requesters park
        // on the condvar instead of duplicating the work.
        map.slots.insert(country, Slot::Building);
        drop(map);

        // If the build panics, clear the Building marker and wake the
        // waiters (they will retry and one of them becomes the builder) —
        // otherwise a panicking builder would park every other worker
        // asking for this country forever.
        struct BuildGuard<'a> {
            cache: &'a ShardCache,
            country: Country,
            armed: bool,
        }
        impl Drop for BuildGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    let mut map = self.cache.map.lock().expect("shard map");
                    map.slots.remove(&self.country);
                    drop(map);
                    self.cache.built.notify_all();
                }
            }
        }
        let mut guard = BuildGuard {
            cache: self,
            country,
            armed: true,
        };

        let shard = Arc::new(self.build_shard(country));
        guard.armed = false;
        self.builds.fetch_add(1, Ordering::Relaxed);

        let mut map = self.map.lock().expect("shard map");
        map.tick += 1;
        let tick = map.tick;
        map.slots.insert(
            country,
            Slot::Ready {
                shard: Arc::clone(&shard),
                last_used: tick,
            },
        );
        self.enforce_cap(&mut map);
        let resident = map
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count();
        self.peak_resident.fetch_max(resident, Ordering::Relaxed);
        drop(map);
        self.built.notify_all();
        shard
    }

    /// Evict least-recently-used Ready shards beyond the cap. The shard
    /// just inserted carries the newest tick, so it survives unless it is
    /// the only one and the cap is zero-but-unbounded (cap 0 = no bound).
    fn enforce_cap(&self, map: &mut ShardMap) {
        if self.resident_cap == 0 {
            return;
        }
        loop {
            let ready: Vec<(Country, u64)> = map
                .slots
                .iter()
                .filter_map(|(c, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*c, *last_used)),
                    Slot::Building => None,
                })
                .collect();
            if ready.len() <= self.resident_cap {
                return;
            }
            let (victim, _) = ready
                .into_iter()
                .min_by_key(|&(_, t)| t)
                .expect("nonempty ready set");
            map.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Materialise one country's candidate list. Pure in
    /// `(seed, country, sites_per_country, overprovision)` — rebuilds are
    /// bit-identical, which is what makes eviction invisible downstream.
    fn build_shard(&self, country: Country) -> CountryShard {
        // Deterministic span count only with an unbounded cache
        // (`resident_shards: 0`, the default): LRU rebuild counts depend
        // on eviction interleaving — see langcrux_obs::trace docs.
        let _shard_span = langcrux_obs::trace::span(
            "corpus.shard_build",
            langcrux_obs::trace::key_str(country.code()),
        );
        let n = self.candidates_per_country();
        // The paper walks CrUX ranks downward until the quota of
        // *qualifying* sites is filled; the Figure 7 rank distribution is
        // therefore a property of the selected population. Candidate ranks
        // are assigned as order statistics of the country's rank model over
        // the expected selection depth (quota inflated by the ~12%
        // disqualification rate), so the walk's output reproduces the
        // calibrated distribution; overprovisioned spares extend past the
        // model's maximum.
        let expected_depth = (self.sites_per_country as f64 / 0.86).ceil();
        let mut plans = Vec::with_capacity(n);
        for index in 0..n as u32 {
            let mut plan =
                SitePlan::build_gapped(self.seed, country, index, None, self.gap_scenarios);
            let u = (f64::from(index) + 0.5) / expected_depth;
            plan.rank = if u <= 1.0 {
                rank_quantile(country, u)
            } else {
                // Spares live beyond the modelled range.
                (rank_quantile(country, 1.0) as f64 * u).round() as u64
            };
            plans.push(plan);
        }
        // CrUX presents sites by rank: best (lowest) rank first.
        plans.sort_by(|a, b| (a.rank, a.host.as_str()).cmp(&(b.rank, b.host.as_str())));
        let live = self.live.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.live.peak.fetch_max(live, Ordering::Relaxed);
        CountryShard {
            plans,
            gauge: Some(Arc::clone(&self.live)),
        }
    }

    fn stats(&self) -> ShardStats {
        let resident = {
            let map = self.map.lock().expect("shard map");
            map.slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count()
        };
        ShardStats {
            builds: self.builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            peak_resident: self.peak_resident.load(Ordering::Relaxed),
            resident,
            peak_live: self.live.peak.load(Ordering::Relaxed),
            live: self.live.live.load(Ordering::Relaxed),
            resident_cap: self.resident_cap,
        }
    }
}

/// The lazy host registry the corpus installs on its [`Internet`]: derives
/// the country from the hostname's TLD, revives the country shard, and
/// renders pages through the shared render-arena pool.
struct CorpusResolver {
    shards: Arc<ShardCache>,
    scratch: ScratchPool,
}

impl CorpusResolver {
    fn country_of(&self, host: &str) -> Option<Country> {
        let tld = host.rsplit('.').next()?;
        self.shards
            .countries
            .iter()
            .copied()
            .find(|c| c.tld() == tld)
    }

    /// Re-derive the site plan straight from the hostname, **without
    /// touching the shard cache**: hostnames embed their construction
    /// index (`{stem}-{index}.{tld}`), plans are pure in
    /// `(seed, country, index)`, and rendering never reads the
    /// shard-assigned rank. This keeps the fetch path entirely off the
    /// shard-map mutex — negative lookups (typo'd hosts, `knows`,
    /// `host_count` overlap scans) cannot build, touch, or evict a
    /// shard, and a fetch costs one cheap plan sample instead of a
    /// cache round-trip: a fetch calls this twice (`resolve`, then
    /// `serve_into`), so the second call is answered by a per-thread
    /// one-entry memo keyed by `(seed, host)`. The stem check
    /// (`plan.host == host`) rejects names whose archetype does not
    /// match the sampled one.
    fn plan_for(&self, host: &str) -> Option<SitePlan> {
        thread_local! {
            /// `(seed, candidate bound, gap flag, plan)` of the most
            /// recent derivation on this thread. Plans are pure in
            /// `(seed, gap flag, host)`; the bound keys the memo so a
            /// same-seed corpus with a smaller candidate range still
            /// rejects out-of-range indices.
            static LAST_PLAN: std::cell::RefCell<Option<(u64, usize, bool, SitePlan)>> =
                const { std::cell::RefCell::new(None) };
        }
        let seed = self.shards.seed;
        let bound = self.shards.candidates_per_country();
        let gaps = self.shards.gap_scenarios;
        let memoized = LAST_PLAN.with(|memo| {
            memo.borrow()
                .as_ref()
                .filter(|(s, b, g, plan)| {
                    *s == seed && *b == bound && *g == gaps && plan.host == host
                })
                .map(|(_, _, _, plan)| plan.clone())
        });
        if let Some(plan) = memoized {
            return Some(plan);
        }
        let country = self.country_of(host)?;
        let name = host.strip_suffix(country.tld())?.strip_suffix('.')?;
        let index: u32 = name.rsplit('-').next()?.parse().ok()?;
        if index as usize >= bound {
            return None;
        }
        let plan = SitePlan::build_gapped(seed, country, index, None, gaps);
        if plan.host != host {
            return None;
        }
        LAST_PLAN.with(|memo| *memo.borrow_mut() = Some((seed, bound, gaps, plan.clone())));
        Some(plan)
    }
}

impl HostResolver for CorpusResolver {
    fn resolve(&self, host: &str) -> Option<ResolvedHost> {
        let plan = self.plan_for(host)?;
        Some(ResolvedHost {
            country: plan.country,
            vpn_detecting: plan.vpn_detecting,
            geo_block: plan.geo_block,
        })
    }

    fn serve_into(&self, host: &str, variant: ContentVariant, path: &str, out: &mut String) {
        let plan = self
            .plan_for(host)
            .expect("serve_into on unresolvable host");
        self.scratch.with(|scratch| {
            render_into(&plan, variant, path, scratch, out);
        });
    }

    fn host_count(&self) -> usize {
        self.shards.candidates_per_country() * self.shards.countries.len()
    }
}

/// The generated corpus: lazily sharded rank-ordered candidates per
/// country plus the simulated internet that serves them.
pub struct Corpus {
    config: CorpusConfig,
    internet: Internet,
    shards: Arc<ShardCache>,
}

impl Corpus {
    /// Build the corpus handle. O(1): no shard is materialised until a
    /// candidate list is requested or one of its hosts is fetched.
    pub fn build(config: CorpusConfig) -> Corpus {
        let shards = Arc::new(ShardCache::new(&config));
        let mut internet = Internet::new(config.seed, config.fault_plan);
        internet.set_resolver(Box::new(CorpusResolver {
            shards: Arc::clone(&shards),
            scratch: ScratchPool::new(),
        }));
        Corpus {
            config,
            internet,
            shards,
        }
    }

    /// Build the corpus with every country shard materialised up front and
    /// no residency bound — the pre-lazy behaviour. The candidate lists
    /// and every served byte are identical to the lazy corpus (tested);
    /// only the memory/latency profile differs.
    pub fn build_eager(mut config: CorpusConfig) -> Corpus {
        config.resident_shards = 0;
        let corpus = Corpus::build(config);
        for country in corpus.config.countries.clone() {
            let _ = corpus.shards.shard(country);
        }
        corpus
    }

    /// The simulated internet serving this corpus.
    pub fn internet(&self) -> &Internet {
        &self.internet
    }

    /// The build configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Rank-ordered candidate plans for a country (building or reviving
    /// its shard on demand).
    pub fn candidates(&self, country: Country) -> CandidateSet {
        if !self.config.countries.contains(&country) {
            static EMPTY: OnceShard = OnceShard::new();
            return CandidateSet { shard: EMPTY.get() };
        }
        CandidateSet {
            shard: self.shards.shard(country),
        }
    }

    /// Countries present in the corpus.
    pub fn countries(&self) -> impl Iterator<Item = Country> + '_ {
        self.config.countries.iter().copied()
    }

    /// Ground truth of what a given plan plants for a variant (renders the
    /// page and discards the HTML).
    pub fn truth_for(plan: &SitePlan, variant: ContentVariant) -> PageTruth {
        render(plan, variant, "/").1
    }

    /// Total candidate count across all countries (no materialisation —
    /// candidate counts are config-derived).
    pub fn total_candidates(&self) -> usize {
        self.config.candidates_per_country() * self.config.countries.len()
    }

    /// Lazy-shard cache gauges: builds (including rebuilds after
    /// eviction), evictions, and the peak/resident shard counts that bound
    /// corpus memory.
    pub fn shard_stats(&self) -> ShardStats {
        self.shards.stats()
    }
}

/// A lazily initialised empty shard for out-of-corpus countries.
struct OnceShard {
    cell: std::sync::OnceLock<Arc<CountryShard>>,
}

impl OnceShard {
    const fn new() -> Self {
        OnceShard {
            cell: std::sync::OnceLock::new(),
        }
    }

    fn get(&self) -> Arc<CountryShard> {
        Arc::clone(self.cell.get_or_init(|| {
            Arc::new(CountryShard {
                plans: Vec::new(),
                gauge: None,
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_net::{vpn_vantage, Request, Url};

    fn small() -> Corpus {
        Corpus::build(CorpusConfig::small(77, 30))
    }

    #[test]
    fn builds_overprovisioned_rank_ordered_lists() {
        let corpus = small();
        for country in Country::STUDY {
            let c = corpus.candidates(country);
            assert_eq!(c.len(), 45, "{country:?}"); // ceil(30 * 1.5)
            for w in c.windows(2) {
                assert!(w[0].rank <= w[1].rank);
            }
        }
        assert_eq!(corpus.total_candidates(), 45 * 12);
        assert_eq!(corpus.internet().host_count(), 45 * 12);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        for country in Country::STUDY {
            let ca = a.candidates(country);
            let cb = b.candidates(country);
            let ha: Vec<&str> = ca.iter().map(|p| p.host.as_str()).collect();
            let hb: Vec<&str> = cb.iter().map(|p| p.host.as_str()).collect();
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn lazy_matches_eager() {
        let lazy = Corpus::build(CorpusConfig::small(77, 20));
        let eager = Corpus::build_eager(CorpusConfig::small(77, 20));
        assert_eq!(eager.shard_stats().builds, 12, "eager prefetches all");
        for country in Country::STUDY {
            let cl = lazy.candidates(country);
            let ce = eager.candidates(country);
            assert_eq!(cl.len(), ce.len());
            for (a, b) in cl.iter().zip(ce.iter()) {
                assert_eq!(a.host, b.host);
                assert_eq!(a.rank, b.rank);
                assert_eq!(a.seed, b.seed);
            }
        }
    }

    #[test]
    fn shards_build_lazily_and_evict_by_lru() {
        let corpus = Corpus::build(CorpusConfig {
            resident_shards: 2,
            ..CorpusConfig::small(5, 8)
        });
        assert_eq!(corpus.shard_stats().builds, 0, "no shard before first use");
        let _ = corpus.candidates(Country::Japan);
        let _ = corpus.candidates(Country::Thailand);
        let stats = corpus.shard_stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.evictions, 0);
        // A third country evicts the LRU (Japan) …
        let _ = corpus.candidates(Country::Greece);
        let stats = corpus.shard_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.peak_resident, 2, "cap respected at all times");
        // … and touching Japan again rebuilds it bit-identically.
        let eager = Corpus::build_eager(CorpusConfig::small(5, 8));
        let revived = corpus.candidates(Country::Japan);
        let expect = eager.candidates(Country::Japan);
        assert_eq!(corpus.shard_stats().builds, 4);
        for (a, b) in revived.iter().zip(expect.iter()) {
            assert_eq!(a.host, b.host);
            assert_eq!(a.rank, b.rank);
        }
        // Live-gauge accounting: the `revived` lease shares the resident
        // Japan allocation (2 alive in total), and the build-then-evict
        // transitions transiently held a third shard.
        let stats = corpus.shard_stats();
        assert_eq!(
            stats.live, 2,
            "leases to resident shards share the allocation"
        );
        assert!(stats.peak_live >= 3, "build+evict transient not recorded");
    }

    #[test]
    fn live_gauge_counts_leases_beyond_the_resident_cap() {
        // A lease pins an evicted shard: the cache gauge stays at the
        // cap while the live gauge shows the extra allocation — the
        // honest corpus-memory number.
        let corpus = Corpus::build(CorpusConfig {
            resident_shards: 1,
            ..CorpusConfig::small(9, 5)
        });
        let held = corpus.candidates(Country::Japan);
        let _ = corpus.candidates(Country::Greece); // evicts Japan
        let stats = corpus.shard_stats();
        assert_eq!(stats.resident, 1);
        assert_eq!(stats.peak_resident, 1);
        assert_eq!(stats.live, 2, "evicted-but-leased shard stays alive");
        assert_eq!(stats.peak_live, 2);
        assert_eq!(held.len(), corpus.candidates(Country::Japan).len());
        drop(held);
        assert_eq!(corpus.shard_stats().live, 1);
    }

    #[test]
    fn fetches_bypass_the_shard_cache_and_serve_identical_bytes() {
        // The fetch path derives plans straight from the hostname, so
        // serving bytes is independent of residency caps — and costs no
        // shard materialisation at all.
        let tight = Corpus::build(CorpusConfig {
            resident_shards: 1,
            ..CorpusConfig::small(31, 6)
        });
        let roomy = Corpus::build(CorpusConfig::small(31, 6));
        for country in [Country::Japan, Country::Greece, Country::Japan] {
            let vantage = vpn_vantage(country).unwrap();
            let candidates = roomy.candidates(country);
            for plan in candidates.iter().take(3) {
                let req = Request::new(Url::from_host(&plan.host), vantage);
                let a = tight.internet().fetch(&req).unwrap();
                let b = roomy.internet().fetch(&req).unwrap();
                assert_eq!(a.variant, b.variant, "{}", plan.host);
                assert_eq!(a.text(), b.text(), "{}", plan.host);
            }
        }
        assert_eq!(
            tight.shard_stats().builds,
            0,
            "fetching must not build shards (plans re-derive from hostnames)"
        );
    }

    #[test]
    fn sites_are_fetchable_through_vpn() {
        let corpus = small();
        let candidates = corpus.candidates(Country::Thailand);
        let plan = &candidates[0];
        let vantage = vpn_vantage(Country::Thailand).unwrap();
        let req = Request::new(Url::from_host(&plan.host), vantage);
        let resp = corpus.internet().fetch(&req).unwrap();
        assert_eq!(resp.variant, ContentVariant::Localized);
        assert!(resp.text().contains("<!DOCTYPE html>"));
    }

    #[test]
    fn served_body_matches_direct_render() {
        let corpus = small();
        let candidates = corpus.candidates(Country::Greece);
        let plan = &candidates[3];
        let vantage = vpn_vantage(Country::Greece).unwrap();
        let req = Request::new(Url::from_host(&plan.host), vantage);
        let resp = corpus.internet().fetch(&req).unwrap();
        let (direct, _) = render(plan, ContentVariant::Localized, "/");
        assert_eq!(resp.text(), direct);
    }

    #[test]
    fn unknown_hosts_do_not_resolve() {
        let corpus = small();
        assert!(!corpus.internet().knows("no-such-site.jp"));
        assert!(!corpus.internet().knows("sangbad-0.zz"));
        let req = Request::new(
            Url::from_host("no-such-site.jp"),
            vpn_vantage(Country::Japan).unwrap(),
        );
        assert!(corpus.internet().fetch(&req).is_err());
    }

    #[test]
    fn truth_for_reports_planted_elements() {
        let corpus = small();
        let candidates = corpus.candidates(Country::Israel);
        let plan = &candidates[0];
        let truth = Corpus::truth_for(plan, ContentVariant::Localized);
        use langcrux_lang::a11y::ElementKind;
        assert!(truth.kind(ElementKind::LinkName).total >= 25);
        assert!(truth.kind(ElementKind::ImageAlt).total >= 6);
    }

    #[test]
    fn most_candidates_qualify() {
        let corpus = small();
        let candidates = corpus.candidates(Country::Egypt);
        let qualifying = candidates.iter().filter(|p| p.designed_qualifying).count();
        let total = candidates.len();
        assert!(qualifying as f64 / total as f64 > 0.75);
        assert!(qualifying < total, "some must fail to exercise replacement");
    }
}
