//! Page rendering: [`SitePlan`] → HTML + ground truth.
//!
//! Rendering is deterministic in `(plan.seed, variant, path)`. Alongside
//! the HTML the renderer returns a [`PageTruth`] describing exactly what it
//! planted, so integration tests can assert the crawl→extract→classify
//! pipeline *recovers* the planted distributions — the core correctness
//! argument of the reproduction.
//!
//! Layout of the localized variant (per archetype counts):
//!
//! ```text
//! <!DOCTYPE html><html lang=…><head><title>…</title></head><body>
//!   <header><nav> links … </nav></header>
//!   <main>
//!     <h1>headline</h1> paragraphs (native/English mix per plan)
//!     <img alt=…> · <svg role=img><title>…</title></svg> · <iframe title=…>
//!     <details><summary>…</summary></details> · <object>…</object>
//!     <form> <label for=…>…</label><input> · <input type=image alt=…>
//!            <select aria-label=…> · <input type=submit value=…> </form>
//!     <button aria-label=…>visible</button> …
//!   </main>
//!   <footer> links … </footer>
//! </body></html>
//! ```
//!
//! The **global** variant keeps the same structure but serves
//! English-dominant visible text and English accessibility text — what a
//! cloud-vantage crawler sees. The **restricted** variant is a bot-wall
//! stub.

use crate::calibration::{element_calibration, estimated_page_bytes};
use crate::sample::{heavy_tail_len, int_between};
use crate::site::{LangBucket, PlantedText, SitePlan};
use langcrux_filter::DiscardCategory;
use langcrux_html::HtmlBuilder;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::{dict, rng, Language};
use langcrux_net::ContentVariant;
use langcrux_textgen::{MixedGenerator, TextGenerator};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Expected distinguishing characters per sentence for `lang`, relative to
/// English. CJK sentences carry ~0.4× the characters of an English sentence
/// with the same word count, so hitting a *character-share* target requires
/// boosting the native *sentence* probability. The ratio is measured once
/// per language from fixed-seed samples (deterministic) and cached.
fn char_ratio(lang: Language) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<Language, f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = cache.lock().expect("ratio cache").get(&lang) {
        return *v;
    }
    let mean_chars = |l: Language| -> f64 {
        use langcrux_lang::script::ScriptHistogram;
        let mut g = TextGenerator::new(l, 0xC0FFEE);
        let mut total = 0usize;
        const SAMPLES: usize = 40;
        for _ in 0..SAMPLES {
            let hist = ScriptHistogram::of(&g.sentence());
            total += l
                .evidence_scripts()
                .iter()
                .map(|&s| hist.count(s))
                .sum::<usize>();
        }
        total as f64 / SAMPLES as f64
    };
    let ratio = (mean_chars(lang) / mean_chars(Language::English)).max(0.05);
    cache.lock().expect("ratio cache").insert(lang, ratio);
    ratio
}

/// Native-sentence probability needed for a target native *character*
/// share `t`, given the language's char ratio `r`: solves
/// `p·r / (p·r + (1-p)) = t`.
fn native_sentence_prob(target_share: f64, ratio: f64) -> f64 {
    let t = target_share.clamp(0.0, 1.0);
    (t / (ratio + t * (1.0 - ratio))).clamp(0.0, 1.0)
}

/// What was planted for one element kind on one page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindTruth {
    pub total: u32,
    pub missing: u32,
    pub empty: u32,
    /// Indexed by `DiscardCategory::ALL` order.
    pub uninformative: [u32; 11],
    pub informative_native: u32,
    pub informative_english: u32,
    pub informative_mixed: u32,
}

impl KindTruth {
    pub fn uninformative_total(&self) -> u32 {
        self.uninformative.iter().sum()
    }

    pub fn informative_total(&self) -> u32 {
        self.informative_native + self.informative_english + self.informative_mixed
    }

    pub fn merge(&mut self, other: &KindTruth) {
        self.total += other.total;
        self.missing += other.missing;
        self.empty += other.empty;
        for i in 0..11 {
            self.uninformative[i] += other.uninformative[i];
        }
        self.informative_native += other.informative_native;
        self.informative_english += other.informative_english;
        self.informative_mixed += other.informative_mixed;
    }
}

/// Ground truth for one rendered page.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PageTruth {
    /// Indexed by `ElementKind::ALL` order.
    pub per_kind: [KindTruth; 12],
    /// The plan's target visible native share at render time.
    pub target_visible_native: f64,
}

impl PageTruth {
    pub fn kind(&self, kind: ElementKind) -> &KindTruth {
        &self.per_kind[kind_index(kind)]
    }
}

fn sample_category(r: &mut StdRng, dist: &[f64; 11]) -> DiscardCategory {
    let total: f64 = dist.iter().sum();
    let mut roll = r.gen::<f64>() * total;
    for (i, &w) in dist.iter().enumerate() {
        if roll < w {
            return DiscardCategory::ALL[i];
        }
        roll -= w;
    }
    DiscardCategory::ALL[10]
}

fn kind_index(kind: ElementKind) -> usize {
    ElementKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

/// Render a page for the plan/variant/path. Deterministic.
pub fn render(plan: &SitePlan, variant: ContentVariant, path: &str) -> (String, PageTruth) {
    match variant {
        ContentVariant::Restricted => (render_restricted(plan), PageTruth::default()),
        ContentVariant::Localized => Renderer::new(plan, variant, path).render(),
        ContentVariant::Global => Renderer::new(plan, variant, path).render(),
    }
}

fn render_restricted(plan: &SitePlan) -> String {
    let mut b = HtmlBuilder::document();
    b.open("html", &[("lang", Some("en"))]);
    b.open("head", &[]);
    b.leaf("title", &[], "Access denied");
    b.close();
    b.open("body", &[]);
    b.leaf(
        "p",
        &[],
        &format!(
            "Access to {} from your network is restricted. Please disable \
             proxy or VPN services and try again.",
            plan.host
        ),
    );
    b.close();
    b.close();
    b.finish()
}

struct Renderer<'a> {
    plan: &'a SitePlan,
    variant: ContentVariant,
    rng: StdRng,
    native: TextGenerator,
    english: TextGenerator,
    mixed: MixedGenerator,
    truth: PageTruth,
    /// Effective visible-native share for this variant.
    visible_native: f64,
    counter: u32,
}

impl<'a> Renderer<'a> {
    fn new(plan: &'a SitePlan, variant: ContentVariant, path: &str) -> Self {
        let vstream = match variant {
            ContentVariant::Localized => 1,
            ContentVariant::Global => 2,
            ContentVariant::Restricted => 3,
        };
        let page_seed = rng::derive(plan.seed, &[vstream, rng::stream_id(path)]);
        let native_lang = plan.native_language();
        let target_share = match variant {
            ContentVariant::Localized => plan.visible_native_share,
            // The global variant is English-dominant: the residual native
            // share models navigation crumbs and brand names.
            ContentVariant::Global => (plan.visible_native_share * 0.12).min(0.10),
            ContentVariant::Restricted => 0.0,
        };
        // Convert the character-share target into a sentence probability
        // (CJK sentences carry fewer characters; see char_ratio()).
        let visible_native = native_sentence_prob(target_share, char_ratio(native_lang));
        Renderer {
            plan,
            variant,
            rng: rng::rng_for(page_seed, &[0x11]),
            native: TextGenerator::new(native_lang, rng::derive(page_seed, &[0x22])),
            english: TextGenerator::new(Language::English, rng::derive(page_seed, &[0x33])),
            mixed: MixedGenerator::new(native_lang, rng::derive(page_seed, &[0x44]), 0.5),
            truth: PageTruth {
                target_visible_native: target_share,
                ..PageTruth::default()
            },
            visible_native,
            counter: 0,
        }
    }

    fn next_id(&mut self) -> u32 {
        self.counter += 1;
        self.counter
    }

    /// Visible text in the page's language mix, `words` words long.
    fn visible_phrase(&mut self, min: usize, max: usize) -> String {
        if self.rng.gen::<f64>() < self.visible_native {
            self.native.phrase(min, max)
        } else {
            self.english.phrase(min, max)
        }
    }

    fn visible_sentencer(&mut self) -> String {
        let mut out = String::new();
        self.append_visible_sentence(&mut out);
        out
    }

    /// [`visible_sentencer`](Self::visible_sentencer) into a caller-owned
    /// scratch buffer (the article-paragraph hot path reuses one buffer
    /// across every paragraph of a page instead of allocating per
    /// sentence). Bytes and RNG draws are identical.
    fn append_visible_sentence(&mut self, out: &mut String) {
        if self.rng.gen::<f64>() < self.visible_native {
            self.native.append_sentence(out);
        } else {
            self.english.append_sentence(out);
        }
    }

    /// Count of elements of `kind` for this page.
    fn count_for(&mut self, kind: ElementKind) -> usize {
        let cal = element_calibration(kind);
        let base = int_between(&mut self.rng, cal.per_page.0, cal.per_page.1);
        let factor = self.plan.archetype.count_factor(kind);
        ((base as f64 * factor).round() as usize).max(cal.per_page.0)
    }

    /// Decide what to plant for one slot of `kind` and record the truth.
    fn plant(&mut self, kind: ElementKind) -> PlantedText {
        let (missing_rate, empty_rate) = self.plan.rates(kind);
        let truth = &mut self.truth.per_kind[kind_index(kind)];
        truth.total += 1;

        let roll: f64 = self.rng.gen();
        if roll < missing_rate {
            truth.missing += 1;
            return PlantedText::Missing;
        }
        if roll < missing_rate + empty_rate {
            truth.empty += 1;
            return PlantedText::Empty;
        }

        let (discard_total, discard_dist) = self.plan.discard_profile(kind);
        if self.rng.gen::<f64>() < discard_total {
            let cat = sample_category(&mut self.rng, &discard_dist);
            let text = self.uninformative_instance(kind, cat);
            self.truth.per_kind[kind_index(kind)].uninformative[DiscardCategory::ALL
                .iter()
                .position(|&c| c == cat)
                .expect("cat")] += 1;
            return PlantedText::Uninformative(cat, text);
        }

        // Informative label. The global variant serves English a11y text.
        let bucket = if self.variant == ContentVariant::Global {
            LangBucket::English
        } else {
            self.plan.sample_bucket(&mut self.rng)
        };
        let text = self.informative_instance(kind, bucket);
        let truth = &mut self.truth.per_kind[kind_index(kind)];
        match bucket {
            LangBucket::Native => truth.informative_native += 1,
            LangBucket::English => truth.informative_english += 1,
            LangBucket::Mixed => truth.informative_mixed += 1,
        }
        PlantedText::Informative(bucket, text)
    }

    fn informative_instance(&mut self, kind: ElementKind, bucket: LangBucket) -> String {
        let cal = element_calibration(kind);
        let (min, max) = cal.words;
        // Thai/CJK single tokens must clear the filter's length bars to
        // stay informative; widen the floor for continua scripts.
        let native_lang = self.plan.native_language();
        let min = if native_lang == Language::Thai && bucket != LangBucket::English {
            min.max(3)
        } else if bucket == LangBucket::Mixed {
            min.max(2)
        } else {
            min
        };
        let max = max.max(min);
        let base = match bucket {
            LangBucket::Native => self.native.phrase(min, max),
            LangBucket::English => self.english.phrase(min, max),
            LangBucket::Mixed => self.mixed.phrase(min, max),
        };
        if cal.outlier_chance > 0.0 && self.rng.gen::<f64>() < cal.outlier_chance {
            return self.outlier_text(bucket);
        }
        base
    }

    /// Appendix E: extreme alt texts — entire paragraphs or boilerplate
    /// dumps mistakenly placed in accessibility attributes.
    fn outlier_text(&mut self, bucket: LangBucket) -> String {
        let target = heavy_tail_len(&mut self.rng, (1_200, 4_000), (8_000, 260_000), 0.10);
        let mut out = String::with_capacity(target + 64);
        // Track the char count incrementally: re-scanning a 260k-char
        // outlier per appended paragraph is quadratic.
        let mut chars = 0usize;
        while chars < target {
            let before = out.len();
            match bucket {
                LangBucket::Native => self.native.append_paragraph(3, &mut out),
                _ => self.english.append_paragraph(3, &mut out),
            }
            chars += out[before..].chars().count();
            out.push(' ');
            chars += 1;
        }
        out
    }

    fn uninformative_instance(&mut self, _kind: ElementKind, cat: DiscardCategory) -> String {
        let n = self.next_id();
        let native = self.plan.native_language();
        // Label-language choice for dictionary categories follows the
        // site's a11y language profile (an English-defaulting site plants
        // English "search" buttons).
        let use_native = {
            let (nat, _, mix) = self.plan.lang_weights;
            self.rng.gen::<f64>() < (nat + mix * 0.5)
        };
        match cat {
            DiscardCategory::Emoji => {
                const EMOJI: &[&str] = &["📷", "🔍", "▶", "✕", "☰", "⭐", "➜", "🏠", "📧"];
                EMOJI[self.rng.gen_range(0..EMOJI.len())].to_string()
            }
            DiscardCategory::TooShort => {
                if native.primary_script().is_cjk() && use_native {
                    self.native.word().chars().take(1).collect()
                } else {
                    const SHORT: &[&str] = &["go", "ok", "..", ">>", "NA", "x"];
                    SHORT[self.rng.gen_range(0..SHORT.len())].to_string()
                }
            }
            DiscardCategory::FileName => {
                const STEMS: &[&str] = &["banner_img", "photo-", "IMG_", "slide_", "pic", "hero-"];
                const EXTS: &[&str] = &["jpg", "png", "jpeg", "webp", "gif"];
                format!(
                    "{}{}.{}",
                    STEMS[self.rng.gen_range(0..STEMS.len())],
                    n,
                    EXTS[self.rng.gen_range(0..EXTS.len())]
                )
            }
            DiscardCategory::UrlOrFilePath => {
                if self.rng.gen_bool(0.5) {
                    format!("https://{}/images/{}.png", self.plan.host, n)
                } else {
                    format!("/assets/img/item-{n}.svg")
                }
            }
            DiscardCategory::GenericAction => {
                let lang = if use_native {
                    native
                } else {
                    Language::English
                };
                let pool = dict::actions_in(lang);
                let pool = if pool.is_empty() {
                    dict::actions_in(Language::English)
                } else {
                    pool
                };
                pool[self.rng.gen_range(0..pool.len())].to_string()
            }
            DiscardCategory::Placeholder => {
                let lang = if use_native {
                    native
                } else {
                    Language::English
                };
                let pool = dict::placeholders_in(lang);
                let pool = if pool.is_empty() {
                    dict::placeholders_in(Language::English)
                } else {
                    pool
                };
                pool[self.rng.gen_range(0..pool.len())].to_string()
            }
            DiscardCategory::DevLabel => {
                const HEADS: &[&str] = &["btn", "nav", "img", "ico", "hdr", "card", "mod"];
                const TAILS: &[&str] = &["submit", "menu", "main", "item", "box", "wrap", "toggle"];
                let head = HEADS[self.rng.gen_range(0..HEADS.len())];
                let tail = TAILS[self.rng.gen_range(0..TAILS.len())];
                match self.rng.gen_range(0..3u8) {
                    0 => format!("{head}-{tail}"),
                    1 => format!("{head}_{tail}"),
                    _ => {
                        let mut tail_cap = tail.to_string();
                        tail_cap[..1].make_ascii_uppercase();
                        format!("{head}{tail_cap}")
                    }
                }
            }
            DiscardCategory::LabelNumberPattern => {
                const WORDS: &[&str] = &["image", "button", "slide", "figure", "banner", "item"];
                format!(
                    "{} {}",
                    WORDS[self.rng.gen_range(0..WORDS.len())],
                    self.rng.gen_range(1..20u8)
                )
            }
            DiscardCategory::SingleWord => {
                if use_native && !native.primary_script().is_cjk() {
                    // A short native single word (below the keep thresholds).
                    for _ in 0..8 {
                        let w = self.native.word();
                        let len = w.chars().count();
                        if (3..8).contains(&len) && !w.contains(' ') {
                            return w;
                        }
                    }
                }
                const WORDS: &[&str] = &[
                    "photo", "economy", "sports", "market", "health", "culture", "weather",
                    "travel", "profile",
                ];
                WORDS[self.rng.gen_range(0..WORDS.len())].to_string()
            }
            DiscardCategory::MixedAlnum => {
                const STEMS: &[&str] = &["img", "icon", "pic", "fig", "ad", "file"];
                format!("{}{}", STEMS[self.rng.gen_range(0..STEMS.len())], n)
            }
            DiscardCategory::OrdinalPhrase => {
                let b = self.rng.gen_range(3..12u8);
                let a = self.rng.gen_range(1..=b);
                if self.rng.gen_bool(0.5) {
                    format!("{a} of {b}")
                } else {
                    format!("{a}/{b}")
                }
            }
        }
    }

    /// Attribute triple for a planted text: `(attr_name, value)` or inner
    /// text, per element kind. Returns `None` for Missing.
    fn render(mut self) -> (String, PageTruth) {
        // Pre-sized from the calibrated page-size estimate: the buffer
        // grows past this only for outlier pages (capacity never affects
        // the rendered bytes).
        let mut b = HtmlBuilder::document_sized(estimated_page_bytes());
        let lang_attr;
        if self.plan.declares_lang {
            lang_attr = if self.variant == ContentVariant::Global || self.plan.declared_lang_wrong {
                // Wrongly-declared sites keep the template default ("en")
                // even though the content is native — a common real-world
                // authoring error the paper's §1 calls out.
                "en".to_string()
            } else {
                self.plan.native_language().tag().to_string()
            };
            b.open("html", &[("lang", Some(lang_attr.as_str()))]);
        } else {
            b.open("html", &[]);
        }

        // <head><title> — DocumentTitle slot.
        b.open("head", &[]);
        b.void("meta", &[("charset", Some("utf-8"))]);
        match self.plant(ElementKind::DocumentTitle) {
            PlantedText::Missing => {}
            PlantedText::Empty => {
                b.leaf("title", &[], "");
            }
            PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                b.leaf("title", &[], &t);
            }
        }
        b.close(); // head

        b.open("body", &[]);

        // Header nav links (a share of all links).
        let total_links = self.count_for(ElementKind::LinkName);
        let nav_links = (total_links / 5).clamp(3, 14);
        b.open("header", &[]);
        b.open("nav", &[]);
        for i in 0..nav_links {
            self.render_link(&mut b, &format!("/nav/{i}"));
        }
        b.close();
        b.close();

        b.open("main", &[]);
        let headline = self.visible_phrase(3, 8);
        b.leaf("h1", &[], &headline);

        // Article paragraphs: the bulk of visible text. One scratch
        // buffer serves every paragraph of the page (allocation diet).
        let paragraphs = int_between(&mut self.rng, 6, 16);
        let mut text = String::with_capacity(512);
        for _ in 0..paragraphs {
            let sentences = int_between(&mut self.rng, 2, 5);
            text.clear();
            for _ in 0..sentences {
                self.append_visible_sentence(&mut text);
                text.push(' ');
            }
            b.leaf("p", &[], text.trim());
        }

        // Images.
        let images = self.count_for(ElementKind::ImageAlt);
        for i in 0..images {
            let src = format!("/img/{i}.jpg");
            match self.plant(ElementKind::ImageAlt) {
                PlantedText::Missing => {
                    b.void("img", &[("src", Some(src.as_str()))]);
                }
                PlantedText::Empty => {
                    b.void("img", &[("src", Some(src.as_str())), ("alt", Some(""))]);
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.void(
                        "img",
                        &[("src", Some(src.as_str())), ("alt", Some(t.as_str()))],
                    );
                }
            }
        }

        // Inline SVG icons (svg-img-alt: <title> child or aria-label).
        let svgs = self.count_for(ElementKind::SvgImgAlt);
        for _ in 0..svgs {
            match self.plant(ElementKind::SvgImgAlt) {
                PlantedText::Missing => {
                    b.open(
                        "svg",
                        &[("role", Some("img")), ("viewBox", Some("0 0 24 24"))],
                    );
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
                PlantedText::Empty => {
                    b.open("svg", &[("role", Some("img")), ("aria-label", Some(""))]);
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.open("svg", &[("role", Some("img"))]);
                    b.leaf("title", &[], &t);
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
            }
        }

        // Iframes.
        let frames = self.count_for(ElementKind::FrameTitle);
        for i in 0..frames {
            let src = format!("/embed/{i}");
            match self.plant(ElementKind::FrameTitle) {
                PlantedText::Missing => {
                    b.leaf("iframe", &[("src", Some(src.as_str()))], "");
                }
                PlantedText::Empty => {
                    b.leaf(
                        "iframe",
                        &[("src", Some(src.as_str())), ("title", Some(""))],
                        "",
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf(
                        "iframe",
                        &[("src", Some(src.as_str())), ("title", Some(t.as_str()))],
                        "",
                    );
                }
            }
        }

        // Details/summary.
        let summaries = self.count_for(ElementKind::SummaryName);
        for _ in 0..summaries {
            b.open("details", &[]);
            match self.plant(ElementKind::SummaryName) {
                PlantedText::Missing => {
                    b.leaf("summary", &[], "");
                }
                PlantedText::Empty => {
                    b.leaf("summary", &[("aria-label", Some(""))], "");
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf("summary", &[], &t);
                }
            }
            let body = self.visible_sentencer();
            b.leaf("p", &[], &body);
            b.close();
        }

        // Object embeds.
        let objects = self.count_for(ElementKind::ObjectAlt);
        for i in 0..objects {
            let data = format!("/media/{i}.pdf");
            match self.plant(ElementKind::ObjectAlt) {
                PlantedText::Missing => {
                    b.leaf("object", &[("data", Some(data.as_str()))], "");
                }
                PlantedText::Empty => {
                    b.leaf(
                        "object",
                        &[("data", Some(data.as_str())), ("aria-label", Some(""))],
                        "",
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf(
                        "object",
                        &[
                            ("data", Some(data.as_str())),
                            ("aria-label", Some(t.as_str())),
                        ],
                        "",
                    );
                }
            }
        }

        // Form: labels + inputs, image inputs, selects, submit buttons.
        b.open(
            "form",
            &[("action", Some("/submit")), ("method", Some("post"))],
        );
        let labels = self.count_for(ElementKind::Label);
        for i in 0..labels {
            let id = format!("field-{i}");
            match self.plant(ElementKind::Label) {
                PlantedText::Missing => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("text")),
                            ("id", Some(id.as_str())),
                            ("name", Some(id.as_str())),
                        ],
                    );
                }
                PlantedText::Empty => {
                    b.leaf("label", &[("for", Some(id.as_str()))], "");
                    b.void(
                        "input",
                        &[("type", Some("text")), ("id", Some(id.as_str()))],
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf("label", &[("for", Some(id.as_str()))], &t);
                    b.void(
                        "input",
                        &[("type", Some("text")), ("id", Some(id.as_str()))],
                    );
                }
            }
        }
        let image_inputs = self.count_for(ElementKind::InputImageAlt);
        for i in 0..image_inputs {
            let src = format!("/img/btn{i}.png");
            match self.plant(ElementKind::InputImageAlt) {
                PlantedText::Missing => {
                    b.void(
                        "input",
                        &[("type", Some("image")), ("src", Some(src.as_str()))],
                    );
                }
                PlantedText::Empty => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("image")),
                            ("src", Some(src.as_str())),
                            ("alt", Some("")),
                        ],
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("image")),
                            ("src", Some(src.as_str())),
                            ("alt", Some(t.as_str())),
                        ],
                    );
                }
            }
        }
        let selects = self.count_for(ElementKind::SelectName);
        for i in 0..selects {
            let id = format!("select-{i}");
            let planted = self.plant(ElementKind::SelectName);
            match &planted {
                PlantedText::Missing => {
                    b.open("select", &[("id", Some(id.as_str()))]);
                }
                PlantedText::Empty => {
                    b.open(
                        "select",
                        &[("id", Some(id.as_str())), ("aria-label", Some(""))],
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.open(
                        "select",
                        &[("id", Some(id.as_str())), ("aria-label", Some(t.as_str()))],
                    );
                }
            }
            for opt in 0..3 {
                let text = self.visible_phrase(1, 2);
                b.leaf("option", &[("value", Some(&*opt.to_string()))], &text);
            }
            b.close();
        }
        let input_buttons = self.count_for(ElementKind::InputButtonName);
        for _ in 0..input_buttons {
            match self.plant(ElementKind::InputButtonName) {
                PlantedText::Missing => {
                    b.void("input", &[("type", Some("submit"))]);
                }
                PlantedText::Empty => {
                    b.void("input", &[("type", Some("submit")), ("value", Some(""))]);
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.void(
                        "input",
                        &[("type", Some("submit")), ("value", Some(t.as_str()))],
                    );
                }
            }
        }
        b.close(); // form

        // Buttons (visible text + optional aria-label).
        let buttons = self.count_for(ElementKind::ButtonName);
        for _ in 0..buttons {
            let visible = self.visible_phrase(1, 2);
            match self.plant(ElementKind::ButtonName) {
                PlantedText::Missing => {
                    b.leaf("button", &[("type", Some("button"))], &visible);
                }
                PlantedText::Empty => {
                    b.leaf(
                        "button",
                        &[("type", Some("button")), ("aria-label", Some(""))],
                        &visible,
                    );
                }
                PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                    b.leaf(
                        "button",
                        &[("type", Some("button")), ("aria-label", Some(t.as_str()))],
                        &visible,
                    );
                }
            }
        }

        // Body links.
        let body_links = total_links.saturating_sub(nav_links);
        for i in 0..body_links {
            self.render_link(&mut b, &format!("/article/{i}"));
        }
        b.close(); // main

        b.open("footer", &[]);
        let footer_text = self.visible_sentencer();
        b.leaf("p", &[], &footer_text);
        b.close();

        b.close(); // body
        b.close(); // html
        (b.finish(), self.truth)
    }

    fn render_link(&mut self, b: &mut HtmlBuilder, href: &str) {
        let visible = self.visible_phrase(1, 4);
        match self.plant(ElementKind::LinkName) {
            PlantedText::Missing => {
                b.leaf("a", &[("href", Some(href))], &visible);
            }
            PlantedText::Empty => {
                b.leaf(
                    "a",
                    &[("href", Some(href)), ("aria-label", Some(""))],
                    &visible,
                );
            }
            PlantedText::Uninformative(_, t) | PlantedText::Informative(_, t) => {
                b.leaf(
                    "a",
                    &[("href", Some(href)), ("aria-label", Some(t.as_str()))],
                    &visible,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_html::{parse, visible_text};
    use langcrux_lang::Country;

    fn plan(country: Country, idx: u32) -> SitePlan {
        SitePlan::build(1234, country, idx, Some(true))
    }

    #[test]
    fn render_is_deterministic() {
        let p = plan(Country::Bangladesh, 0);
        let (a, ta) = render(&p, ContentVariant::Localized, "/");
        let (b, tb) = render(&p, ContentVariant::Localized, "/");
        assert_eq!(a, b);
        assert_eq!(ta.per_kind, tb.per_kind);
    }

    #[test]
    fn variants_differ() {
        let p = plan(Country::Bangladesh, 0);
        let (local, _) = render(&p, ContentVariant::Localized, "/");
        let (global, _) = render(&p, ContentVariant::Global, "/");
        assert_ne!(local, global);
    }

    #[test]
    fn html_parses_and_contains_structure() {
        let p = plan(Country::Thailand, 3);
        let (html, truth) = render(&p, ContentVariant::Localized, "/");
        let doc = parse(&html);
        assert_eq!(
            doc.elements_named("img").count(),
            truth.kind(ElementKind::ImageAlt).total as usize
        );
        assert_eq!(
            doc.elements_named("button").count(),
            truth.kind(ElementKind::ButtonName).total as usize
        );
        assert_eq!(
            doc.elements_named("a").count(),
            truth.kind(ElementKind::LinkName).total as usize
        );
        assert!(doc.elements_named("form").count() >= 1);
    }

    #[test]
    fn truth_counts_are_consistent() {
        let p = plan(Country::Russia, 5);
        let (_, truth) = render(&p, ContentVariant::Localized, "/");
        for kind in ElementKind::ALL {
            let t = truth.kind(kind);
            assert_eq!(
                t.total,
                t.missing + t.empty + t.uninformative_total() + t.informative_total(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn localized_visible_text_is_native_dominant() {
        use langcrux_langid::composition;
        let p = plan(Country::Japan, 2);
        let (html, _) = render(&p, ContentVariant::Localized, "/");
        let doc = parse(&html);
        let text = visible_text(&doc);
        let c = composition(&text, Language::Japanese);
        assert!(
            c.native_pct > 50.0,
            "native {:.1} (target {:.2})",
            c.native_pct,
            p.visible_native_share
        );
    }

    #[test]
    fn global_visible_text_is_english_dominant() {
        use langcrux_langid::composition;
        let p = plan(Country::Japan, 2);
        let (html, _) = render(&p, ContentVariant::Global, "/");
        let doc = parse(&html);
        let text = visible_text(&doc);
        let c = composition(&text, Language::Japanese);
        assert!(c.english_pct > 70.0, "english {:.1}", c.english_pct);
    }

    #[test]
    fn global_a11y_is_english() {
        let p = plan(Country::Greece, 4);
        let (_, truth) = render(&p, ContentVariant::Global, "/");
        for kind in ElementKind::ALL {
            let t = truth.kind(kind);
            assert_eq!(t.informative_native, 0, "{kind:?}");
            assert_eq!(t.informative_mixed, 0, "{kind:?}");
        }
    }

    #[test]
    fn restricted_page_is_minimal() {
        let p = plan(Country::China, 1);
        let (html, truth) = render(&p, ContentVariant::Restricted, "/");
        assert!(html.contains("restricted"));
        assert!(html.len() < 600);
        assert_eq!(truth.kind(ElementKind::ImageAlt).total, 0);
    }

    #[test]
    fn planted_uninformative_instances_classify_correctly() {
        use langcrux_filter::classify;
        // Aggregate over many pages: planted category must agree with the
        // filter's verdict for the structural categories.
        let mut agree = 0u32;
        let mut total = 0u32;
        for idx in 0..12 {
            let p = plan(Country::SouthKorea, idx);
            let mut renderer = Renderer::new(&p, ContentVariant::Localized, "/");
            for cat in DiscardCategory::ALL {
                for _ in 0..20 {
                    let instance = renderer.uninformative_instance(ElementKind::ImageAlt, cat);
                    total += 1;
                    if classify(&instance) == Some(cat) {
                        agree += 1;
                    }
                }
            }
        }
        let rate = f64::from(agree) / f64::from(total);
        assert!(rate > 0.90, "plant/detect agreement {rate}");
    }

    #[test]
    fn planted_informative_instances_survive_filter() {
        use langcrux_filter::is_informative;
        let mut survive = 0u32;
        let mut total = 0u32;
        for idx in 0..10 {
            let p = plan(Country::Thailand, idx);
            let mut renderer = Renderer::new(&p, ContentVariant::Localized, "/");
            for bucket in [LangBucket::Native, LangBucket::English, LangBucket::Mixed] {
                for kind in [
                    ElementKind::ImageAlt,
                    ElementKind::LinkName,
                    ElementKind::ButtonName,
                ] {
                    for _ in 0..10 {
                        let text = renderer.informative_instance(kind, bucket);
                        total += 1;
                        if is_informative(&text) {
                            survive += 1;
                        }
                    }
                }
            }
        }
        let rate = f64::from(survive) / f64::from(total);
        assert!(rate > 0.85, "informative survival {rate}");
    }

    #[test]
    fn outliers_appear_at_calibrated_rate() {
        let mut extreme = 0usize;
        for idx in 0..400 {
            let p = plan(Country::India, idx);
            let (html, _) = render(&p, ContentVariant::Localized, "/");
            let doc = parse(&html);
            for img in doc.elements_named("img") {
                if let Some(alt) = doc.attr(img, "alt") {
                    if alt.chars().count() > 1000 {
                        extreme += 1;
                    }
                }
            }
        }
        // ~400 pages × ~8 informative alts × 0.2% ≈ 6 expected.
        assert!(extreme >= 1, "no extreme alt texts planted");
    }
}
