//! Page rendering: [`SitePlan`] → HTML + ground truth.
//!
//! Rendering is deterministic in `(plan.seed, variant, path)`. Alongside
//! the HTML the renderer returns a [`PageTruth`] describing exactly what it
//! planted, so integration tests can assert the crawl→extract→classify
//! pipeline *recovers* the planted distributions — the core correctness
//! argument of the reproduction.
//!
//! ## The render arena
//!
//! The hot entry point is [`render_into`], which renders through a
//! caller-owned [`RenderScratch`]: pooled [`TextGenerator`]s reseeded per
//! page, reusable label/attribute/paragraph buffers, and one recycled
//! [`HtmlBuilder`] whose output buffer amortises to the page size. In
//! steady state a render performs **no heap allocation** — every string the
//! old path returned is now appended into scratch. [`render`] is the
//! allocating convenience wrapper (fresh scratch per call) and the oracle
//! anchor: both paths are byte- and RNG-draw-identical (pinned against the
//! preserved pre-arena renderer in `langcrux-bench`). [`ScratchPool`]
//! shares scratches across crawl workers.
//!
//! Layout of the localized variant (per archetype counts):
//!
//! ```text
//! <!DOCTYPE html><html lang=…><head><title>…</title></head><body>
//!   <header><nav> links … </nav></header>
//!   <main>
//!     <h1>headline</h1> paragraphs (native/English mix per plan)
//!     <img alt=…> · <svg role=img><title>…</title></svg> · <iframe title=…>
//!     <details><summary>…</summary></details> · <object>…</object>
//!     <form> <label for=…>…</label><input> · <input type=image alt=…>
//!            <select aria-label=…> · <input type=submit value=…> </form>
//!     <button aria-label=…>visible</button> …
//!   </main>
//!   <footer> links … </footer>
//! </body></html>
//! ```
//!
//! The **global** variant keeps the same structure but serves
//! English-dominant visible text and English accessibility text — what a
//! cloud-vantage crawler sees. The **restricted** variant is a bot-wall
//! stub.

use crate::calibration::{element_calibration, estimated_page_bytes};
use crate::sample::{heavy_tail_len, int_between};
use crate::site::{GapPlan, LangBucket, SitePlan};
use langcrux_filter::DiscardCategory;
use langcrux_html::HtmlBuilder;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::{dict, rng, Language};
use langcrux_net::ContentVariant;
use langcrux_textgen::{MixedGenerator, TextGenerator};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Expected distinguishing characters per sentence for `lang`, relative to
/// English. CJK sentences carry ~0.4× the characters of an English sentence
/// with the same word count, so hitting a *character-share* target requires
/// boosting the native *sentence* probability. The ratio is measured once
/// per language from fixed-seed samples (deterministic) and cached.
fn char_ratio(lang: Language) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<Language, f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = cache.lock().expect("ratio cache").get(&lang) {
        return *v;
    }
    let mean_chars = |l: Language| -> f64 {
        use langcrux_lang::script::ScriptHistogram;
        let mut g = TextGenerator::new(l, 0xC0FFEE);
        let mut total = 0usize;
        const SAMPLES: usize = 40;
        for _ in 0..SAMPLES {
            let hist = ScriptHistogram::of(&g.sentence());
            total += l
                .evidence_scripts()
                .iter()
                .map(|&s| hist.count(s))
                .sum::<usize>();
        }
        total as f64 / SAMPLES as f64
    };
    let ratio = (mean_chars(lang) / mean_chars(Language::English)).max(0.05);
    cache.lock().expect("ratio cache").insert(lang, ratio);
    ratio
}

/// Native-sentence probability needed for a target native *character*
/// share `t`, given the language's char ratio `r`: solves
/// `p·r / (p·r + (1-p)) = t`.
fn native_sentence_prob(target_share: f64, ratio: f64) -> f64 {
    let t = target_share.clamp(0.0, 1.0);
    (t / (ratio + t * (1.0 - ratio))).clamp(0.0, 1.0)
}

/// What was planted for one element kind on one page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindTruth {
    pub total: u32,
    pub missing: u32,
    pub empty: u32,
    /// Indexed by `DiscardCategory::ALL` order.
    pub uninformative: [u32; 11],
    pub informative_native: u32,
    pub informative_english: u32,
    pub informative_mixed: u32,
}

impl KindTruth {
    pub fn uninformative_total(&self) -> u32 {
        self.uninformative.iter().sum()
    }

    pub fn informative_total(&self) -> u32 {
        self.informative_native + self.informative_english + self.informative_mixed
    }

    pub fn merge(&mut self, other: &KindTruth) {
        self.total += other.total;
        self.missing += other.missing;
        self.empty += other.empty;
        for i in 0..11 {
            self.uninformative[i] += other.uninformative[i];
        }
        self.informative_native += other.informative_native;
        self.informative_english += other.informative_english;
        self.informative_mixed += other.informative_mixed;
    }
}

/// Translation-gap scenarios actually rendered into one page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapTruth {
    /// Nav/footer chrome was rendered in English instead of the page mix.
    pub chrome: bool,
    /// `<section lang=<native>>` blocks holding English text.
    pub attr_mismatch: u32,
    /// `<section lang="en">` correctly-tagged English blocks (controls —
    /// detection must NOT flag these).
    pub control_tagged: u32,
    /// Unmarked English `<aside>` fallback blocks.
    pub fallback: u32,
}

impl GapTruth {
    /// Number of regions detection is expected to flag (chrome counts as
    /// two: the nav and the footer each form a region).
    pub fn expected_gap_regions(&self) -> u32 {
        u32::from(self.chrome) * 2 + self.attr_mismatch + self.fallback
    }
}

/// Ground truth for one rendered page.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PageTruth {
    /// Indexed by `ElementKind::ALL` order.
    pub per_kind: [KindTruth; 12],
    /// The plan's target visible native share at render time.
    pub target_visible_native: f64,
    /// Translation-gap scenarios rendered into this page.
    pub gaps: GapTruth,
}

impl PageTruth {
    pub fn kind(&self, kind: ElementKind) -> &KindTruth {
        &self.per_kind[kind_index(kind)]
    }
}

fn sample_category(r: &mut StdRng, dist: &[f64; 11]) -> DiscardCategory {
    let total: f64 = dist.iter().sum();
    let mut roll = r.gen::<f64>() * total;
    for (i, &w) in dist.iter().enumerate() {
        if roll < w {
            return DiscardCategory::ALL[i];
        }
        roll -= w;
    }
    DiscardCategory::ALL[10]
}

fn kind_index(kind: ElementKind) -> usize {
    ElementKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

/// The pooled generators reseeded once per page. Split out of
/// [`RenderScratch`] so the [`Renderer`] can borrow the generators while
/// the builder and string buffers are lent out independently.
#[derive(Debug)]
struct GenScratch {
    rng: StdRng,
    native: TextGenerator,
    english: TextGenerator,
    mixed: MixedGenerator,
}

impl GenScratch {
    fn new() -> Self {
        GenScratch {
            rng: rng::rng_for(0, &[0]),
            native: TextGenerator::new(Language::English, 0),
            english: TextGenerator::new(Language::English, 0),
            mixed: MixedGenerator::new(Language::English, 0, 0.5),
        }
    }
}

/// A reusable render arena: everything one page render needs to run
/// without allocating. Create once per worker (or lease from a
/// [`ScratchPool`]) and pass to [`render_into`] for every page.
#[derive(Debug)]
pub struct RenderScratch {
    builder: HtmlBuilder,
    gen: GenScratch,
    /// Visible-text buffer (headline/paragraph/button text…).
    text: String,
    /// Planted accessibility-label buffer.
    label: String,
    /// Attribute-value buffer (`/img/3.jpg`, `field-2`, …).
    attr: String,
}

impl RenderScratch {
    /// A fresh arena with the output buffer pre-sized to the calibrated
    /// page estimate.
    pub fn new() -> Self {
        RenderScratch {
            builder: HtmlBuilder::document_sized(estimated_page_bytes()),
            gen: GenScratch::new(),
            text: String::with_capacity(512),
            label: String::with_capacity(128),
            attr: String::with_capacity(32),
        }
    }
}

impl Default for RenderScratch {
    fn default() -> Self {
        RenderScratch::new()
    }
}

/// A shared pool of [`RenderScratch`] arenas.
///
/// The corpus resolver renders inside the simulated internet, where any
/// crawl worker may trigger a page build; the pool hands each concurrent
/// render its own arena (one lock op per lease — negligible against the
/// ~100 µs render) and recycles arenas as workers finish, so steady-state
/// crawling performs zero render allocations regardless of worker count.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: Mutex<Vec<RenderScratch>>,
}

impl ScratchPool {
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Lease an arena (creating one if the pool is dry), run `f`, return
    /// the arena to the pool.
    pub fn with<R>(&self, f: impl FnOnce(&mut RenderScratch) -> R) -> R {
        let mut scratch = self
            .pool
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        let result = f(&mut scratch);
        self.pool.lock().expect("scratch pool").push(scratch);
        result
    }

    /// Arenas currently parked in the pool (observability/tests).
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("scratch pool").len()
    }
}

/// Render a page for the plan/variant/path. Deterministic.
///
/// Convenience wrapper over [`render_into`] with a fresh arena per call —
/// byte-identical to the pooled path. Hot loops (the corpus content
/// server, benchmarks) should hold a [`RenderScratch`] and call
/// [`render_into`] instead.
pub fn render(plan: &SitePlan, variant: ContentVariant, path: &str) -> (String, PageTruth) {
    let mut scratch = RenderScratch::new();
    let mut out = String::new();
    let truth = render_into(plan, variant, path, &mut scratch, &mut out);
    (out, truth)
}

/// Render a page through a reusable arena, appending the HTML to `out`.
///
/// Output bytes and RNG draws are independent of the arena's history —
/// every generator is reseeded from `(plan.seed, variant, path)` and every
/// buffer reset — so `(plan, variant, path)` alone determines the page at
/// any worker count (the corpus determinism contract).
pub fn render_into(
    plan: &SitePlan,
    variant: ContentVariant,
    path: &str,
    scratch: &mut RenderScratch,
    out: &mut String,
) -> PageTruth {
    // Key = (host, variant): deterministic across worker counts, and the
    // span nests inside crawl.fetch when rendering answers a fetch.
    let _render_span = langcrux_obs::trace::span(
        "webgen.render",
        langcrux_obs::trace::key_str(&plan.host) ^ (variant as u64 + 1),
    );
    let RenderScratch {
        builder,
        gen,
        text,
        label,
        attr,
    } = scratch;
    builder.reset_document();
    let truth = match variant {
        ContentVariant::Restricted => {
            render_restricted_into(plan, builder, text);
            PageTruth::default()
        }
        ContentVariant::Localized | ContentVariant::Global => {
            Renderer::attach(plan, variant, path, gen).render(builder, text, label, attr)
        }
    };
    out.push_str(builder.as_str());
    truth
}

fn render_restricted_into(plan: &SitePlan, b: &mut HtmlBuilder, text: &mut String) {
    b.open("html", &[("lang", Some("en"))]);
    b.open("head", &[]);
    b.leaf("title", &[], "Access denied");
    b.close();
    b.open("body", &[]);
    text.clear();
    let _ = write!(
        text,
        "Access to {} from your network is restricted. Please disable \
         proxy or VPN services and try again.",
        plan.host
    );
    b.leaf("p", &[], text);
    b.close();
    b.close();
}

/// What [`Renderer::plant`] decided for one slot; informative and
/// uninformative text lands in the caller's label buffer (the language
/// bucket / discard category only matter to the truth counters).
enum Planted {
    Missing,
    Empty,
    /// The label buffer holds the planted text.
    Text,
}

struct Renderer<'a> {
    plan: &'a SitePlan,
    variant: ContentVariant,
    g: &'a mut GenScratch,
    truth: PageTruth,
    /// Effective visible-native share for this variant.
    visible_native: f64,
    counter: u32,
    /// Gap scenarios active for this render (the plan's scenarios on the
    /// localized variant; always off on global/restricted, which are
    /// English-dominant or stubs anyway).
    gaps: GapPlan,
    /// Dedicated RNG stream (`0x55`) for gap-block sampling. Never shared
    /// with `g.rng`, so a plan without scenarios renders byte- and
    /// draw-identically whether or not gap support exists.
    gap_rng: StdRng,
}

impl<'a> Renderer<'a> {
    fn attach(
        plan: &'a SitePlan,
        variant: ContentVariant,
        path: &str,
        g: &'a mut GenScratch,
    ) -> Self {
        let vstream = match variant {
            ContentVariant::Localized => 1,
            ContentVariant::Global => 2,
            ContentVariant::Restricted => 3,
        };
        let page_seed = rng::derive(plan.seed, &[vstream, rng::stream_id(path)]);
        let native_lang = plan.native_language();
        let target_share = match variant {
            ContentVariant::Localized => plan.visible_native_share,
            // The global variant is English-dominant: the residual native
            // share models navigation crumbs and brand names.
            ContentVariant::Global => (plan.visible_native_share * 0.12).min(0.10),
            ContentVariant::Restricted => 0.0,
        };
        // Convert the character-share target into a sentence probability
        // (CJK sentences carry fewer characters; see char_ratio()).
        let visible_native = native_sentence_prob(target_share, char_ratio(native_lang));
        g.rng = rng::rng_for(page_seed, &[0x11]);
        g.native
            .reseed(native_lang, rng::derive(page_seed, &[0x22]));
        g.english
            .reseed(Language::English, rng::derive(page_seed, &[0x33]));
        g.mixed
            .reseed(native_lang, rng::derive(page_seed, &[0x44]), 0.5);
        let gaps = if variant == ContentVariant::Localized {
            plan.gaps
        } else {
            GapPlan::default()
        };
        Renderer {
            plan,
            variant,
            g,
            truth: PageTruth {
                target_visible_native: target_share,
                ..PageTruth::default()
            },
            visible_native,
            counter: 0,
            gaps,
            gap_rng: rng::rng_for(page_seed, &[0x55]),
        }
    }

    fn next_id(&mut self) -> u32 {
        self.counter += 1;
        self.counter
    }

    /// Visible text in the page's language mix, appended to `out`.
    fn append_visible_phrase(&mut self, min: usize, max: usize, out: &mut String) {
        if self.g.rng.gen::<f64>() < self.visible_native {
            self.g.native.append_phrase(min, max, out);
        } else {
            self.g.english.append_phrase(min, max, out);
        }
    }

    /// One visible sentence in the page's language mix, appended to `out`.
    fn append_visible_sentence(&mut self, out: &mut String) {
        if self.g.rng.gen::<f64>() < self.visible_native {
            self.g.native.append_sentence(out);
        } else {
            self.g.english.append_sentence(out);
        }
    }

    /// Count of elements of `kind` for this page.
    fn count_for(&mut self, kind: ElementKind) -> usize {
        let cal = element_calibration(kind);
        let base = int_between(&mut self.g.rng, cal.per_page.0, cal.per_page.1);
        let factor = self.plan.archetype.count_factor(kind);
        ((base as f64 * factor).round() as usize).max(cal.per_page.0)
    }

    /// Decide what to plant for one slot of `kind`, record the truth, and
    /// (for text outcomes) write the label into `label`.
    fn plant(&mut self, kind: ElementKind, label: &mut String) -> Planted {
        let (missing_rate, empty_rate) = self.plan.rates(kind);
        let truth = &mut self.truth.per_kind[kind_index(kind)];
        truth.total += 1;

        let roll: f64 = self.g.rng.gen();
        if roll < missing_rate {
            truth.missing += 1;
            return Planted::Missing;
        }
        if roll < missing_rate + empty_rate {
            truth.empty += 1;
            return Planted::Empty;
        }

        label.clear();
        let (discard_total, discard_dist) = self.plan.discard_profile(kind);
        if self.g.rng.gen::<f64>() < discard_total {
            let cat = sample_category(&mut self.g.rng, &discard_dist);
            self.append_uninformative(kind, cat, label);
            self.truth.per_kind[kind_index(kind)].uninformative[DiscardCategory::ALL
                .iter()
                .position(|&c| c == cat)
                .expect("cat")] += 1;
            return Planted::Text;
        }

        // Informative label. The global variant serves English a11y text.
        let bucket = if self.variant == ContentVariant::Global {
            LangBucket::English
        } else {
            self.plan.sample_bucket(&mut self.g.rng)
        };
        self.append_informative(kind, bucket, label);
        let truth = &mut self.truth.per_kind[kind_index(kind)];
        match bucket {
            LangBucket::Native => truth.informative_native += 1,
            LangBucket::English => truth.informative_english += 1,
            LangBucket::Mixed => truth.informative_mixed += 1,
        }
        Planted::Text
    }

    fn append_informative(&mut self, kind: ElementKind, bucket: LangBucket, out: &mut String) {
        let cal = element_calibration(kind);
        let (min, max) = cal.words;
        // Thai/CJK single tokens must clear the filter's length bars to
        // stay informative; widen the floor for continua scripts.
        let native_lang = self.plan.native_language();
        let min = if native_lang == Language::Thai && bucket != LangBucket::English {
            min.max(3)
        } else if bucket == LangBucket::Mixed {
            min.max(2)
        } else {
            min
        };
        let max = max.max(min);
        let start = out.len();
        match bucket {
            LangBucket::Native => self.g.native.append_phrase(min, max, out),
            LangBucket::English => self.g.english.append_phrase(min, max, out),
            LangBucket::Mixed => self.g.mixed.append_phrase(min, max, out),
        }
        if cal.outlier_chance > 0.0 && self.g.rng.gen::<f64>() < cal.outlier_chance {
            // Same draw order as the historical path: the base phrase is
            // generated first, then discarded in favour of the outlier.
            out.truncate(start);
            self.append_outlier(bucket, out);
        }
    }

    /// Appendix E: extreme alt texts — entire paragraphs or boilerplate
    /// dumps mistakenly placed in accessibility attributes.
    fn append_outlier(&mut self, bucket: LangBucket, out: &mut String) {
        let target = heavy_tail_len(&mut self.g.rng, (1_200, 4_000), (8_000, 260_000), 0.10);
        out.reserve(target + 64);
        // Track the char count incrementally: re-scanning a 260k-char
        // outlier per appended paragraph is quadratic.
        let mut chars = 0usize;
        while chars < target {
            let before = out.len();
            match bucket {
                LangBucket::Native => self.g.native.append_paragraph(3, out),
                _ => self.g.english.append_paragraph(3, out),
            }
            chars += out[before..].chars().count();
            out.push(' ');
            chars += 1;
        }
    }

    fn append_uninformative(&mut self, _kind: ElementKind, cat: DiscardCategory, out: &mut String) {
        let n = self.next_id();
        let native = self.plan.native_language();
        // Label-language choice for dictionary categories follows the
        // site's a11y language profile (an English-defaulting site plants
        // English "search" buttons).
        let use_native = {
            let (nat, _, mix) = self.plan.lang_weights;
            self.g.rng.gen::<f64>() < (nat + mix * 0.5)
        };
        match cat {
            DiscardCategory::Emoji => {
                const EMOJI: &[&str] = &["📷", "🔍", "▶", "✕", "☰", "⭐", "➜", "🏠", "📧"];
                out.push_str(EMOJI[self.g.rng.gen_range(0..EMOJI.len())]);
            }
            DiscardCategory::TooShort => {
                if native.primary_script().is_cjk() && use_native {
                    let start = out.len();
                    self.g.native.append_word(out);
                    // Keep only the first char (historical `take(1)`).
                    if let Some(first) = out[start..].chars().next() {
                        out.truncate(start + first.len_utf8());
                    }
                } else {
                    const SHORT: &[&str] = &["go", "ok", "..", ">>", "NA", "x"];
                    out.push_str(SHORT[self.g.rng.gen_range(0..SHORT.len())]);
                }
            }
            DiscardCategory::FileName => {
                const STEMS: &[&str] = &["banner_img", "photo-", "IMG_", "slide_", "pic", "hero-"];
                const EXTS: &[&str] = &["jpg", "png", "jpeg", "webp", "gif"];
                let stem = STEMS[self.g.rng.gen_range(0..STEMS.len())];
                let ext = EXTS[self.g.rng.gen_range(0..EXTS.len())];
                let _ = write!(out, "{stem}{n}.{ext}");
            }
            DiscardCategory::UrlOrFilePath => {
                if self.g.rng.gen_bool(0.5) {
                    let _ = write!(out, "https://{}/images/{}.png", self.plan.host, n);
                } else {
                    let _ = write!(out, "/assets/img/item-{n}.svg");
                }
            }
            DiscardCategory::GenericAction => {
                let lang = if use_native {
                    native
                } else {
                    Language::English
                };
                let pool = dict::actions_in(lang);
                let pool = if pool.is_empty() {
                    dict::actions_in(Language::English)
                } else {
                    pool
                };
                out.push_str(pool[self.g.rng.gen_range(0..pool.len())]);
            }
            DiscardCategory::Placeholder => {
                let lang = if use_native {
                    native
                } else {
                    Language::English
                };
                let pool = dict::placeholders_in(lang);
                let pool = if pool.is_empty() {
                    dict::placeholders_in(Language::English)
                } else {
                    pool
                };
                out.push_str(pool[self.g.rng.gen_range(0..pool.len())]);
            }
            DiscardCategory::DevLabel => {
                const HEADS: &[&str] = &["btn", "nav", "img", "ico", "hdr", "card", "mod"];
                const TAILS: &[&str] = &["submit", "menu", "main", "item", "box", "wrap", "toggle"];
                let head = HEADS[self.g.rng.gen_range(0..HEADS.len())];
                let tail = TAILS[self.g.rng.gen_range(0..TAILS.len())];
                match self.g.rng.gen_range(0..3u8) {
                    0 => {
                        let _ = write!(out, "{head}-{tail}");
                    }
                    1 => {
                        let _ = write!(out, "{head}_{tail}");
                    }
                    _ => {
                        // headTailCap: capitalise the tail's first letter
                        // (tails are ASCII).
                        out.push_str(head);
                        out.push(tail.as_bytes()[0].to_ascii_uppercase() as char);
                        out.push_str(&tail[1..]);
                    }
                }
            }
            DiscardCategory::LabelNumberPattern => {
                const WORDS: &[&str] = &["image", "button", "slide", "figure", "banner", "item"];
                let word = WORDS[self.g.rng.gen_range(0..WORDS.len())];
                let num = self.g.rng.gen_range(1..20u8);
                let _ = write!(out, "{word} {num}");
            }
            DiscardCategory::SingleWord => {
                if use_native && !native.primary_script().is_cjk() {
                    // A short native single word (below the keep thresholds).
                    for _ in 0..8 {
                        let start = out.len();
                        self.g.native.append_word(out);
                        let w = &out[start..];
                        let len = w.chars().count();
                        if (3..8).contains(&len) && !w.contains(' ') {
                            return;
                        }
                        out.truncate(start);
                    }
                }
                const WORDS: &[&str] = &[
                    "photo", "economy", "sports", "market", "health", "culture", "weather",
                    "travel", "profile",
                ];
                out.push_str(WORDS[self.g.rng.gen_range(0..WORDS.len())]);
            }
            DiscardCategory::MixedAlnum => {
                const STEMS: &[&str] = &["img", "icon", "pic", "fig", "ad", "file"];
                let stem = STEMS[self.g.rng.gen_range(0..STEMS.len())];
                let _ = write!(out, "{stem}{n}");
            }
            DiscardCategory::OrdinalPhrase => {
                let b = self.g.rng.gen_range(3..12u8);
                let a = self.g.rng.gen_range(1..=b);
                if self.g.rng.gen_bool(0.5) {
                    let _ = write!(out, "{a} of {b}");
                } else {
                    let _ = write!(out, "{a}/{b}");
                }
            }
        }
    }

    /// Test-only returning wrappers: the plant/detect agreement tests
    /// sample instances directly.
    #[cfg(test)]
    fn uninformative_instance(&mut self, kind: ElementKind, cat: DiscardCategory) -> String {
        let mut out = String::new();
        self.append_uninformative(kind, cat, &mut out);
        out
    }

    #[cfg(test)]
    fn informative_instance(&mut self, kind: ElementKind, bucket: LangBucket) -> String {
        let mut out = String::new();
        self.append_informative(kind, bucket, &mut out);
        out
    }

    /// Stream the page into `b`. The scratch buffers hold, at any moment,
    /// at most one visible text (`text`), one planted label (`label`) and
    /// one attribute value (`attr`) — the three never alias.
    fn render(
        mut self,
        b: &mut HtmlBuilder,
        text: &mut String,
        label: &mut String,
        attr: &mut String,
    ) -> PageTruth {
        self.truth.gaps.chrome = self.gaps.chrome;
        let lang_attr: &str =
            if self.variant == ContentVariant::Global || self.plan.declared_lang_wrong {
                // Wrongly-declared sites keep the template default ("en")
                // even though the content is native — a common real-world
                // authoring error the paper's §1 calls out.
                "en"
            } else {
                self.plan.native_language().tag()
            };
        if self.plan.declares_lang {
            b.open("html", &[("lang", Some(lang_attr))]);
        } else {
            b.open("html", &[]);
        }

        // <head><title> — DocumentTitle slot.
        b.open("head", &[]);
        b.void("meta", &[("charset", Some("utf-8"))]);
        match self.plant(ElementKind::DocumentTitle, label) {
            Planted::Missing => {}
            Planted::Empty => {
                b.leaf("title", &[], "");
            }
            Planted::Text => {
                b.leaf("title", &[], label);
            }
        }
        b.close(); // head

        b.open("body", &[]);

        // Header nav links (a share of all links).
        let total_links = self.count_for(ElementKind::LinkName);
        let nav_links = (total_links / 5).clamp(3, 14);
        b.open("header", &[]);
        b.open("nav", &[]);
        for i in 0..nav_links {
            attr.clear();
            let _ = write!(attr, "/nav/{i}");
            self.render_link(b, text, label, attr, true);
        }
        b.close();
        b.close();

        b.open("main", &[]);
        text.clear();
        self.append_visible_phrase(3, 8, text);
        b.leaf("h1", &[], text);

        // Article paragraphs: the bulk of visible text. One scratch
        // buffer serves every paragraph of the page (allocation diet).
        let paragraphs = int_between(&mut self.g.rng, 6, 16);
        for _ in 0..paragraphs {
            let sentences = int_between(&mut self.g.rng, 2, 5);
            text.clear();
            for _ in 0..sentences {
                self.append_visible_sentence(text);
                text.push(' ');
            }
            b.leaf("p", &[], text.trim());
        }

        self.render_gap_sections(b, text);

        // Images.
        let images = self.count_for(ElementKind::ImageAlt);
        for i in 0..images {
            attr.clear();
            let _ = write!(attr, "/img/{i}.jpg");
            match self.plant(ElementKind::ImageAlt, label) {
                Planted::Missing => {
                    b.void("img", &[("src", Some(attr.as_str()))]);
                }
                Planted::Empty => {
                    b.void("img", &[("src", Some(attr.as_str())), ("alt", Some(""))]);
                }
                Planted::Text => {
                    b.void(
                        "img",
                        &[("src", Some(attr.as_str())), ("alt", Some(label.as_str()))],
                    );
                }
            }
        }

        // Inline SVG icons (svg-img-alt: <title> child or aria-label).
        let svgs = self.count_for(ElementKind::SvgImgAlt);
        for _ in 0..svgs {
            match self.plant(ElementKind::SvgImgAlt, label) {
                Planted::Missing => {
                    b.open(
                        "svg",
                        &[("role", Some("img")), ("viewBox", Some("0 0 24 24"))],
                    );
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
                Planted::Empty => {
                    b.open("svg", &[("role", Some("img")), ("aria-label", Some(""))]);
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
                Planted::Text => {
                    b.open("svg", &[("role", Some("img"))]);
                    b.leaf("title", &[], label);
                    b.raw("<path d=\"M0 0h24v24H0z\"/>");
                    b.close();
                }
            }
        }

        // Iframes.
        let frames = self.count_for(ElementKind::FrameTitle);
        for i in 0..frames {
            attr.clear();
            let _ = write!(attr, "/embed/{i}");
            match self.plant(ElementKind::FrameTitle, label) {
                Planted::Missing => {
                    b.leaf("iframe", &[("src", Some(attr.as_str()))], "");
                }
                Planted::Empty => {
                    b.leaf(
                        "iframe",
                        &[("src", Some(attr.as_str())), ("title", Some(""))],
                        "",
                    );
                }
                Planted::Text => {
                    b.leaf(
                        "iframe",
                        &[
                            ("src", Some(attr.as_str())),
                            ("title", Some(label.as_str())),
                        ],
                        "",
                    );
                }
            }
        }

        // Details/summary.
        let summaries = self.count_for(ElementKind::SummaryName);
        for _ in 0..summaries {
            b.open("details", &[]);
            match self.plant(ElementKind::SummaryName, label) {
                Planted::Missing => {
                    b.leaf("summary", &[], "");
                }
                Planted::Empty => {
                    b.leaf("summary", &[("aria-label", Some(""))], "");
                }
                Planted::Text => {
                    b.leaf("summary", &[], label);
                }
            }
            text.clear();
            self.append_visible_sentence(text);
            b.leaf("p", &[], text);
            b.close();
        }

        // Object embeds.
        let objects = self.count_for(ElementKind::ObjectAlt);
        for i in 0..objects {
            attr.clear();
            let _ = write!(attr, "/media/{i}.pdf");
            match self.plant(ElementKind::ObjectAlt, label) {
                Planted::Missing => {
                    b.leaf("object", &[("data", Some(attr.as_str()))], "");
                }
                Planted::Empty => {
                    b.leaf(
                        "object",
                        &[("data", Some(attr.as_str())), ("aria-label", Some(""))],
                        "",
                    );
                }
                Planted::Text => {
                    b.leaf(
                        "object",
                        &[
                            ("data", Some(attr.as_str())),
                            ("aria-label", Some(label.as_str())),
                        ],
                        "",
                    );
                }
            }
        }

        // Form: labels + inputs, image inputs, selects, submit buttons.
        b.open(
            "form",
            &[("action", Some("/submit")), ("method", Some("post"))],
        );
        let labels = self.count_for(ElementKind::Label);
        for i in 0..labels {
            attr.clear();
            let _ = write!(attr, "field-{i}");
            match self.plant(ElementKind::Label, label) {
                Planted::Missing => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("text")),
                            ("id", Some(attr.as_str())),
                            ("name", Some(attr.as_str())),
                        ],
                    );
                }
                Planted::Empty => {
                    b.leaf("label", &[("for", Some(attr.as_str()))], "");
                    b.void(
                        "input",
                        &[("type", Some("text")), ("id", Some(attr.as_str()))],
                    );
                }
                Planted::Text => {
                    b.leaf("label", &[("for", Some(attr.as_str()))], label);
                    b.void(
                        "input",
                        &[("type", Some("text")), ("id", Some(attr.as_str()))],
                    );
                }
            }
        }
        let image_inputs = self.count_for(ElementKind::InputImageAlt);
        for i in 0..image_inputs {
            attr.clear();
            let _ = write!(attr, "/img/btn{i}.png");
            match self.plant(ElementKind::InputImageAlt, label) {
                Planted::Missing => {
                    b.void(
                        "input",
                        &[("type", Some("image")), ("src", Some(attr.as_str()))],
                    );
                }
                Planted::Empty => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("image")),
                            ("src", Some(attr.as_str())),
                            ("alt", Some("")),
                        ],
                    );
                }
                Planted::Text => {
                    b.void(
                        "input",
                        &[
                            ("type", Some("image")),
                            ("src", Some(attr.as_str())),
                            ("alt", Some(label.as_str())),
                        ],
                    );
                }
            }
        }
        let selects = self.count_for(ElementKind::SelectName);
        for i in 0..selects {
            attr.clear();
            let _ = write!(attr, "select-{i}");
            match self.plant(ElementKind::SelectName, label) {
                Planted::Missing => {
                    b.open("select", &[("id", Some(attr.as_str()))]);
                }
                Planted::Empty => {
                    b.open(
                        "select",
                        &[("id", Some(attr.as_str())), ("aria-label", Some(""))],
                    );
                }
                Planted::Text => {
                    b.open(
                        "select",
                        &[
                            ("id", Some(attr.as_str())),
                            ("aria-label", Some(label.as_str())),
                        ],
                    );
                }
            }
            const OPTION_VALUES: [&str; 3] = ["0", "1", "2"];
            for value in OPTION_VALUES {
                text.clear();
                self.append_visible_phrase(1, 2, text);
                b.leaf("option", &[("value", Some(value))], text);
            }
            b.close();
        }
        let input_buttons = self.count_for(ElementKind::InputButtonName);
        for _ in 0..input_buttons {
            match self.plant(ElementKind::InputButtonName, label) {
                Planted::Missing => {
                    b.void("input", &[("type", Some("submit"))]);
                }
                Planted::Empty => {
                    b.void("input", &[("type", Some("submit")), ("value", Some(""))]);
                }
                Planted::Text => {
                    b.void(
                        "input",
                        &[("type", Some("submit")), ("value", Some(label.as_str()))],
                    );
                }
            }
        }
        b.close(); // form

        // Buttons (visible text + optional aria-label).
        let buttons = self.count_for(ElementKind::ButtonName);
        for _ in 0..buttons {
            text.clear();
            self.append_visible_phrase(1, 2, text);
            match self.plant(ElementKind::ButtonName, label) {
                Planted::Missing => {
                    b.leaf("button", &[("type", Some("button"))], text);
                }
                Planted::Empty => {
                    b.leaf(
                        "button",
                        &[("type", Some("button")), ("aria-label", Some(""))],
                        text,
                    );
                }
                Planted::Text => {
                    b.leaf(
                        "button",
                        &[
                            ("type", Some("button")),
                            ("aria-label", Some(label.as_str())),
                        ],
                        text,
                    );
                }
            }
        }

        // Body links.
        let body_links = total_links.saturating_sub(nav_links);
        for i in 0..body_links {
            attr.clear();
            let _ = write!(attr, "/article/{i}");
            self.render_link(b, text, label, attr, false);
        }
        b.close(); // main

        if self.gaps.fallback {
            // Unmarked English fallback block: no lang attribute, not a
            // chrome landmark's normal content — exactly the "fallback
            // strings shipped untranslated" scenario.
            b.open("aside", &[]);
            self.append_gap_block(b, text);
            b.close();
            self.truth.gaps.fallback += 1;
        }

        b.open("footer", &[]);
        text.clear();
        if self.gaps.chrome {
            self.g.english.append_sentence(text);
        } else {
            self.append_visible_sentence(text);
        }
        b.leaf("p", &[], text);
        b.close();

        b.close(); // body
        b.close(); // html
        self.truth
    }

    /// Partial-localisation section blocks, rendered inside `<main>`.
    ///
    /// Gap sampling draws only from the dedicated `gap_rng` stream and the
    /// English generator; a plan with no scenarios reaches none of it, so
    /// the default corpus is untouched byte for byte.
    fn render_gap_sections(&mut self, b: &mut HtmlBuilder, text: &mut String) {
        if self.gaps.attr_mismatch {
            // Tagged with the native language, shipped in English: the
            // lang metadata contradicts the content.
            b.open(
                "section",
                &[("lang", Some(self.plan.native_language().tag()))],
            );
            self.append_gap_block(b, text);
            b.close();
            self.truth.gaps.attr_mismatch += 1;
        }
        if self.gaps.control_tagged {
            // Correctly tagged English: the control detection must pass.
            b.open("section", &[("lang", Some("en"))]);
            self.append_gap_block(b, text);
            b.close();
            self.truth.gaps.control_tagged += 1;
        }
    }

    /// A paragraph of English sentences for a gap/control block.
    fn append_gap_block(&mut self, b: &mut HtmlBuilder, text: &mut String) {
        let sentences = int_between(&mut self.gap_rng, 2, 4);
        text.clear();
        for _ in 0..sentences {
            self.g.english.append_sentence(text);
            text.push(' ');
        }
        b.leaf("p", &[], text.trim());
    }

    fn render_link(
        &mut self,
        b: &mut HtmlBuilder,
        text: &mut String,
        label: &mut String,
        href: &str,
        chrome: bool,
    ) {
        text.clear();
        if chrome && self.gaps.chrome {
            // Untranslated chrome: nav link text stays English regardless
            // of the page's language mix. Two-word floor keeps the nav
            // region above the detector's evidence threshold even on
            // three-link navs.
            self.g.english.append_phrase(2, 4, text);
        } else {
            self.append_visible_phrase(1, 4, text);
        }
        match self.plant(ElementKind::LinkName, label) {
            Planted::Missing => {
                b.leaf("a", &[("href", Some(href))], text);
            }
            Planted::Empty => {
                b.leaf("a", &[("href", Some(href)), ("aria-label", Some(""))], text);
            }
            Planted::Text => {
                b.leaf(
                    "a",
                    &[("href", Some(href)), ("aria-label", Some(label.as_str()))],
                    text,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_html::{parse, visible_text};
    use langcrux_lang::Country;

    fn plan(country: Country, idx: u32) -> SitePlan {
        SitePlan::build(1234, country, idx, Some(true))
    }

    #[test]
    fn render_is_deterministic() {
        let p = plan(Country::Bangladesh, 0);
        let (a, ta) = render(&p, ContentVariant::Localized, "/");
        let (b, tb) = render(&p, ContentVariant::Localized, "/");
        assert_eq!(a, b);
        assert_eq!(ta.per_kind, tb.per_kind);
    }

    #[test]
    fn pooled_scratch_renders_are_history_independent() {
        // The same plan must render identically on a cold scratch, on a
        // scratch that just rendered other pages, and via the wrapper.
        let p = plan(Country::Japan, 4);
        let (expect, expect_truth) = render(&p, ContentVariant::Localized, "/");
        let mut scratch = RenderScratch::new();
        let mut out = String::new();
        for warm in [Country::Thailand, Country::Russia, Country::Egypt] {
            out.clear();
            render_into(
                &plan(warm, 9),
                ContentVariant::Global,
                "/",
                &mut scratch,
                &mut out,
            );
        }
        out.clear();
        let truth = render_into(&p, ContentVariant::Localized, "/", &mut scratch, &mut out);
        assert_eq!(out, expect);
        assert_eq!(truth, expect_truth);
    }

    #[test]
    fn scratch_pool_recycles_arenas() {
        let pool = ScratchPool::new();
        let p = plan(Country::Greece, 1);
        let (expect, _) = render(&p, ContentVariant::Localized, "/");
        for _ in 0..3 {
            let html = pool.with(|scratch| {
                let mut out = String::new();
                render_into(&p, ContentVariant::Localized, "/", scratch, &mut out);
                out
            });
            assert_eq!(html, expect);
        }
        assert_eq!(pool.idle(), 1, "sequential leases reuse one arena");
    }

    #[test]
    fn variants_differ() {
        let p = plan(Country::Bangladesh, 0);
        let (local, _) = render(&p, ContentVariant::Localized, "/");
        let (global, _) = render(&p, ContentVariant::Global, "/");
        assert_ne!(local, global);
    }

    #[test]
    fn html_parses_and_contains_structure() {
        let p = plan(Country::Thailand, 3);
        let (html, truth) = render(&p, ContentVariant::Localized, "/");
        let doc = parse(&html);
        assert_eq!(
            doc.elements_named("img").count(),
            truth.kind(ElementKind::ImageAlt).total as usize
        );
        assert_eq!(
            doc.elements_named("button").count(),
            truth.kind(ElementKind::ButtonName).total as usize
        );
        assert_eq!(
            doc.elements_named("a").count(),
            truth.kind(ElementKind::LinkName).total as usize
        );
        assert!(doc.elements_named("form").count() >= 1);
    }

    fn gapped_plan(country: Country, idx: u32) -> SitePlan {
        SitePlan::build_gapped(1234, country, idx, Some(true), true)
    }

    /// First index whose gap plan plants every scenario kind (chrome,
    /// mismatch, control, fallback) for the country/seed above.
    fn full_gap_plan(country: Country) -> SitePlan {
        (0..5_000)
            .map(|i| gapped_plan(country, i))
            .find(|p| {
                p.gaps.chrome && p.gaps.attr_mismatch && p.gaps.control_tagged && p.gaps.fallback
            })
            .expect("some site plants all four scenarios")
    }

    #[test]
    fn gapless_plans_render_identically_under_gap_support() {
        // A plan built with gap sampling enabled but no scenario selected
        // renders byte-identically to the plain build — and the plain
        // build itself must be unchanged by the gap machinery.
        for idx in 0..30 {
            let off = plan(Country::Bangladesh, idx);
            let gapped = gapped_plan(Country::Bangladesh, idx);
            let (html_off, truth_off) = render(&off, ContentVariant::Localized, "/");
            if !gapped.gaps.any() {
                let (html_on, truth_on) = render(&gapped, ContentVariant::Localized, "/");
                assert_eq!(html_off, html_on, "site {idx}");
                assert_eq!(truth_off, truth_on, "site {idx}");
            }
            assert_eq!(truth_off.gaps, GapTruth::default());
            assert!(!html_off.contains("<aside"));
        }
    }

    #[test]
    fn gap_scenarios_render_deterministically_with_structure_intact() {
        let p = full_gap_plan(Country::Thailand);
        let (a, ta) = render(&p, ContentVariant::Localized, "/");
        let (b, tb) = render(&p, ContentVariant::Localized, "/");
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        assert!(ta.gaps.chrome);
        assert_eq!(ta.gaps.attr_mismatch, 1);
        assert_eq!(ta.gaps.control_tagged, 1);
        assert_eq!(ta.gaps.fallback, 1);
        assert_eq!(ta.gaps.expected_gap_regions(), 4);
        // Injected blocks carry no counted element kinds: the structural
        // truth still matches the DOM exactly.
        let doc = parse(&a);
        assert_eq!(
            doc.elements_named("img").count(),
            ta.kind(ElementKind::ImageAlt).total as usize
        );
        assert_eq!(
            doc.elements_named("a").count(),
            ta.kind(ElementKind::LinkName).total as usize
        );
        assert_eq!(doc.elements_named("aside").count(), 1);
        assert_eq!(doc.elements_named("section").count(), 2);
    }

    #[test]
    fn gap_scenarios_only_affect_the_localized_variant() {
        let p = full_gap_plan(Country::Japan);
        let mut ungapped = p.clone();
        ungapped.gaps = crate::site::GapPlan::default();
        let (with_gaps, truth) = render(&p, ContentVariant::Global, "/");
        let (without, _) = render(&ungapped, ContentVariant::Global, "/");
        assert_eq!(with_gaps, without, "global variant ignores gap plans");
        assert_eq!(truth.gaps, GapTruth::default());
    }

    #[test]
    fn rendered_gaps_are_detected_by_the_audit_layer() {
        // End-to-end plant→detect agreement on corpus pages: every
        // scenario the renderer plants must surface in the gap report,
        // and the control section must not.
        use langcrux_audit::{gap_report, GapKind};
        use langcrux_crawl::extract_streaming;
        let mut seen_chrome = 0u32;
        let mut seen_mismatch = 0u32;
        let mut seen_fallback = 0u32;
        for idx in 0..200 {
            let p = gapped_plan(Country::Bangladesh, idx);
            // Mismatch-profile sites have English-heavy visible text where
            // chrome gaps are genuinely undetectable; focus on the
            // native-dominant majority.
            if p.visible_native_share < 0.7 {
                continue;
            }
            let (html, truth) = render(&p, ContentVariant::Localized, "/");
            let report = gap_report(&extract_streaming(&html));
            // On short pages the injected English itself can flip the
            // page-majority script, after which inherited-context regions
            // agree with the (now English) page: detection is only
            // *expected* to fire while the body majority stays native.
            let native_page = report.page_script == Some(p.native_language().primary_script());
            for gap in &report.regions {
                match gap.kind {
                    GapKind::UntranslatedChrome => {
                        // No phantom assert here: a page whose footer
                        // sentence landed all-English by the plan's own
                        // language mix genuinely ships English chrome —
                        // an honest partial-localisation signal.
                        seen_chrome += 1;
                    }
                    GapKind::LangAttrMismatch => {
                        assert!(truth.gaps.attr_mismatch > 0, "{}: phantom mismatch", p.host);
                        assert_eq!(gap.role, "section");
                        seen_mismatch += 1;
                    }
                    GapKind::FallbackText => {
                        assert!(truth.gaps.fallback > 0, "{}: phantom fallback", p.host);
                        assert_eq!(gap.role, "aside");
                        seen_fallback += 1;
                    }
                }
                // The correctly-tagged control never shows up as a gap
                // (chrome regions may legitimately carry an inherited
                // "en" on wrongly-declared pages).
                if gap.role == "section" {
                    assert_ne!(
                        gap.lang.as_deref(),
                        Some("en"),
                        "{}: control flagged",
                        p.host
                    );
                }
            }
            if truth.gaps.chrome && native_page {
                assert!(
                    report
                        .regions
                        .iter()
                        .any(|g| g.kind == GapKind::UntranslatedChrome),
                    "{}: planted chrome gap missed",
                    p.host
                );
            }
            if truth.gaps.attr_mismatch > 0 {
                // The mismatch section is explicitly tagged: detection
                // does not depend on the page majority.
                assert!(
                    report
                        .regions
                        .iter()
                        .any(|g| g.kind == GapKind::LangAttrMismatch),
                    "{}: planted mismatch missed",
                    p.host
                );
            }
            if truth.gaps.fallback > 0 && native_page {
                assert!(
                    report
                        .regions
                        .iter()
                        .any(|g| g.kind == GapKind::FallbackText),
                    "{}: planted fallback missed",
                    p.host
                );
            }
        }
        assert!(seen_chrome > 0 && seen_mismatch > 0 && seen_fallback > 0);
    }

    #[test]
    fn truth_counts_are_consistent() {
        let p = plan(Country::Russia, 5);
        let (_, truth) = render(&p, ContentVariant::Localized, "/");
        for kind in ElementKind::ALL {
            let t = truth.kind(kind);
            assert_eq!(
                t.total,
                t.missing + t.empty + t.uninformative_total() + t.informative_total(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn localized_visible_text_is_native_dominant() {
        use langcrux_langid::composition;
        let p = plan(Country::Japan, 2);
        let (html, _) = render(&p, ContentVariant::Localized, "/");
        let doc = parse(&html);
        let text = visible_text(&doc);
        let c = composition(&text, Language::Japanese);
        assert!(
            c.native_pct > 50.0,
            "native {:.1} (target {:.2})",
            c.native_pct,
            p.visible_native_share
        );
    }

    #[test]
    fn global_visible_text_is_english_dominant() {
        use langcrux_langid::composition;
        let p = plan(Country::Japan, 2);
        let (html, _) = render(&p, ContentVariant::Global, "/");
        let doc = parse(&html);
        let text = visible_text(&doc);
        let c = composition(&text, Language::Japanese);
        assert!(c.english_pct > 70.0, "english {:.1}", c.english_pct);
    }

    #[test]
    fn global_a11y_is_english() {
        let p = plan(Country::Greece, 4);
        let (_, truth) = render(&p, ContentVariant::Global, "/");
        for kind in ElementKind::ALL {
            let t = truth.kind(kind);
            assert_eq!(t.informative_native, 0, "{kind:?}");
            assert_eq!(t.informative_mixed, 0, "{kind:?}");
        }
    }

    #[test]
    fn restricted_page_is_minimal() {
        let p = plan(Country::China, 1);
        let (html, truth) = render(&p, ContentVariant::Restricted, "/");
        assert!(html.contains("restricted"));
        assert!(html.len() < 600);
        assert_eq!(truth.kind(ElementKind::ImageAlt).total, 0);
    }

    #[test]
    fn planted_uninformative_instances_classify_correctly() {
        use langcrux_filter::classify;
        // Aggregate over many pages: planted category must agree with the
        // filter's verdict for the structural categories.
        let mut agree = 0u32;
        let mut total = 0u32;
        let mut scratch = GenScratch::new();
        for idx in 0..12 {
            let p = plan(Country::SouthKorea, idx);
            let mut renderer = Renderer::attach(&p, ContentVariant::Localized, "/", &mut scratch);
            for cat in DiscardCategory::ALL {
                for _ in 0..20 {
                    let instance = renderer.uninformative_instance(ElementKind::ImageAlt, cat);
                    total += 1;
                    if classify(&instance) == Some(cat) {
                        agree += 1;
                    }
                }
            }
        }
        let rate = f64::from(agree) / f64::from(total);
        assert!(rate > 0.90, "plant/detect agreement {rate}");
    }

    #[test]
    fn planted_informative_instances_survive_filter() {
        use langcrux_filter::is_informative;
        let mut survive = 0u32;
        let mut total = 0u32;
        let mut scratch = GenScratch::new();
        for idx in 0..10 {
            let p = plan(Country::Thailand, idx);
            let mut renderer = Renderer::attach(&p, ContentVariant::Localized, "/", &mut scratch);
            for bucket in [LangBucket::Native, LangBucket::English, LangBucket::Mixed] {
                for kind in [
                    ElementKind::ImageAlt,
                    ElementKind::LinkName,
                    ElementKind::ButtonName,
                ] {
                    for _ in 0..10 {
                        let text = renderer.informative_instance(kind, bucket);
                        total += 1;
                        if is_informative(&text) {
                            survive += 1;
                        }
                    }
                }
            }
        }
        let rate = f64::from(survive) / f64::from(total);
        assert!(rate > 0.85, "informative survival {rate}");
    }

    #[test]
    fn outliers_appear_at_calibrated_rate() {
        let mut extreme = 0usize;
        let mut scratch = RenderScratch::new();
        let mut html = String::new();
        for idx in 0..400 {
            let p = plan(Country::India, idx);
            html.clear();
            render_into(&p, ContentVariant::Localized, "/", &mut scratch, &mut html);
            let doc = parse(&html);
            for img in doc.elements_named("img") {
                if let Some(alt) = doc.attr(img, "alt") {
                    if alt.chars().count() > 1000 {
                        extreme += 1;
                    }
                }
            }
        }
        // ~400 pages × ~8 informative alts × 0.2% ≈ 6 expected.
        assert!(extreme >= 1, "no extreme alt texts planted");
    }
}
