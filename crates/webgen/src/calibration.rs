//! Calibration tables.
//!
//! Every distribution the generator plants is parameterised here, with the
//! paper's reported targets quoted next to each value. Two levels:
//!
//! * **Per-element** ([`ElementCalibration`]) — the Table 2 statistics:
//!   per-site missing/empty rate mixtures, informative word-count ranges,
//!   per-page element counts, and outlier plans.
//! * **Per-country** ([`CountryProfile`]) — the Figure 2/3/4/5/7 statistics:
//!   visible native share, the accessibility-language aggregate
//!   (native/english/mixed), the mismatched-site fraction, discard-category
//!   rates, and the CrUX rank model.
//!
//! The analysis pipeline *measures* these values back out of generated
//! HTML; integration tests assert the recovered shapes match the targets
//! within tolerance, which is the end-to-end correctness argument for the
//! whole reproduction.

use crate::sample::RateMixture;
use langcrux_filter::DiscardCategory;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Country;

/// Per-element calibration (Table 2 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct ElementCalibration {
    pub kind: ElementKind,
    /// Distribution of per-site missing rates.
    /// Paper target (median / mean / σ) quoted per entry below.
    pub missing: RateMixture,
    /// Distribution of per-site empty rates (share of all elements of the
    /// kind whose accessibility text is whitespace-only).
    pub empty: RateMixture,
    /// Words per informative label: `(min, max)` inclusive.
    pub words: (usize, usize),
    /// Elements of this kind per page: `(min, max)` inclusive.
    pub per_page: (usize, usize),
    /// Probability that one label of this kind is an extreme outlier
    /// (Appendix E: alt texts exceeding 1000 characters).
    pub outlier_chance: f64,
}

/// The Table 2 calibration for all twelve kinds.
///
/// Missing-rate targets from the paper (median%, mean%, σ):
/// button 71.4/61.9/37.3 · frame 87.5/75.8/30.1 · image 1.9/17.1/28.9 ·
/// input-button 100/93.9/22.6 · input-image 0/35.1/47.2 · label
/// 100/98.6/10.0 · link 100/96.0/12.0 · object 100/94.2/23.3 · select
/// 100/89.8/28.8 · summary 100/90.5/25.8 · svg 100/96.7/15.2.
pub const ELEMENT_CALIBRATIONS: [ElementCalibration; 12] = [
    ElementCalibration {
        kind: ElementKind::ButtonName,
        // med 71.43 / mean 61.92 / σ 37.25
        missing: RateMixture(&[(0.30, 0.95, 1.0), (0.45, 0.55, 0.95), (0.25, 0.0, 0.25)]),
        // med 0 / mean 0.36
        empty: RateMixture(&[(0.95, 0.0, 0.0), (0.05, 0.0, 0.15)]),
        words: (3, 6),
        per_page: (2, 18),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::DocumentTitle,
        // Titles are almost always present; Table 3's document-title quirks
        // are exercised through the audit matrix, not the corpus.
        missing: RateMixture(&[(0.97, 0.0, 0.0), (0.03, 1.0, 1.0)]),
        empty: RateMixture(&[(0.96, 0.0, 0.0), (0.04, 1.0, 1.0)]),
        words: (3, 8),
        per_page: (1, 1),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::ImageAlt,
        // med 1.89 / mean 17.12 / σ 28.86 — most sites alt nearly all
        // images; a minority misses most of them.
        missing: RateMixture(&[(0.62, 0.0, 0.04), (0.23, 0.05, 0.45), (0.15, 0.6, 1.0)]),
        // med 7.46 / mean 25.39 / σ 32.40 — the highest empty rate of all
        // kinds ("possible to pass the Lighthouse audit by setting alt to
        // an empty string").
        empty: RateMixture(&[(0.55, 0.0, 0.10), (0.27, 0.12, 0.55), (0.18, 0.6, 0.95)]),
        words: (3, 7),
        per_page: (10, 44),
        // Table 2: max 261,864 chars but σ only 1332 — outliers are rare.
        outlier_chance: 0.002,
    },
    ElementCalibration {
        kind: ElementKind::FrameTitle,
        // med 87.5 / mean 75.81 / σ 30.09
        missing: RateMixture(&[(0.50, 0.95, 1.0), (0.35, 0.55, 0.95), (0.15, 0.0, 0.3)]),
        empty: RateMixture(&[(0.96, 0.0, 0.0), (0.04, 0.0, 0.10)]),
        words: (1, 3),
        per_page: (0, 1),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::SummaryName,
        // med 100 / mean 90.47 / σ 25.84
        missing: RateMixture(&[(0.82, 1.0, 1.0), (0.18, 0.3, 0.65)]),
        empty: RateMixture(&[(0.97, 0.0, 0.0), (0.03, 0.0, 0.12)]),
        words: (1, 1),
        per_page: (0, 3),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::Label,
        // med 100 / mean 98.55 / σ 10.01 — the least-labelled kind.
        missing: RateMixture(&[(0.95, 1.0, 1.0), (0.05, 0.6, 0.95)]),
        empty: RateMixture(&[(0.98, 0.0, 0.0), (0.02, 0.0, 0.05)]),
        words: (1, 2),
        per_page: (0, 5),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::InputImageAlt,
        // med 0 / mean 35.07 / σ 47.17 — bimodal (few elements per site).
        missing: RateMixture(&[(0.60, 0.0, 0.0), (0.05, 0.3, 0.7), (0.35, 1.0, 1.0)]),
        // med 0 / mean 4.85 / σ 21.27
        empty: RateMixture(&[(0.92, 0.0, 0.0), (0.08, 0.3, 0.9)]),
        words: (1, 2),
        per_page: (0, 2),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::SelectName,
        // med 100 / mean 89.84 / σ 28.78
        missing: RateMixture(&[(0.82, 1.0, 1.0), (0.18, 0.3, 0.6)]),
        empty: RateMixture(&[(0.98, 0.0, 0.0), (0.02, 0.0, 0.08)]),
        words: (2, 3),
        per_page: (0, 2),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::LinkName,
        // med 100 / mean 95.96 / σ 11.98 — links rely on visible text.
        missing: RateMixture(&[(0.87, 1.0, 1.0), (0.13, 0.55, 0.95)]),
        empty: RateMixture(&[(0.97, 0.0, 0.0), (0.03, 0.0, 0.05)]),
        words: (3, 7),
        per_page: (25, 120),
        // Table 2: link-name max 5,228 chars.
        outlier_chance: 0.0005,
    },
    ElementCalibration {
        kind: ElementKind::InputButtonName,
        // med 100 / mean 93.90 / σ 22.62
        missing: RateMixture(&[(0.88, 1.0, 1.0), (0.12, 0.3, 0.7)]),
        empty: RateMixture(&[(0.97, 0.0, 0.0), (0.03, 0.0, 0.10)]),
        words: (2, 3),
        per_page: (1, 3),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::SvgImgAlt,
        // med 100 / mean 96.66 / σ 15.15
        missing: RateMixture(&[(0.90, 1.0, 1.0), (0.10, 0.5, 0.85)]),
        empty: RateMixture(&[(0.98, 0.0, 0.0), (0.02, 0.0, 0.08)]),
        words: (2, 3),
        per_page: (1, 8),
        outlier_chance: 0.0,
    },
    ElementCalibration {
        kind: ElementKind::ObjectAlt,
        // med 100 / mean 94.19 / σ 23.30
        missing: RateMixture(&[(0.88, 1.0, 1.0), (0.12, 0.4, 0.6)]),
        empty: RateMixture(&[(0.97, 0.0, 0.0), (0.03, 0.0, 0.10)]),
        words: (1, 3),
        per_page: (0, 1),
        outlier_chance: 0.0,
    },
];

/// Look up the calibration for a kind.
pub fn element_calibration(kind: ElementKind) -> &'static ElementCalibration {
    ELEMENT_CALIBRATIONS
        .iter()
        .find(|c| c.kind == kind)
        .expect("all kinds calibrated")
}

/// Per-country calibration.
///
/// `discard_rates` is indexed by [`DiscardCategory::ALL`] order and holds
/// the share (fraction of all planted labels) for each category — the
/// Figure 3 targets. The language aggregate and mismatch fraction encode
/// Figures 4 and 5.
#[derive(Debug, Clone, Copy)]
pub struct CountryProfile {
    pub country: Country,
    /// Figure 4 target: share of informative labels that are native.
    pub agg_native: f64,
    /// Figure 4 target: share of informative labels that are mixed.
    pub agg_mixed: f64,
    /// Figure 5 target: fraction of sites with essentially no native
    /// accessibility text (<10%) despite native visible content.
    pub mismatch_frac: f64,
    /// Peak of the per-site visible-native-share triangular distribution
    /// (support `[0.55, 0.98]` for qualifying sites).
    pub visible_peak: f64,
    /// Figure 3 targets, fraction per category in `DiscardCategory::ALL`
    /// order.
    pub discard_rates: [f64; 11],
    /// CrUX rank model `(min, peak, max)` for Figure 7 — log-triangular.
    pub rank_range: (u64, u64, u64),
}

impl CountryProfile {
    /// Total uninformative share (sum of discard rates).
    pub fn total_discard(&self) -> f64 {
        self.discard_rates.iter().sum()
    }

    /// Conditional label-language weights `(native, english, mixed)` for
    /// non-mismatch sites, derived so the corpus aggregate hits the Figure 4
    /// targets given the mismatch fraction:
    /// `agg = q·mismatch_profile + (1-q)·conditional`.
    pub fn conditional_lang_weights(&self) -> (f64, f64, f64) {
        let q = self.mismatch_frac;
        let native = ((self.agg_native - q * MISMATCH_NATIVE) / (1.0 - q)).clamp(0.01, 0.97);
        let mixed = ((self.agg_mixed - q * MISMATCH_MIXED) / (1.0 - q)).clamp(0.01, 0.97);
        let english = (1.0 - native - mixed).max(0.01);
        (native, english, mixed)
    }
}

/// Label-language weights on mismatch sites: essentially no native text.
pub const MISMATCH_NATIVE: f64 = 0.02;
/// Mixed labels on mismatch sites (mixed still contains native characters,
/// so it must stay small for the <10%-native property to hold).
pub const MISMATCH_MIXED: f64 = 0.06;

/// Discard-rate array builder, in `DiscardCategory::ALL` order:
/// [Emoji, UrlOrFilePath, FileName, OrdinalPhrase, LabelNumberPattern,
///  MixedAlnum, DevLabel, TooShort, GenericAction, Placeholder, SingleWord].
#[allow(clippy::too_many_arguments)] // one argument per discard category
const fn rates(
    emoji: f64,
    url: f64,
    file: f64,
    ordinal: f64,
    label_num: f64,
    mixed_alnum: f64,
    dev: f64,
    too_short: f64,
    action: f64,
    placeholder: f64,
    single: f64,
) -> [f64; 11] {
    [
        emoji,
        url,
        file,
        ordinal,
        label_num,
        mixed_alnum,
        dev,
        too_short,
        action,
        placeholder,
        single,
    ]
}

/// The twelve country profiles.
///
/// Figure 3 anchors: single-word th 33% > ru 22.2% > gr 18.0% > in 17.1%,
/// bd lowest at 6.9%, eg 10.5%; too-short ru 4.26 / th 4.24 / il 4.03 /
/// in 3.6; URL-or-path hk 3.8 / kr 3.5 / ru 3.17.
/// Figure 4 anchors: bd most English (79%); mixed gr 35 / th 34 / hk 30;
/// cn, ru, jp, in mixed > 20%.
/// Figure 5 anchors: bd/in > 40% mismatched sites; th/cn/hk > 25%;
/// jp/il < 10%.
/// Figure 7 anchor: India's rank tail reaches ~1M, others concentrate
/// within the top 50k.
pub const COUNTRY_PROFILES: [CountryProfile; 12] = [
    CountryProfile {
        country: Country::Bangladesh,
        agg_native: 0.08,
        agg_mixed: 0.13,
        mismatch_frac: 0.45,
        visible_peak: 0.88,
        discard_rates: rates(
            0.007, 0.018, 0.012, 0.008, 0.012, 0.020, 0.022, 0.020, 0.045, 0.035, 0.062,
        ),
        rank_range: (300, 8_000, 150_000),
    },
    CountryProfile {
        country: Country::China,
        agg_native: 0.35,
        agg_mixed: 0.22,
        mismatch_frac: 0.33,
        visible_peak: 0.92,
        discard_rates: rates(
            0.010, 0.022, 0.018, 0.010, 0.015, 0.025, 0.025, 0.025, 0.055, 0.040, 0.140,
        ),
        rank_range: (200, 6_000, 120_000),
    },
    CountryProfile {
        country: Country::Algeria,
        agg_native: 0.30,
        agg_mixed: 0.15,
        mismatch_frac: 0.18,
        visible_peak: 0.80,
        discard_rates: rates(
            0.006, 0.016, 0.014, 0.007, 0.011, 0.018, 0.020, 0.022, 0.045, 0.030, 0.110,
        ),
        rank_range: (500, 12_000, 200_000),
    },
    CountryProfile {
        country: Country::Egypt,
        agg_native: 0.18,
        agg_mixed: 0.15,
        mismatch_frac: 0.22,
        visible_peak: 0.82,
        discard_rates: rates(
            0.008, 0.017, 0.015, 0.008, 0.012, 0.020, 0.020, 0.024, 0.048, 0.032, 0.115,
        ),
        rank_range: (400, 10_000, 180_000),
    },
    CountryProfile {
        country: Country::Greece,
        agg_native: 0.20,
        agg_mixed: 0.35,
        mismatch_frac: 0.15,
        visible_peak: 0.85,
        discard_rates: rates(
            0.009, 0.020, 0.016, 0.010, 0.014, 0.022, 0.024, 0.028, 0.052, 0.038, 0.210,
        ),
        rank_range: (400, 9_000, 160_000),
    },
    CountryProfile {
        country: Country::HongKong,
        agg_native: 0.25,
        agg_mixed: 0.35,
        mismatch_frac: 0.24,
        visible_peak: 0.85,
        discard_rates: rates(
            0.012, 0.038, 0.022, 0.011, 0.015, 0.026, 0.028, 0.026, 0.058, 0.042, 0.140,
        ),
        rank_range: (300, 7_000, 130_000),
    },
    CountryProfile {
        country: Country::Israel,
        agg_native: 0.45,
        agg_mixed: 0.20,
        mismatch_frac: 0.03,
        visible_peak: 0.90,
        discard_rates: rates(
            0.008, 0.019, 0.016, 0.009, 0.013, 0.021, 0.022, 0.044, 0.050, 0.035, 0.125,
        ),
        rank_range: (300, 8_000, 140_000),
    },
    CountryProfile {
        country: Country::India,
        agg_native: 0.22,
        agg_mixed: 0.22,
        mismatch_frac: 0.42,
        visible_peak: 0.78,
        discard_rates: rates(
            0.009, 0.021, 0.017, 0.010, 0.014, 0.023, 0.025, 0.039, 0.054, 0.039, 0.195,
        ),
        // Figure 7: India's distribution extends toward the 1M rank range
        // (the model runs a little past 1M so the deepest replacement
        // descent lands in the paper's "1M" bucket).
        rank_range: (500, 60_000, 1_400_000),
    },
    CountryProfile {
        country: Country::Japan,
        agg_native: 0.45,
        agg_mixed: 0.22,
        mismatch_frac: 0.05,
        visible_peak: 0.94,
        discard_rates: rates(
            0.011, 0.020, 0.017, 0.009, 0.013, 0.021, 0.023, 0.022, 0.050, 0.036, 0.110,
        ),
        rank_range: (200, 5_000, 100_000),
    },
    CountryProfile {
        country: Country::SouthKorea,
        agg_native: 0.40,
        agg_mixed: 0.18,
        mismatch_frac: 0.12,
        visible_peak: 0.92,
        discard_rates: rates(
            0.010, 0.036, 0.020, 0.010, 0.014, 0.024, 0.026, 0.024, 0.056, 0.040, 0.135,
        ),
        rank_range: (200, 5_000, 100_000),
    },
    CountryProfile {
        country: Country::Russia,
        agg_native: 0.35,
        agg_mixed: 0.23,
        mismatch_frac: 0.14,
        visible_peak: 0.90,
        discard_rates: rates(
            0.009, 0.028, 0.019, 0.011, 0.015, 0.025, 0.027, 0.041, 0.053, 0.038, 0.250,
        ),
        rank_range: (300, 7_000, 130_000),
    },
    CountryProfile {
        country: Country::Thailand,
        agg_native: 0.17,
        agg_mixed: 0.42,
        mismatch_frac: 0.22,
        visible_peak: 0.90,
        // Thai's single-word plant rate is set below the 33% target because
        // the orthography itself (no inter-word spaces) pushes short
        // informative tokens into the single-word verdict — the measured
        // rate lands at the paper's ~33%.
        discard_rates: rates(
            0.008, 0.024, 0.016, 0.008, 0.012, 0.020, 0.022, 0.048, 0.045, 0.032, 0.330,
        ),
        rank_range: (300, 8_000, 150_000),
    },
];

/// Inverse CDF of a country's log-triangular rank model: `u` in [0, 1]
/// maps to a global rank. Used by the corpus builder to assign candidate
/// ranks as order statistics, so that the *selected* population (the first
/// `quota` qualifying candidates, as in the paper's §2 walk) reproduces
/// the Figure 7 distribution — including India's descent toward rank 1M.
pub fn rank_quantile(country: Country, u: f64) -> u64 {
    let (min, peak, max) = country_profile(country).rank_range;
    let (lo, pk, hi) = (
        (min as f64).log10(),
        (peak as f64).log10(),
        (max as f64).log10(),
    );
    let u = u.clamp(0.0, 1.0);
    let cut = (pk - lo) / (hi - lo);
    let x = if u <= cut {
        lo + (u * (hi - lo) * (pk - lo)).sqrt()
    } else {
        hi - ((1.0 - u) * (hi - lo) * (hi - pk)).sqrt()
    };
    10f64.powf(x).round().max(1.0) as u64
}

/// Look up a country profile.
pub fn country_profile(country: Country) -> &'static CountryProfile {
    COUNTRY_PROFILES
        .iter()
        .find(|p| p.country == country)
        .expect("profile exists for every study country")
}

/// Calibrated estimate of a rendered localized page's HTML size, bytes.
///
/// Used to pre-size the `HtmlBuilder` output buffer so rendering avoids
/// the doubling-reallocation ladder. Measured over the serve-bench corpus
/// (every study country, localized variant): mean ≈ 11.4 KB; 16 KiB
/// covers the bulk of pages in one allocation while staying far below
/// the Appendix-E outlier tail (which reallocates as needed — capacity
/// is an estimate, never a cap, and never affects output bytes).
pub fn estimated_page_bytes() -> usize {
    16 * 1024
}

/// Extra per-element scaling of the total uninformative share (Figure 9:
/// `<summary>` labels are overwhelmingly generic/single-word; titles are
/// almost always informative).
pub fn element_discard_scale(kind: ElementKind) -> f64 {
    match kind {
        ElementKind::SummaryName => 2.2,
        ElementKind::InputButtonName => 1.4,
        ElementKind::ButtonName => 1.3,
        ElementKind::Label => 1.3,
        ElementKind::SvgImgAlt => 1.3,
        ElementKind::FrameTitle => 1.1,
        ElementKind::DocumentTitle => 0.2,
        _ => 1.0,
    }
}

/// Per-(element, category) multiplier shaping Figure 9's element-level
/// breakdown (generic actions concentrate in buttons/summaries, file names
/// and alnum IDs in image alts, URLs in links, dev labels in frames).
pub fn element_category_multiplier(kind: ElementKind, cat: DiscardCategory) -> f64 {
    use DiscardCategory as C;
    use ElementKind as K;
    match (kind, cat) {
        (K::SummaryName, C::GenericAction) => 6.0,
        (K::SummaryName, C::SingleWord) => 3.0,
        (K::ButtonName, C::GenericAction) => 3.0,
        (K::InputButtonName, C::GenericAction) => 3.0,
        (K::Label, C::SingleWord) => 2.0,
        (K::ImageAlt, C::FileName) => 2.5,
        (K::ImageAlt, C::MixedAlnum) => 1.5,
        (K::ImageAlt, C::Placeholder) => 1.5,
        (K::LinkName, C::UrlOrFilePath) => 2.5,
        (K::LinkName, C::GenericAction) => 1.8,
        (K::SvgImgAlt, C::Placeholder) => 2.5,
        (K::FrameTitle, C::DevLabel) => 2.5,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_calibrated_once() {
        assert_eq!(ELEMENT_CALIBRATIONS.len(), 12);
        for kind in ElementKind::ALL {
            assert_eq!(element_calibration(kind).kind, kind);
        }
    }

    #[test]
    fn missing_means_match_table2() {
        // (kind, paper mean%) — generator mixtures must be within 5 points.
        let targets = [
            (ElementKind::ButtonName, 61.92),
            (ElementKind::FrameTitle, 75.81),
            (ElementKind::ImageAlt, 17.12),
            (ElementKind::InputButtonName, 93.90),
            (ElementKind::InputImageAlt, 35.07),
            (ElementKind::Label, 98.55),
            (ElementKind::LinkName, 95.96),
            (ElementKind::ObjectAlt, 94.19),
            (ElementKind::SelectName, 89.84),
            (ElementKind::SummaryName, 90.47),
            (ElementKind::SvgImgAlt, 96.66),
        ];
        for (kind, target) in targets {
            let mean = element_calibration(kind).missing.mean() * 100.0;
            assert!(
                (mean - target).abs() < 5.0,
                "{kind:?}: mixture mean {mean:.2} vs paper {target}"
            );
        }
    }

    #[test]
    fn image_alt_has_highest_empty_mean() {
        let image = element_calibration(ElementKind::ImageAlt).empty.mean();
        for kind in ElementKind::TABLE2 {
            if kind != ElementKind::ImageAlt {
                assert!(element_calibration(kind).empty.mean() < image, "{kind:?}");
            }
        }
        // Paper: 25.39% mean empty.
        assert!((image * 100.0 - 25.39).abs() < 6.0, "empty mean {image}");
    }

    #[test]
    fn twelve_country_profiles() {
        assert_eq!(COUNTRY_PROFILES.len(), 12);
        for c in Country::STUDY {
            let p = country_profile(c);
            assert_eq!(p.country, c);
            assert!(p.agg_native + p.agg_mixed < 1.0);
            assert!(p.total_discard() < 0.65, "{c:?} discards too much");
            assert!((0.0..1.0).contains(&p.mismatch_frac));
            let (n, e, m) = p.conditional_lang_weights();
            assert!(n > 0.0 && e > 0.0 && m > 0.0, "{c:?}: {n} {e} {m}");
            assert!(
                (n + e + m - 1.0).abs() < 0.05,
                "{c:?} weights sum {}",
                n + e + m
            );
        }
    }

    #[test]
    fn figure3_anchor_orderings() {
        let single = |c: Country| {
            let p = country_profile(c);
            p.discard_rates[10] // SingleWord is last in ALL order
        };
        assert!(single(Country::Thailand) > single(Country::Russia));
        assert!(single(Country::Russia) > single(Country::Greece));
        assert!(single(Country::Greece) > single(Country::India).min(0.18));
        assert!(single(Country::Bangladesh) < single(Country::Egypt));
        let url = |c: Country| country_profile(c).discard_rates[1];
        assert!(url(Country::HongKong) > url(Country::SouthKorea));
        assert!(url(Country::SouthKorea) > url(Country::Bangladesh));
    }

    #[test]
    fn figure4_anchor_bd_most_english() {
        for c in Country::STUDY {
            let p = country_profile(c);
            let english = 1.0 - p.agg_native - p.agg_mixed;
            if c != Country::Bangladesh {
                let bd = country_profile(Country::Bangladesh);
                assert!(
                    1.0 - bd.agg_native - bd.agg_mixed >= english,
                    "{c:?} more English than bd"
                );
            }
        }
    }

    #[test]
    fn figure5_anchor_mismatch_ordering() {
        // Planted fractions sit below the paper's measured "<10% native
        // a11y" shares because sites with a low native weight also fall
        // under 10% by per-site binomial noise; the *measured* anchors are
        // asserted end-to-end in tests/paper_shapes.rs.
        let q = |c: Country| country_profile(c).mismatch_frac;
        assert!(q(Country::Bangladesh) > 0.40);
        assert!(q(Country::India) > 0.40);
        assert!(q(Country::Thailand) >= 0.18);
        assert!(q(Country::China) >= 0.20);
        assert!(q(Country::HongKong) >= 0.20);
        assert!(q(Country::Japan) < 0.10);
        assert!(q(Country::Israel) < 0.10);
    }

    #[test]
    fn figure7_anchor_india_long_tail() {
        for c in Country::STUDY {
            let (_, _, max) = country_profile(c).rank_range;
            if c == Country::India {
                assert!(max >= 1_000_000);
            } else {
                assert!(max <= 200_000, "{c:?}");
            }
        }
    }

    #[test]
    fn discard_array_order_matches_category_all() {
        // The rates() builder encodes DiscardCategory::ALL order; guard
        // against reordering the enum without updating the tables.
        assert_eq!(DiscardCategory::ALL[0], DiscardCategory::Emoji);
        assert_eq!(DiscardCategory::ALL[1], DiscardCategory::UrlOrFilePath);
        assert_eq!(DiscardCategory::ALL[7], DiscardCategory::TooShort);
        assert_eq!(DiscardCategory::ALL[10], DiscardCategory::SingleWord);
    }

    #[test]
    fn element_multipliers_positive() {
        for kind in ElementKind::ALL {
            assert!(element_discard_scale(kind) > 0.0);
            for cat in DiscardCategory::ALL {
                assert!(element_category_multiplier(kind, cat) > 0.0);
            }
        }
    }
}
