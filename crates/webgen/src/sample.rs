//! Distribution-sampling helpers for corpus calibration.
//!
//! The generator plants population statistics via small parametric
//! distributions; these helpers keep that code readable. Everything takes
//! an explicit `&mut StdRng` so the callers control determinism.

use rand::rngs::StdRng;
use rand::Rng;

/// A mixture of uniform components: `(weight, lo, hi)`. Sampling picks a
/// component by weight, then a uniform value inside it. This is the shape
/// used to calibrate the per-site missing/empty rates of Table 2: e.g.
/// "93% of sites never label anything, the rest label 5–40%" is
/// `[(0.93, 1.0, 1.0), (0.07, 0.60, 0.95)]`.
#[derive(Debug, Clone, Copy)]
pub struct RateMixture(pub &'static [(f64, f64, f64)]);

impl RateMixture {
    /// Sample one value from the mixture.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let total: f64 = self.0.iter().map(|(w, _, _)| w).sum();
        debug_assert!(total > 0.0, "empty mixture");
        let mut roll = rng.gen::<f64>() * total;
        for &(w, lo, hi) in self.0 {
            if roll < w {
                return if lo >= hi { lo } else { rng.gen_range(lo..hi) };
            }
            roll -= w;
        }
        // Floating point slack: fall back to the last component.
        let &(_, lo, hi) = self.0.last().expect("non-empty mixture");
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    }

    /// Analytic mean of the mixture (used by calibration tests to compare
    /// against the paper's Table 2 targets).
    pub fn mean(&self) -> f64 {
        let total: f64 = self.0.iter().map(|(w, _, _)| w).sum();
        self.0
            .iter()
            .map(|&(w, lo, hi)| w / total * (lo + hi) / 2.0)
            .sum()
    }
}

/// Triangular distribution on `[lo, hi]` with the given `peak`. Used for
/// per-site visible-native-share targets.
pub fn triangular(rng: &mut StdRng, lo: f64, peak: f64, hi: f64) -> f64 {
    debug_assert!(lo <= peak && peak <= hi);
    if hi <= lo {
        return lo;
    }
    let u: f64 = rng.gen();
    let cut = (peak - lo) / (hi - lo);
    if u < cut {
        lo + ((hi - lo) * (peak - lo) * u).sqrt()
    } else {
        hi - ((hi - lo) * (hi - peak) * (1.0 - u)).sqrt()
    }
}

/// Sample an integer uniformly in `lo..=hi` (tolerates `lo == hi`).
pub fn int_between(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Weighted choice over a slice of `(weight, value)` pairs.
pub fn weighted<'a, T>(rng: &mut StdRng, items: &'a [(f64, T)]) -> &'a T {
    let total: f64 = items.iter().map(|(w, _)| w).sum();
    debug_assert!(total > 0.0, "weights must be positive");
    let mut roll = rng.gen::<f64>() * total;
    for (w, v) in items {
        if roll < *w {
            return v;
        }
        roll -= w;
    }
    &items.last().expect("non-empty items").1
}

/// A heavy-tailed length sample: with probability `1 - p_tail` uniform in
/// the body range, otherwise log-uniform in the tail range. Models the
/// paper's extreme alt-text outliers (Table 2's σ of 1332 chars against a
/// median of 14; Appendix E's >1000-char examples).
pub fn heavy_tail_len(
    rng: &mut StdRng,
    body: (usize, usize),
    tail: (usize, usize),
    p_tail: f64,
) -> usize {
    if rng.gen::<f64>() < p_tail {
        let (lo, hi) = tail;
        let (lo_f, hi_f) = ((lo.max(1)) as f64, (hi.max(2)) as f64);
        let x: f64 = rng.gen();
        (lo_f * (hi_f / lo_f).powf(x)).round() as usize
    } else {
        int_between(rng, body.0, body.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn mixture_sample_within_support() {
        let m = RateMixture(&[(0.5, 0.0, 0.1), (0.5, 0.8, 1.0)]);
        let mut r = rng();
        for _ in 0..1000 {
            let v = m.sample(&mut r);
            assert!((0.0..=1.0).contains(&v));
            assert!(v <= 0.1 || v >= 0.8, "v = {v}");
        }
    }

    #[test]
    fn mixture_point_mass() {
        let m = RateMixture(&[(1.0, 1.0, 1.0)]);
        let mut r = rng();
        assert_eq!(m.sample(&mut r), 1.0);
        assert_eq!(m.mean(), 1.0);
    }

    #[test]
    fn mixture_mean_matches_empirical() {
        let m = RateMixture(&[(0.7, 0.0, 0.2), (0.3, 0.6, 1.0)]);
        let mut r = rng();
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| m.sample(&mut r)).sum();
        assert!((sum / n as f64 - m.mean()).abs() < 0.01);
    }

    #[test]
    fn triangular_bounds_and_mode() {
        let mut r = rng();
        let mut below = 0;
        for _ in 0..10_000 {
            let v = triangular(&mut r, 0.5, 0.9, 1.0);
            assert!((0.5..=1.0).contains(&v));
            if v < 0.9 {
                below += 1;
            }
        }
        // With peak at 0.9 of [0.5, 1.0], P(v < 0.9) = 0.8.
        let frac = below as f64 / 10_000.0;
        assert!((0.75..0.85).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let items = [(9.0, "a"), (1.0, "b")];
        let mut a = 0;
        for _ in 0..10_000 {
            if *weighted(&mut r, &items) == "a" {
                a += 1;
            }
        }
        let frac = a as f64 / 10_000.0;
        assert!((0.87..0.93).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn heavy_tail_mostly_body() {
        let mut r = rng();
        let mut tail_hits = 0;
        for _ in 0..10_000 {
            let v = heavy_tail_len(&mut r, (5, 30), (1000, 200_000), 0.01);
            if v > 30 {
                tail_hits += 1;
                assert!(v >= 1000);
                assert!(v <= 260_000);
            } else {
                assert!(v >= 5);
            }
        }
        assert!((50..200).contains(&tail_hits), "tail = {tail_hits}");
    }

    #[test]
    fn int_between_degenerate() {
        let mut r = rng();
        assert_eq!(int_between(&mut r, 3, 3), 3);
        assert_eq!(int_between(&mut r, 5, 2), 5);
    }
}
