//! # langcrux-webgen
//!
//! The synthetic multilingual web: a calibrated generator that stands in
//! for the 120,000 live websites of the paper's LangCrUX dataset.
//!
//! Every population statistic the paper reports is a *planted* parameter
//! here, quoted next to its value in [`calibration`]:
//!
//! * Table 2 — per-element missing/empty mixtures and label word ranges.
//! * Figure 2 — per-site visible native share (triangular per country).
//! * Figure 3 — per-country discard-category rates.
//! * Figure 4 — informative-label language aggregates (native/English/mixed).
//! * Figure 5 — the mismatch-site fraction per country.
//! * Figure 7 — CrUX-style log-triangular rank models (India's long tail).
//! * Figure 9 — per-element discard modulation.
//! * Appendix E — heavy-tailed extreme alt-text outliers (up to 260k chars).
//!
//! The measurement pipeline downstream never reads these tables: it must
//! recover the numbers from generated HTML fetched over the simulated
//! network, which is what makes the reproduction an end-to-end test of the
//! methodology rather than an echo of constants.
//!
//! * [`sample`] — mixtures/triangular/heavy-tail sampling.
//! * [`calibration`] — all paper-anchored parameters.
//! * [`site`] — per-site plans ([`site::SitePlan`]).
//! * [`page`] — deterministic HTML rendering + planted ground truth.
//! * [`corpus`] — rank-ordered candidates registered on the simulated
//!   internet ([`corpus::Corpus`]).

pub mod calibration;
pub mod corpus;
pub mod page;
pub mod sample;
pub mod site;

pub use corpus::{CandidateSet, Corpus, CorpusConfig, ShardStats};
pub use page::{render, render_into, GapTruth, KindTruth, PageTruth, RenderScratch, ScratchPool};
pub use site::{Archetype, GapPlan, LangBucket, PlantedText, SitePlan};
