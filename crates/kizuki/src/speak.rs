//! Screen-reader announcement simulation.
//!
//! The paper's motivation (§1) is what a blind user *hears*: "popular
//! screen readers like JAWS and NVDA still exhibit limited support for
//! non-Latin scripts and often perform poorly when confronted with mixed
//! languages … Apple's VoiceOver does not provide any support for
//! languages such as Urdu, Amharic, or Burmese." This module turns a
//! crawled page into the utterance stream a screen reader would produce,
//! and classifies each utterance by what the user would experience:
//! spoken correctly, mispronounced (wrong synthesis engine), skipped
//! (no engine for the language at all), or a degenerate announcement
//! ("image", "button") where metadata was missing.
//!
//! This is the user-experience lens over the same data the audits score —
//! used by the `repro speech` artefact to report per-country
//! mispronunciation rates.

use langcrux_audit::{GapKind, GapRegion, GapReport};
use langcrux_crawl::{ExtractedElement, PageExtract};
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Language;
use langcrux_langid::{classify_label, LabelLanguage};
use serde::{Deserialize, Serialize};

/// How well the reader's synthesiser handles a language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSupport {
    /// A dedicated voice exists.
    Full,
    /// Synthesis exists but switching/prosody is unreliable (the
    /// mixed-language failure mode of §1).
    Partial,
    /// No voice at all — the text is skipped or spelled out.
    None,
}

/// What the user experiences for one element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeechOutcome {
    /// Announced with a correct voice.
    Spoken,
    /// Read with the wrong-language engine: intelligible to the engine,
    /// not to the listener ("mispronunciations or reduced clarity", §3).
    Mispronounced,
    /// No engine for the language: skipped or spelled character by
    /// character.
    Skipped,
    /// No accessibility text: the reader falls back to a generic role
    /// announcement ("image", "button") or the raw file name.
    GenericAnnouncement,
}

/// One announcement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utterance {
    pub kind: ElementKind,
    /// What the reader would say (accessible name or role fallback).
    pub text: String,
    /// Detected language of the announced text, when it has one.
    pub language: Option<Language>,
    pub outcome: SpeechOutcome,
}

/// A screen-reader profile: which languages its synthesiser covers.
#[derive(Debug, Clone)]
pub struct ScreenReader {
    name: &'static str,
    /// Languages with full voices.
    full: Vec<Language>,
    /// Languages with partial/robotic voices.
    partial: Vec<Language>,
}

impl ScreenReader {
    /// A VoiceOver-like profile: strong major-language coverage, partial
    /// coverage for several non-Latin languages, and — per §1 — no support
    /// at all for Urdu, Amharic, or Burmese.
    pub fn voiceover_like() -> ScreenReader {
        ScreenReader {
            name: "voiceover-like",
            full: vec![
                Language::English,
                Language::MandarinChinese,
                Language::Cantonese,
                Language::Japanese,
                Language::Korean,
                Language::Russian,
                Language::Greek,
                Language::Hebrew,
                Language::Thai,
                Language::ModernStandardArabic,
                Language::EgyptianArabic,
                Language::Hindi,
            ],
            partial: vec![
                Language::Bangla,
                Language::Tamil,
                Language::Telugu,
                Language::Marathi,
                Language::Sinhala,
                Language::Georgian,
                Language::Punjabi,
                Language::Gujarati,
                Language::Kannada,
                Language::Malayalam,
                Language::Persian,
                Language::Nepali,
            ],
        }
    }

    /// A minimal English-only reader (the worst case for the study's
    /// users; useful as the lower bound in comparisons).
    pub fn english_only() -> ScreenReader {
        ScreenReader {
            name: "english-only",
            full: vec![Language::English],
            partial: Vec::new(),
        }
    }

    /// Profile name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Synthesiser support for a language.
    pub fn support(&self, language: Language) -> EngineSupport {
        if self.full.contains(&language) {
            EngineSupport::Full
        } else if self.partial.contains(&language) {
            EngineSupport::Partial
        } else {
            EngineSupport::None
        }
    }

    /// The accessible name the reader would announce for an element, or
    /// `None` when it falls back to a generic role announcement.
    fn accessible_name(element: &ExtractedElement) -> Option<String> {
        element.content().map(str::to_string).or_else(|| {
            element
                .visible_fallback
                .as_deref()
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(str::to_string)
        })
    }

    /// Simulate announcing every accessibility element of a page.
    ///
    /// `page_language` is the language the page *content* is in (the
    /// engine the reader would select from context/declared metadata).
    pub fn announce_page(&self, page: &PageExtract, page_language: Language) -> Vec<Utterance> {
        page.elements
            .iter()
            .map(|element| self.announce(element, page_language))
            .collect()
    }

    fn announce(&self, element: &ExtractedElement, page_language: Language) -> Utterance {
        let Some(name) = Self::accessible_name(element) else {
            return Utterance {
                kind: element.kind,
                text: role_announcement(element.kind).to_string(),
                language: None,
                outcome: SpeechOutcome::GenericAnnouncement,
            };
        };
        // Which language is this text in, relative to the page?
        let label = classify_label(&name, page_language);
        let text_language = match label {
            LabelLanguage::Native | LabelLanguage::Mixed => Some(page_language),
            LabelLanguage::English => Some(Language::English),
            LabelLanguage::OtherLanguage => langcrux_langid::detect(&name),
            LabelLanguage::NonLinguistic => None,
        };
        let outcome = match text_language {
            None => SpeechOutcome::Spoken, // digits/symbols read fine
            Some(lang) => match self.support(lang) {
                EngineSupport::None => SpeechOutcome::Skipped,
                EngineSupport::Partial => SpeechOutcome::Mispronounced,
                EngineSupport::Full => {
                    // A correct engine exists, but language switching within
                    // a page only works when the text matches the engine in
                    // use; §3: readers "typically do not handle language
                    // switching within a single label".
                    if label == LabelLanguage::Mixed {
                        SpeechOutcome::Mispronounced
                    } else {
                        SpeechOutcome::Spoken
                    }
                }
            },
        };
        Utterance {
            kind: element.kind,
            text: name,
            language: text_language,
            outcome,
        }
    }
}

/// Speech impact of a page's translation gaps under one reader profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GapSpeech {
    /// Gap regions the speak order passes through.
    pub regions: u32,
    /// Regions read with a wrong-language engine.
    pub mispronounced: u32,
    /// Regions the reader has no usable engine for.
    pub skipped: u32,
    /// Foreign distinguishing characters across the regions — how much
    /// text the listener hits in the wrong language.
    pub foreign_chars: u64,
}

impl GapSpeech {
    pub fn merge(&mut self, other: &GapSpeech) {
        self.regions += other.regions;
        self.mispronounced += other.mispronounced;
        self.skipped += other.skipped;
        self.foreign_chars += other.foreign_chars;
    }
}

impl ScreenReader {
    /// What the user hears when the speak order reaches one translation-gap
    /// region.
    ///
    /// The reader speaks a region with the engine its context selects: the
    /// `lang`-tagged language for explicit mismatches (readers honour
    /// markup), the page language otherwise. A gap region's content is by
    /// construction in a script that engine was never built for, so the
    /// only question is whether the selected engine exists at all:
    /// no engine → [`SpeechOutcome::Skipped`] (spelled out or silently
    /// passed over); any engine → [`SpeechOutcome::Mispronounced`]
    /// (wrong-language synthesis, §1's mixed-language failure mode).
    pub fn gap_outcome(&self, gap: &GapRegion, page_language: Option<Language>) -> SpeechOutcome {
        let engine = match gap.kind {
            GapKind::LangAttrMismatch => {
                gap.lang.as_deref().and_then(Language::from_primary_subtag)
            }
            GapKind::UntranslatedChrome | GapKind::FallbackText => page_language,
        };
        match engine.map(|l| self.support(l)) {
            None | Some(EngineSupport::None) => SpeechOutcome::Skipped,
            Some(EngineSupport::Full) | Some(EngineSupport::Partial) => {
                SpeechOutcome::Mispronounced
            }
        }
    }

    /// Aggregate [`Self::gap_outcome`] over a page's whole gap report.
    pub fn gap_speech(&self, report: &GapReport, page_language: Option<Language>) -> GapSpeech {
        let mut speech = GapSpeech::default();
        for gap in &report.regions {
            speech.regions += 1;
            speech.foreign_chars += gap.foreign_chars as u64;
            match self.gap_outcome(gap, page_language) {
                SpeechOutcome::Skipped => speech.skipped += 1,
                _ => speech.mispronounced += 1,
            }
        }
        speech
    }
}

/// The generic role announcement for an unnamed element.
pub fn role_announcement(kind: ElementKind) -> &'static str {
    match kind {
        ElementKind::ButtonName | ElementKind::InputButtonName => "button",
        ElementKind::DocumentTitle => "untitled document",
        ElementKind::ImageAlt | ElementKind::InputImageAlt | ElementKind::SvgImgAlt => "image",
        ElementKind::FrameTitle => "frame",
        ElementKind::SummaryName => "disclosure triangle",
        ElementKind::Label => "edit text",
        ElementKind::SelectName => "pop-up button",
        ElementKind::LinkName => "link",
        ElementKind::ObjectAlt => "embedded object",
    }
}

/// Aggregate experience over a page's utterances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpeechStats {
    pub spoken: u32,
    pub mispronounced: u32,
    pub skipped: u32,
    pub generic: u32,
}

impl SpeechStats {
    /// Summarise a set of utterances.
    pub fn of(utterances: &[Utterance]) -> SpeechStats {
        let mut stats = SpeechStats::default();
        for u in utterances {
            match u.outcome {
                SpeechOutcome::Spoken => stats.spoken += 1,
                SpeechOutcome::Mispronounced => stats.mispronounced += 1,
                SpeechOutcome::Skipped => stats.skipped += 1,
                SpeechOutcome::GenericAnnouncement => stats.generic += 1,
            }
        }
        stats
    }

    pub fn total(&self) -> u32 {
        self.spoken + self.mispronounced + self.skipped + self.generic
    }

    /// Share (%) of announcements that are NOT spoken correctly.
    pub fn degraded_pct(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        f64::from(total - self.spoken) * 100.0 / f64::from(total)
    }

    pub fn merge(&mut self, other: &SpeechStats) {
        self.spoken += other.spoken;
        self.mispronounced += other.mispronounced;
        self.skipped += other.skipped;
        self.generic += other.generic;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_crawl::extract;
    use langcrux_html::parse;

    fn page(html: &str) -> PageExtract {
        extract(&parse(html))
    }

    #[test]
    fn named_native_elements_are_spoken() {
        let p = page(r#"<img src=a alt="渋谷の夜景の写真です">"#);
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Japanese);
        // document-title slot (missing) + the image.
        let img = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ImageAlt)
            .unwrap();
        assert_eq!(img.outcome, SpeechOutcome::Spoken);
        assert_eq!(img.language, Some(Language::Japanese));
    }

    #[test]
    fn missing_names_become_generic_announcements() {
        let p = page(r#"<img src=a><a href="/x"></a>"#);
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Japanese);
        let img = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ImageAlt)
            .unwrap();
        assert_eq!(img.outcome, SpeechOutcome::GenericAnnouncement);
        assert_eq!(img.text, "image");
        let link = utterances
            .iter()
            .find(|u| u.kind == ElementKind::LinkName)
            .unwrap();
        assert_eq!(link.outcome, SpeechOutcome::GenericAnnouncement);
        assert_eq!(link.text, "link");
    }

    #[test]
    fn partial_engine_mispronounces_bangla() {
        // VoiceOver-like profile has only partial Bangla support.
        let p = page(r#"<img src=a alt="নদীর ধারে সূর্যাস্ত">"#);
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Bangla);
        let img = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ImageAlt)
            .unwrap();
        assert_eq!(img.outcome, SpeechOutcome::Mispronounced);
    }

    #[test]
    fn unsupported_language_is_skipped() {
        // §1: no VoiceOver support for Urdu at all.
        let p = page(r#"<img src=a alt="ٹھیک ہے دنیا کی تصویر ہے">"#);
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Urdu);
        let img = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ImageAlt)
            .unwrap();
        assert_eq!(reader.support(Language::Urdu), EngineSupport::None);
        assert_eq!(img.outcome, SpeechOutcome::Skipped);
    }

    #[test]
    fn mixed_labels_are_mispronounced_even_with_full_engines() {
        let p = page(r#"<img src=a alt="ดาวน์โหลด app ใหม่ for android">"#);
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Thai);
        let img = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ImageAlt)
            .unwrap();
        assert_eq!(img.outcome, SpeechOutcome::Mispronounced);
    }

    #[test]
    fn visible_fallback_is_announced() {
        let p = page(r#"<button>Αναζήτηση εγγράφων</button>"#);
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Greek);
        let button = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ButtonName)
            .unwrap();
        assert_eq!(button.outcome, SpeechOutcome::Spoken);
        assert_eq!(button.text, "Αναζήτηση εγγράφων");
    }

    #[test]
    fn stats_aggregate_and_degraded_pct() {
        let p = page(
            r#"<img src=a alt="渋谷の夜景">
               <img src=b>
               <img src=c alt="shibuya at night">"#,
        );
        let reader = ScreenReader::voiceover_like();
        let utterances = reader.announce_page(&p, Language::Japanese);
        let stats = SpeechStats::of(&utterances);
        // 3 images + missing document-title slot.
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.generic, 2); // missing alt + missing title
                                      // English alt on a Japanese page is spoken (English engine exists,
                                      // pure label) — degraded = 2 generic of 4.
        assert!((stats.degraded_pct() - 50.0).abs() < 1e-9);
        let mut merged = stats;
        merged.merge(&stats);
        assert_eq!(merged.total(), 8);
    }

    #[test]
    fn english_only_reader_degrades_native_content() {
        let p = page(r#"<img src=a alt="Φωτογραφία λιμανιού">"#);
        let reader = ScreenReader::english_only();
        let utterances = reader.announce_page(&p, Language::Greek);
        let img = utterances
            .iter()
            .find(|u| u.kind == ElementKind::ImageAlt)
            .unwrap();
        assert_eq!(img.outcome, SpeechOutcome::Skipped);
        assert_eq!(reader.name(), "english-only");
    }

    #[test]
    fn gap_outcomes_depend_on_the_selected_engine() {
        use langcrux_audit::gap_report;
        use langcrux_crawl::extract_streaming;

        let bn_body = "বাংলাদেশের সংবাদপত্রে প্রতিদিন নতুন খবর প্রকাশিত হয় এবং পাঠকেরা তা পড়েন। \
            দেশের বিভিন্ন অঞ্চল থেকে সংবাদদাতারা প্রতিবেদন পাঠান এবং সম্পাদকেরা তা প্রকাশ করেন";
        let html = format!(
            "<html lang=bn><body><nav>Home News Sports Entertainment Opinion More</nav>\
             <main><p>{bn_body}</p>\
             <section lang=ur>Untranslated placeholder copy shipped here</section></main>\
             </body></html>"
        );
        let report = gap_report(&extract_streaming(&html));
        assert_eq!(report.regions.len(), 2);
        let chrome = &report.regions[0];
        let mistagged = &report.regions[1];
        assert_eq!(chrome.kind, GapKind::UntranslatedChrome);
        assert_eq!(mistagged.kind, GapKind::LangAttrMismatch);

        let vo = ScreenReader::voiceover_like();
        // Bangla engine exists (partial): English chrome goes through it.
        assert_eq!(
            vo.gap_outcome(chrome, Some(Language::Bangla)),
            SpeechOutcome::Mispronounced
        );
        // The ur tag selects an engine VoiceOver does not have at all.
        assert_eq!(
            vo.gap_outcome(mistagged, Some(Language::Bangla)),
            SpeechOutcome::Skipped
        );
        // An English-only reader has no Bangla engine: the chrome region
        // is skipped outright.
        let en = ScreenReader::english_only();
        assert_eq!(
            en.gap_outcome(chrome, Some(Language::Bangla)),
            SpeechOutcome::Skipped
        );

        let speech = vo.gap_speech(&report, Some(Language::Bangla));
        assert_eq!(speech.regions, 2);
        assert_eq!(speech.mispronounced, 1);
        assert_eq!(speech.skipped, 1);
        assert_eq!(speech.foreign_chars, report.foreign_chars as u64);
        let mut merged = speech;
        merged.merge(&speech);
        assert_eq!(merged.regions, 4);
        assert_eq!(merged.foreign_chars, 2 * speech.foreign_chars);
    }

    #[test]
    fn every_kind_has_a_role_announcement() {
        for kind in ElementKind::ALL {
            assert!(!role_announcement(kind).is_empty());
        }
    }
}
