//! # langcrux-kizuki
//!
//! **Kizuki** (named after the Japanese word for "awareness") — the paper's
//! language-aware automated accessibility testing extension (§4).
//!
//! Base Lighthouse "audits are marked as present regardless of whether
//! their content matches the language of the surrounding interface";
//! Table 3's last column shows every audit passing wrong-language text.
//! Kizuki closes the gap: it detects the page's content language from the
//! *visible* text and re-evaluates accessibility text for language
//! consistency, then rescores the page.
//!
//! The crate is an extension framework, mirroring the paper's released
//! tool ("detailed documentation … how to extend it with custom
//! accessibility tests"): implement [`LanguageAwareCheck`] and register it
//! with [`Kizuki::with_check`]. The standard configuration ships the
//! paper's alt-text check ([`AltLanguageCheck`]).
//!
//! [`speak`] adds the user-experience lens the paper motivates with:
//! a screen-reader announcement simulator with per-language synthesiser
//! support profiles (VoiceOver-like: no Urdu/Amharic/Burmese, §1).

pub mod checks;
pub mod engine;
pub mod speak;

pub use checks::{AltLanguageCheck, CheckOutcome, LanguageAwareCheck, LinkLanguageCheck};
pub use engine::{page_language, Kizuki, KizukiReport};
pub use speak::{GapSpeech, ScreenReader, SpeechOutcome, SpeechStats, Utterance};
