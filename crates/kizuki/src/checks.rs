//! Language-aware checks.
//!
//! A [`LanguageAwareCheck`] inspects one element kind's accessibility texts
//! against the page's detected content language. The shipped checks:
//!
//! * [`AltLanguageCheck`] — the paper's §4 contribution: image alt texts
//!   must be written in the language of the page's visible content. A page
//!   fails when more than `mismatch_threshold` of its informative alt
//!   texts are language-inconsistent (pure-other-language text; mixed
//!   native+English counts as consistent, since it does contain the native
//!   description).
//! * [`LinkLanguageCheck`] — the same policy applied to link names,
//!   demonstrating the extension mechanism the paper's artifact documents.

use langcrux_crawl::PageExtract;
use langcrux_filter::is_informative;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Language;
use langcrux_langid::{classify_label, LabelLanguage};
use serde::{Deserialize, Serialize};

/// Result of one check on one page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// The check's id (e.g. `"kizuki/image-alt-language"`).
    pub id: String,
    /// Audit kind whose pass bit this check overrides.
    pub kind: ElementKind,
    pub passed: bool,
    /// Informative texts examined.
    pub examined: usize,
    /// Texts found language-inconsistent.
    pub mismatched: usize,
}

/// A pluggable language-aware audit extension.
pub trait LanguageAwareCheck: Send + Sync {
    /// Stable identifier, `kizuki/<name>`.
    fn id(&self) -> &'static str;
    /// The base audit whose outcome this check refines.
    fn kind(&self) -> ElementKind;
    /// Evaluate the page given its detected content language.
    fn evaluate(&self, page: &PageExtract, page_language: Language) -> CheckOutcome;
}

/// Is this label consistent with the page language? Mixed counts as
/// consistent; non-linguistic labels (digits, symbols) are skipped by the
/// caller.
fn is_consistent(label: LabelLanguage, page_is_english: bool) -> Option<bool> {
    match label {
        LabelLanguage::NonLinguistic => None,
        LabelLanguage::Native | LabelLanguage::Mixed => Some(true),
        LabelLanguage::English => Some(page_is_english),
        LabelLanguage::OtherLanguage => Some(false),
    }
}

/// Generic threshold-based language-consistency evaluation over one kind.
fn evaluate_kind(
    id: &'static str,
    kind: ElementKind,
    page: &PageExtract,
    page_language: Language,
    mismatch_threshold: f64,
) -> CheckOutcome {
    let page_is_english = page_language == Language::English;
    let mut examined = 0usize;
    let mut mismatched = 0usize;
    for element in page.of_kind(kind) {
        let Some(text) = element.content() else {
            continue;
        };
        // Uninformative labels are excluded, as in the paper's filtering
        // step: "button" in English on a Thai page is a quality problem,
        // not a translation problem.
        if !is_informative(text) {
            continue;
        }
        let label = if page_is_english {
            // On an English page every candidate-language script is a
            // mismatch; reuse the classifier with any non-Latin target to
            // detect pure-English labels.
            classify_label(text, Language::Thai)
        } else {
            classify_label(text, page_language)
        };
        match is_consistent(label, page_is_english) {
            Some(true) => examined += 1,
            Some(false) => {
                examined += 1;
                mismatched += 1;
            }
            None => {}
        }
    }
    let passed = if examined == 0 {
        // Vacuous pass: nothing to judge (mirrors Lighthouse's
        // not-applicable semantics).
        true
    } else {
        (mismatched as f64 / examined as f64) <= mismatch_threshold
    };
    CheckOutcome {
        id: id.to_string(),
        kind,
        passed,
        examined,
        mismatched,
    }
}

/// The paper's language-aware image-alt audit.
#[derive(Debug, Clone, Copy)]
pub struct AltLanguageCheck {
    /// Maximum tolerated share of mismatched informative alt texts.
    pub mismatch_threshold: f64,
}

impl Default for AltLanguageCheck {
    fn default() -> Self {
        // 40% of informative alt texts in the wrong language fails the
        // page — calibrated against the paper's Figure 6 drops (43%→15.8%
        // above 90; 5.6%→1.8% perfect) while tolerating loan-word labels.
        AltLanguageCheck {
            mismatch_threshold: 0.4,
        }
    }
}

impl LanguageAwareCheck for AltLanguageCheck {
    fn id(&self) -> &'static str {
        "kizuki/image-alt-language"
    }

    fn kind(&self) -> ElementKind {
        ElementKind::ImageAlt
    }

    fn evaluate(&self, page: &PageExtract, page_language: Language) -> CheckOutcome {
        evaluate_kind(
            self.id(),
            ElementKind::ImageAlt,
            page,
            page_language,
            self.mismatch_threshold,
        )
    }
}

/// A second check demonstrating extensibility: link names must match the
/// page language too.
#[derive(Debug, Clone, Copy)]
pub struct LinkLanguageCheck {
    pub mismatch_threshold: f64,
}

impl Default for LinkLanguageCheck {
    fn default() -> Self {
        LinkLanguageCheck {
            mismatch_threshold: 0.5,
        }
    }
}

impl LanguageAwareCheck for LinkLanguageCheck {
    fn id(&self) -> &'static str {
        "kizuki/link-name-language"
    }

    fn kind(&self) -> ElementKind {
        ElementKind::LinkName
    }

    fn evaluate(&self, page: &PageExtract, page_language: Language) -> CheckOutcome {
        evaluate_kind(
            self.id(),
            ElementKind::LinkName,
            page,
            page_language,
            self.mismatch_threshold,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_crawl::extract;
    use langcrux_html::parse;

    fn page(html: &str) -> PageExtract {
        extract(&parse(html))
    }

    #[test]
    fn all_native_alts_pass() {
        let p = page(
            r#"<img alt="ভোরের নদীর দৃশ্য" src=a>
               <img alt="বাজারে ব্যস্ত মানুষজন" src=b>"#,
        );
        let out = AltLanguageCheck::default().evaluate(&p, Language::Bangla);
        assert!(out.passed);
        assert_eq!(out.examined, 2);
        assert_eq!(out.mismatched, 0);
    }

    #[test]
    fn english_alts_on_native_page_fail() {
        let p = page(
            r#"<img alt="crowd gathered at the central square" src=a>
               <img alt="students planting trees in the garden" src=b>
               <img alt="ভোরের নদীর দৃশ্য" src=c>"#,
        );
        let out = AltLanguageCheck::default().evaluate(&p, Language::Bangla);
        assert!(!out.passed);
        assert_eq!(out.examined, 3);
        assert_eq!(out.mismatched, 2);
    }

    #[test]
    fn mixed_labels_count_as_consistent() {
        let p = page(r#"<img alt="ดาวน์โหลด app สำหรับ android phone" src=a>"#);
        let out = AltLanguageCheck::default().evaluate(&p, Language::Thai);
        assert!(out.passed);
        assert_eq!(out.mismatched, 0);
    }

    #[test]
    fn uninformative_labels_are_skipped() {
        let p = page(r#"<img alt="icon" src=a><img alt="img123" src=b>"#);
        let out = AltLanguageCheck::default().evaluate(&p, Language::Thai);
        assert_eq!(out.examined, 0);
        assert!(out.passed, "vacuous pass when nothing informative");
    }

    #[test]
    fn threshold_is_respected() {
        let p = page(
            r#"<img alt="village festival by the river bank" src=a>
               <img alt="ভোরের নদীর ধারে গ্রামের মেলা" src=b>"#,
        );
        // 1/2 mismatched: passes at threshold 0.5, fails at 0.4.
        let lax = AltLanguageCheck {
            mismatch_threshold: 0.5,
        };
        let strict = AltLanguageCheck {
            mismatch_threshold: 0.4,
        };
        assert!(lax.evaluate(&p, Language::Bangla).passed);
        assert!(!strict.evaluate(&p, Language::Bangla).passed);
    }

    #[test]
    fn english_pages_accept_english() {
        let p = page(r#"<img alt="crowd gathered at the central square" src=a>"#);
        let out = AltLanguageCheck::default().evaluate(&p, Language::English);
        assert!(out.passed);
        assert_eq!(out.mismatched, 0);
    }

    #[test]
    fn link_check_targets_links() {
        let p = page(r#"<a href="/x" aria-label="annual report archive">ΑΡΧΕΙΟ</a>"#);
        let out = LinkLanguageCheck::default().evaluate(&p, Language::Greek);
        assert_eq!(out.kind, ElementKind::LinkName);
        assert!(!out.passed);
    }
}
