//! The Kizuki engine: page-language detection, check execution, rescoring.

use crate::checks::{AltLanguageCheck, CheckOutcome, LanguageAwareCheck};
use langcrux_audit::{AuditReport, OTHER_AUDITS_WEIGHT};
use langcrux_crawl::PageExtract;
use langcrux_lang::a11y::ElementKind;
use langcrux_lang::Language;
use langcrux_langid::{detect, detect_with_histogram};
use serde::{Deserialize, Serialize};

/// Detect the page's content language from its visible text (falling back
/// to the declared `lang` attribute when the page has no usable text).
///
/// The paper's check compares alt text against "the language of the page's
/// visible content" — detection is content-first, declaration-second,
/// because §1 argues declared metadata is exactly what cannot be trusted.
/// Detection consumes the script histogram the crawler computed during
/// extraction, so rescoring a site does not re-scan its visible text.
pub fn page_language(extract: &PageExtract) -> Option<Language> {
    let detected = if extract.visible_hist.total == 0 && !extract.visible_text.is_empty() {
        // Hand-built PageExtract (e.g. via struct literal + Default)
        // without the carried histogram: fall back to a full scan rather
        // than silently treating the page as language-free.
        detect(&extract.visible_text)
    } else {
        // The crawler guarantees the carried histogram matches the text; a
        // stale histogram on a hand-built extract would misdetect.
        debug_assert_eq!(
            extract.visible_hist.total,
            extract.visible_text.chars().count(),
            "PageExtract.visible_hist out of sync with visible_text"
        );
        detect_with_histogram(&extract.visible_hist, &extract.visible_text)
    };
    if let Some(lang) = detected {
        return Some(lang);
    }
    let declared = extract.declared_lang.as_deref()?;
    let primary = declared.split(['-', '_']).next()?.to_ascii_lowercase();
    Language::CANDIDATE_POOL
        .iter()
        .copied()
        .chain(std::iter::once(Language::English))
        .find(|l| l.tag().split('-').next() == Some(primary.as_str()))
}

/// Kizuki's verdict for one page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KizukiReport {
    /// Language the checks evaluated against.
    pub page_language: Option<Language>,
    /// Score before language awareness (base Lighthouse).
    pub base_score: f64,
    /// Score after applying the language-aware overrides.
    pub new_score: f64,
    /// Per-check outcomes.
    pub checks: Vec<CheckOutcome>,
}

impl KizukiReport {
    /// Score delta introduced by language awareness (≤ 0).
    pub fn delta(&self) -> f64 {
        self.new_score - self.base_score
    }
}

/// The extension engine: a set of language-aware checks applied on top of
/// a base audit report.
pub struct Kizuki {
    checks: Vec<Box<dyn LanguageAwareCheck>>,
}

impl Default for Kizuki {
    fn default() -> Self {
        Kizuki::standard()
    }
}

impl Kizuki {
    /// The paper's configuration: the image-alt language check only.
    pub fn standard() -> Self {
        Kizuki {
            checks: vec![Box::new(AltLanguageCheck::default())],
        }
    }

    /// An engine with no checks (base scores pass through unchanged).
    pub fn empty() -> Self {
        Kizuki { checks: Vec::new() }
    }

    /// Register an additional check (builder style).
    pub fn with_check(mut self, check: Box<dyn LanguageAwareCheck>) -> Self {
        self.checks.push(check);
        self
    }

    /// Number of registered checks.
    pub fn check_count(&self) -> usize {
        self.checks.len()
    }

    /// Run all checks against a page and rescore the base report.
    ///
    /// A base audit that already fails stays failed; a passing audit is
    /// downgraded when any language-aware check targeting its kind fails.
    /// Pages whose language cannot be determined pass vacuously (nothing
    /// to compare against).
    pub fn evaluate(&self, extract: &PageExtract, base: &AuditReport) -> KizukiReport {
        let language = page_language(extract);
        let outcomes: Vec<CheckOutcome> = match language {
            Some(lang) => self
                .checks
                .iter()
                .map(|check| check.evaluate(extract, lang))
                .collect(),
            None => Vec::new(),
        };

        let mut earned = OTHER_AUDITS_WEIGHT;
        let mut total = OTHER_AUDITS_WEIGHT;
        for audit in &base.audits {
            total += audit.weight;
            let downgraded = outcomes.iter().any(|o| o.kind == audit.kind && !o.passed);
            if audit.passed && !downgraded {
                earned += audit.weight;
            }
        }
        KizukiReport {
            page_language: language,
            base_score: base.score,
            new_score: earned / total * 100.0,
            checks: outcomes,
        }
    }

    /// The Figure 6 inclusion rule: "we exclude websites that fail the
    /// original Lighthouse test due to missing alt attributes."
    pub fn figure6_eligible(base: &AuditReport) -> bool {
        base.passes(ElementKind::ImageAlt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use langcrux_audit::audit_page;
    use langcrux_crawl::extract;
    use langcrux_html::parse;

    fn page(html: &str) -> PageExtract {
        extract(&parse(html))
    }

    #[test]
    fn detects_page_language_from_content() {
        let p = page("<html lang=en><body><p>ข่าววันนี้ของประเทศไทยทั้งหมด</p></body></html>");
        // Content wins over the (wrong) declared lang.
        assert_eq!(page_language(&p), Some(Language::Thai));
    }

    #[test]
    fn falls_back_to_declared_lang() {
        let p = page(r#"<html lang="ko-KR"><body><p>123 456</p></body></html>"#);
        assert_eq!(page_language(&p), Some(Language::Korean));
        let p = page("<html><body><p>123</p></body></html>");
        assert_eq!(page_language(&p), None);
    }

    #[test]
    fn consistent_page_keeps_score() {
        let html = r#"<html><head><title>চিত্রশালা</title></head><body>
            <p>বাংলাদেশের নদী ও প্রকৃতির ছবি নিয়ে আমাদের আয়োজন চলছে।</p>
            <img src=a alt="নদীর ধারে সূর্যাস্তের দৃশ্য"></body></html>"#;
        let ex = page(html);
        let base = audit_page(&ex);
        let report = Kizuki::standard().evaluate(&ex, &base);
        assert_eq!(report.page_language, Some(Language::Bangla));
        assert_eq!(report.new_score, report.base_score);
        assert_eq!(report.delta(), 0.0);
    }

    #[test]
    fn mismatched_page_loses_score() {
        // The teachers.gov.bd pattern from §4: >98% Bangla visible content,
        // English alt text.
        let html = r#"<html><head><title>শিক্ষক বাতায়ন</title></head><body>
            <p>বাংলাদেশের শিক্ষকদের জন্য জাতীয় প্ল্যাটফর্মে স্বাগতম। এখানে পাঠ
            পরিকল্পনা, ডিজিটাল কনটেন্ট এবং প্রশিক্ষণ উপকরণ পাওয়া যায়।</p>
            <img src=a alt="teacher training workshop session">
            <img src=b alt="students in a classroom raising their hands">
            </body></html>"#;
        let ex = page(html);
        let base = audit_page(&ex);
        assert!(base.passes(ElementKind::ImageAlt), "base must pass");
        let report = Kizuki::standard().evaluate(&ex, &base);
        assert!(report.new_score < report.base_score);
        assert!(!report.checks[0].passed);
        assert_eq!(report.checks[0].mismatched, 2);
    }

    #[test]
    fn already_failing_audit_stays_failed() {
        let html = r#"<html><head><title>ページ</title></head><body>
            <p>日本語のテキストがここにあります。</p><img src=a></body></html>"#;
        let ex = page(html);
        let base = audit_page(&ex);
        assert!(!base.passes(ElementKind::ImageAlt));
        let report = Kizuki::standard().evaluate(&ex, &base);
        // No double-penalty: score equals base (the failing audit was
        // already priced in; Kizuki has nothing informative to examine).
        assert_eq!(report.new_score, report.base_score);
    }

    #[test]
    fn empty_engine_passes_through() {
        let html = r#"<head><title>t</title></head><img src=a alt="photo of the harbour">"#;
        let ex = page(html);
        let base = audit_page(&ex);
        let report = Kizuki::empty().evaluate(&ex, &base);
        assert_eq!(report.new_score, report.base_score);
        assert!(report.checks.is_empty());
    }

    #[test]
    fn extensibility_with_link_check() {
        use crate::checks::LinkLanguageCheck;
        let html = r#"<html><head><title>Πύλη</title></head><body>
            <p>Καλώς ήρθατε στην εθνική πύλη ενημέρωσης και εξυπηρέτησης πολιτών.</p>
            <a href="/a" aria-label="read the annual financial report">έκθεση</a>
            <img src=a alt="άποψη του λιμανιού το βράδυ">
            </body></html>"#;
        let ex = page(html);
        let base = audit_page(&ex);
        let standard = Kizuki::standard().evaluate(&ex, &base);
        assert_eq!(standard.new_score, standard.base_score, "alt is consistent");
        let extended = Kizuki::standard()
            .with_check(Box::new(LinkLanguageCheck::default()))
            .evaluate(&ex, &base);
        assert!(extended.new_score < extended.base_score, "link check fires");
        assert_eq!(extended.check_count_helper(), 2);
    }

    impl KizukiReport {
        fn check_count_helper(&self) -> usize {
            self.checks.len()
        }
    }

    #[test]
    fn figure6_eligibility() {
        let pass = page(r#"<head><title>t</title></head><img src=a alt="">"#);
        let fail = page(r#"<head><title>t</title></head><img src=a>"#);
        assert!(Kizuki::figure6_eligible(&audit_page(&pass)));
        assert!(!Kizuki::figure6_eligible(&audit_page(&fail)));
    }
}
