//! The discard taxonomy of Appendix H.
//!
//! Eleven categories of uninformative accessibility text. The paper's
//! definitions (rationale + examples) are quoted in each variant's doc
//! comment; `langcrux-filter::rules` implements the matching heuristics and
//! `langcrux-webgen` plants instances of each at calibrated rates.

use serde::{Deserialize, Serialize};

/// Why an accessibility text was discarded as uninformative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DiscardCategory {
    /// "Emoji are discarded because screen readers often fail to interpret
    /// them reliably or skip them altogether."
    Emoji,
    /// "Texts below a language-specific character threshold … for CJK the
    /// limit is 1 character; for others, it is 3." Examples: "go", "图".
    TooShort,
    /// "Strings that appear to be image or asset file names."
    /// Example: "banner_img123.jpg".
    FileName,
    /// "URLs or file system paths are excluded."
    /// Example: `https://example.com/image.png`, `/assets/img/logo.svg`.
    UrlOrFilePath,
    /// "Common UI actions (e.g., 'close', 'search') in multiple languages
    /// are filtered if used alone without context."
    GenericAction,
    /// "Generic placeholders for images or UI components, such as 'image',
    /// 'icon', or 'button' … include translations in various languages."
    Placeholder,
    /// "Developer-generated IDs or component labels."
    /// Example: "btn-submit", "nav_menu".
    DevLabel,
    /// "Common patterns like 'image 1', 'button 2'."
    /// Example: "slide 3", "figure 5".
    LabelNumberPattern,
    /// "For non-CJK scripts, single-word entries are filtered unless they
    /// appear to carry descriptive meaning." Example: "photo", "submit".
    SingleWord,
    /// "Strings with alphanumeric IDs are typically programmatic."
    /// Example: "img123", "icon2".
    MixedAlnum,
    /// "Numeric phrases like '3 of 5' are common in pagination."
    /// Example: "2 of 10", "1 of 3".
    OrdinalPhrase,
}

impl DiscardCategory {
    /// All categories, in the fixed priority order used by the classifier
    /// (first match wins; see `rules` module docs for the rationale).
    pub const ALL: [DiscardCategory; 11] = [
        DiscardCategory::Emoji,
        DiscardCategory::UrlOrFilePath,
        DiscardCategory::FileName,
        DiscardCategory::OrdinalPhrase,
        DiscardCategory::LabelNumberPattern,
        DiscardCategory::MixedAlnum,
        DiscardCategory::DevLabel,
        DiscardCategory::TooShort,
        DiscardCategory::GenericAction,
        DiscardCategory::Placeholder,
        DiscardCategory::SingleWord,
    ];

    /// Display label matching the paper's Figure 3/9 legends.
    pub fn label(self) -> &'static str {
        match self {
            DiscardCategory::Emoji => "Emoji",
            DiscardCategory::TooShort => "Too Short",
            DiscardCategory::FileName => "File Name",
            DiscardCategory::UrlOrFilePath => "URL or File Path",
            DiscardCategory::GenericAction => "Generic Action",
            DiscardCategory::Placeholder => "Placeholder",
            DiscardCategory::DevLabel => "Dev Label",
            DiscardCategory::LabelNumberPattern => "Label Number Pattern",
            DiscardCategory::SingleWord => "Single Word",
            DiscardCategory::MixedAlnum => "Mixed Alnum",
            DiscardCategory::OrdinalPhrase => "Ordinal Phrase",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_categories() {
        assert_eq!(DiscardCategory::ALL.len(), 11);
        let mut sorted = DiscardCategory::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 11);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(DiscardCategory::UrlOrFilePath.label(), "URL or File Path");
        assert_eq!(
            DiscardCategory::LabelNumberPattern.label(),
            "Label Number Pattern"
        );
    }
}
