//! Verdict accumulation.
//!
//! Counts classify() outcomes so the analysis layer can render Figure 3
//! (by country) and Figure 9 (by element) without re-walking raw texts.

use crate::category::DiscardCategory;
use crate::rules::classify;
use serde::{Deserialize, Serialize};

/// Counts of filter verdicts over a set of accessibility texts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Texts retained as informative.
    pub useful: u64,
    /// Discarded texts, indexed by `DiscardCategory::ALL` order.
    discarded: [u64; 11],
}

impl FilterStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify one text and record the verdict. Returns the category when
    /// the text was discarded.
    pub fn record(&mut self, text: &str) -> Option<DiscardCategory> {
        match classify(text) {
            Some(cat) => {
                self.discarded[Self::index(cat)] += 1;
                Some(cat)
            }
            None => {
                self.useful += 1;
                None
            }
        }
    }

    fn index(cat: DiscardCategory) -> usize {
        DiscardCategory::ALL
            .iter()
            .position(|&c| c == cat)
            .expect("category in ALL")
    }

    /// Count for one category.
    pub fn count(&self, cat: DiscardCategory) -> u64 {
        self.discarded[Self::index(cat)]
    }

    /// Total texts seen.
    pub fn total(&self) -> u64 {
        self.useful + self.discarded.iter().sum::<u64>()
    }

    /// Total discarded texts.
    pub fn total_discarded(&self) -> u64 {
        self.discarded.iter().sum()
    }

    /// Share (percent of all texts) discarded for a category.
    pub fn pct(&self, cat: DiscardCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(cat) as f64 * 100.0 / total as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.useful += other.useful;
        for i in 0..self.discarded.len() {
            self.discarded[i] += other.discarded[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_percentages() {
        let mut s = FilterStats::new();
        assert_eq!(s.record("icon"), Some(DiscardCategory::Placeholder));
        assert_eq!(s.record("crowd at the market"), None);
        assert_eq!(s.record("img123"), Some(DiscardCategory::MixedAlnum));
        assert_eq!(s.record("photo"), Some(DiscardCategory::SingleWord));
        assert_eq!(s.total(), 4);
        assert_eq!(s.useful, 1);
        assert_eq!(s.total_discarded(), 3);
        assert!((s.pct(DiscardCategory::Placeholder) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FilterStats::new();
        a.record("icon");
        let mut b = FilterStats::new();
        b.record("menu");
        b.record("a descriptive sentence here");
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(DiscardCategory::Placeholder), 1);
        assert_eq!(a.count(DiscardCategory::GenericAction), 1);
        assert_eq!(a.useful, 1);
    }

    #[test]
    fn empty_stats() {
        let s = FilterStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.pct(DiscardCategory::Emoji), 0.0);
    }
}
