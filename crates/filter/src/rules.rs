//! The filtering heuristics.
//!
//! [`classify`] maps an accessibility text to `Some(DiscardCategory)` when
//! it is uninformative, or `None` when it should be retained for the
//! language analysis. Rules are checked in a fixed priority order (the
//! order of [`DiscardCategory::ALL`]): structural patterns first (URLs,
//! file names, numeric patterns), then the too-short cut, then dictionary
//! categories, then the single-word fallback — so that `"btn-submit.png"`
//! is a FileName, not a DevLabel; `"go"` is TooShort (the paper's example)
//! even though it is also a generic action; and `"search"` is a
//! GenericAction, not a SingleWord.
//!
//! Two thresholds follow the paper verbatim: CJK texts of 1 character are
//! too short, other scripts need ≥ 3 characters. The paper's "single-word
//! entries are filtered unless they appear to carry descriptive meaning"
//! is operationalised with a length heuristic (documented at
//! [`SINGLE_WORD_KEEP_LEN`]) — long single tokens in scripts without word
//! spacing (Thai, Myanmar) or long compound words are kept.

use crate::category::DiscardCategory;
use langcrux_lang::dict;
use langcrux_lang::script::{script_of, Script};

/// Single whitespace-free tokens shorter than this are SingleWord-discarded
/// in space-separated scripts; at or above it they are assumed to carry
/// descriptive meaning (compound words, proper names).
pub const SINGLE_WORD_KEEP_LEN: usize = 12;

/// Thai/Myanmar write without inter-word spaces; a "single token" there can
/// be a whole phrase. Tokens at or above this length are kept.
pub const CONTINUA_KEEP_LEN: usize = 9;

/// Character-level facts gathered in ONE pass over the trimmed text; every
/// rule below reads these instead of re-walking the string. Before this
/// fusion, a typical informative label was scanned by `split_whitespace`
/// six times and by `script_of` up to three times per classification.
struct TextFacts {
    /// Whitespace-delimited token count.
    tokens: usize,
    /// Chars excluding whitespace.
    nonws_len: usize,
    /// Total chars.
    len: usize,
    has_alpha: bool,
    has_digit: bool,
    /// Every char is alphanumeric (no whitespace present implied).
    all_alnum: bool,
    /// Letters in CJK scripts (Han, kana, Hangul).
    letters_cjk: usize,
    /// Letters in scriptio-continua non-CJK scripts (Thai, Myanmar).
    letters_continua: usize,
    /// Letters in any other distinguishing script.
    letters_other: usize,
    /// Saw at least one emoji/pictograph char.
    saw_emoji: bool,
    /// Every non-whitespace char is an emoji or ASCII punctuation.
    emoji_punct_only: bool,
}

impl TextFacts {
    fn of(trimmed: &str) -> TextFacts {
        let mut facts = TextFacts {
            tokens: 0,
            nonws_len: 0,
            len: 0,
            has_alpha: false,
            has_digit: false,
            all_alnum: true,
            letters_cjk: 0,
            letters_continua: 0,
            letters_other: 0,
            saw_emoji: false,
            emoji_punct_only: true,
        };
        let mut in_token = false;
        for c in trimmed.chars() {
            facts.len += 1;
            if c.is_whitespace() {
                in_token = false;
                facts.all_alnum = false;
                continue;
            }
            if !in_token {
                facts.tokens += 1;
                in_token = true;
            }
            facts.nonws_len += 1;
            facts.has_alpha |= c.is_alphabetic();
            facts.has_digit |= c.is_ascii_digit();
            facts.all_alnum &= c.is_alphanumeric();
            if is_emoji_char(c) {
                facts.saw_emoji = true;
            } else if !c.is_ascii_punctuation() {
                facts.emoji_punct_only = false;
            }
            match script_of(c) {
                s if s.is_cjk() => facts.letters_cjk += 1,
                Script::Thai | Script::Myanmar => facts.letters_continua += 1,
                Script::Common | Script::Unknown => {}
                _ => facts.letters_other += 1,
            }
        }
        facts
    }

    /// Letters are CJK-dominant (Han/kana/Hangul).
    fn cjk_dominant(&self) -> bool {
        self.letters_cjk > 0 && self.letters_cjk >= self.letters_continua + self.letters_other
    }

    /// Letters are in a scriptio-continua non-CJK script (Thai, Myanmar).
    fn continua_non_cjk(&self) -> bool {
        self.letters_continua > 0 && self.letters_continua >= self.letters_cjk + self.letters_other
    }
}

/// Classify an accessibility text. `None` means informative/useful.
pub fn classify(text: &str) -> Option<DiscardCategory> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        // Empty is handled upstream as "empty attribute"; defensively map
        // to TooShort here.
        return Some(DiscardCategory::TooShort);
    }
    let facts = TextFacts::of(trimmed);
    // Single tokens get one shared lowercase copy for the URL/file rules.
    let lowered_token = if facts.tokens == 1 {
        Some(trimmed.to_ascii_lowercase())
    } else {
        None
    };
    for category in DiscardCategory::ALL {
        let hit = match category {
            DiscardCategory::Emoji => facts.saw_emoji && facts.emoji_punct_only,
            DiscardCategory::UrlOrFilePath => lowered_token.as_deref().is_some_and(is_url_or_path),
            DiscardCategory::FileName => lowered_token.as_deref().is_some_and(is_file_name),
            DiscardCategory::OrdinalPhrase => facts.tokens <= 3 && is_ordinal_phrase(trimmed),
            DiscardCategory::LabelNumberPattern => facts.tokens == 2 && is_label_number(trimmed),
            DiscardCategory::MixedAlnum => {
                facts.tokens == 1 && facts.has_alpha && facts.has_digit && facts.all_alnum
            }
            DiscardCategory::DevLabel => facts.tokens == 1 && is_dev_label(trimmed),
            DiscardCategory::GenericAction => dict::generic_action(trimmed).is_some(),
            DiscardCategory::Placeholder => dict::placeholder(trimmed).is_some(),
            DiscardCategory::TooShort => {
                if facts.cjk_dominant() {
                    facts.nonws_len <= 1
                } else {
                    facts.nonws_len < 3
                }
            }
            DiscardCategory::SingleWord => {
                facts.tokens == 1
                    && facts.has_alpha
                    && !facts.cjk_dominant()
                    && if facts.continua_non_cjk() {
                        facts.len < CONTINUA_KEEP_LEN
                    } else {
                        facts.len < SINGLE_WORD_KEEP_LEN
                    }
            }
        };
        if hit {
            return Some(category);
        }
    }
    None
}

/// Whether the text survives filtering (is informative).
pub fn is_informative(text: &str) -> bool {
    classify(text).is_none()
}

fn is_emoji_char(c: char) -> bool {
    let cp = c as u32;
    matches!(cp,
        0x1F000..=0x1FAFF   // emoji, symbols, pictographs
        | 0x2600..=0x27BF   // misc symbols + dingbats
        | 0x2B00..=0x2BFF   // misc symbols and arrows
        | 0x2190..=0x21FF   // arrows
        | 0x25A0..=0x25FF   // geometric shapes
        | 0xFE0E..=0xFE0F   // variation selectors
        | 0x200D            // zero-width joiner
    )
}

/// URL/path test over an already-lowercased single token.
fn is_url_or_path(lower: &str) -> bool {
    if lower.contains("://") || lower.starts_with("www.") {
        return true;
    }
    // Absolute file-system-ish path with at least two segments.
    lower.starts_with('/') && lower[1..].contains('/')
}

const ASSET_EXTENSIONS: &[&str] = &[
    ".jpg", ".jpeg", ".png", ".gif", ".svg", ".webp", ".ico", ".bmp", ".avif", ".pdf", ".mp4",
    ".webm", ".css", ".js",
];

/// Asset-file-name test over an already-lowercased single token.
fn is_file_name(lower: &str) -> bool {
    ASSET_EXTENSIONS.iter().any(|ext| lower.ends_with(ext)) && lower.len() > 4
}

fn is_ordinal_phrase(text: &str) -> bool {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    // "3 of 5", "3 / 5", "3/5"
    match tokens.as_slice() {
        [a, mid, b] => {
            is_integer(a) && is_integer(b) && (mid.eq_ignore_ascii_case("of") || *mid == "/")
        }
        [single] => {
            if let Some((a, b)) = single.split_once('/') {
                is_integer(a) && is_integer(b)
            } else {
                false
            }
        }
        _ => false,
    }
}

fn is_integer(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_digit())
}

fn is_label_number(text: &str) -> bool {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        [word, num] => {
            is_integer(num) && !word.is_empty() && word.chars().all(|c| c.is_alphabetic())
        }
        _ => false,
    }
}

/// Dev-identifier test over a single token (caller guarantees one token).
fn is_dev_label(text: &str) -> bool {
    if text.len() < 3 {
        return false;
    }
    let has_sep = text.contains('-') || text.contains('_');
    if has_sep {
        // kebab-case / snake_case identifiers: all-ASCII alnum segments.
        let segments: Vec<&str> = text.split(['-', '_']).collect();
        return segments.len() >= 2
            && segments
                .iter()
                .all(|s| !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric()));
    }
    // camelCase: lowercase start, internal uppercase, ASCII only.
    let ascii = text.chars().all(|c| c.is_ascii_alphanumeric());
    if !ascii {
        return false;
    }
    let starts_lower = text.chars().next().is_some_and(|c| c.is_ascii_lowercase());
    let internal_upper = text.chars().skip(1).any(|c| c.is_ascii_uppercase());
    starts_lower && internal_upper
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(text: &str) -> Option<DiscardCategory> {
        classify(text)
    }

    /// The pre-fusion implementation, kept as the oracle: every rule
    /// re-derives its own facts from the raw text. `classify` must agree
    /// with this on any input.
    mod reference {
        use super::super::*;

        fn is_emoji_only(text: &str) -> bool {
            let mut saw_emoji = false;
            for c in text.chars() {
                if c.is_whitespace() {
                    continue;
                }
                if is_emoji_char(c) {
                    saw_emoji = true;
                } else if !c.is_ascii_punctuation() {
                    return false;
                }
            }
            saw_emoji
        }

        fn one_token(text: &str) -> bool {
            text.split_whitespace().count() == 1
        }

        fn is_mixed_alnum(text: &str) -> bool {
            one_token(text)
                && text.chars().any(|c| c.is_alphabetic())
                && text.chars().any(|c| c.is_ascii_digit())
                && text.chars().all(|c| c.is_alphanumeric())
        }

        fn is_cjk_dominant(text: &str) -> bool {
            let mut cjk = 0usize;
            let mut other = 0usize;
            for c in text.chars() {
                match script_of(c) {
                    s if s.is_cjk() => cjk += 1,
                    Script::Common | Script::Unknown => {}
                    _ => other += 1,
                }
            }
            cjk > 0 && cjk >= other
        }

        fn is_continua_non_cjk(text: &str) -> bool {
            let mut hits = 0usize;
            let mut other = 0usize;
            for c in text.chars() {
                match script_of(c) {
                    Script::Thai | Script::Myanmar => hits += 1,
                    Script::Common | Script::Unknown => {}
                    _ => other += 1,
                }
            }
            hits > 0 && hits >= other
        }

        fn is_too_short(text: &str) -> bool {
            let len = text.chars().filter(|c| !c.is_whitespace()).count();
            if is_cjk_dominant(text) {
                len <= 1
            } else {
                len < 3
            }
        }

        fn is_single_word(text: &str) -> bool {
            if !one_token(text) || !text.chars().any(|c| c.is_alphabetic()) {
                return false;
            }
            let len = text.chars().count();
            if is_cjk_dominant(text) {
                return false;
            }
            if is_continua_non_cjk(text) {
                return len < CONTINUA_KEEP_LEN;
            }
            len < SINGLE_WORD_KEEP_LEN
        }

        pub fn classify(text: &str) -> Option<DiscardCategory> {
            let trimmed = text.trim();
            if trimmed.is_empty() {
                return Some(DiscardCategory::TooShort);
            }
            let lower = trimmed.to_ascii_lowercase();
            for category in DiscardCategory::ALL {
                let hit = match category {
                    DiscardCategory::Emoji => is_emoji_only(trimmed),
                    DiscardCategory::UrlOrFilePath => one_token(trimmed) && is_url_or_path(&lower),
                    DiscardCategory::FileName => one_token(trimmed) && is_file_name(&lower),
                    DiscardCategory::OrdinalPhrase => is_ordinal_phrase(trimmed),
                    DiscardCategory::LabelNumberPattern => is_label_number(trimmed),
                    DiscardCategory::MixedAlnum => is_mixed_alnum(trimmed),
                    DiscardCategory::DevLabel => one_token(trimmed) && is_dev_label(trimmed),
                    DiscardCategory::GenericAction => dict::generic_action(trimmed).is_some(),
                    DiscardCategory::Placeholder => dict::placeholder(trimmed).is_some(),
                    DiscardCategory::TooShort => is_too_short(trimmed),
                    DiscardCategory::SingleWord => is_single_word(trimmed),
                };
                if hit {
                    return Some(category);
                }
            }
            None
        }
    }

    #[test]
    fn fused_classify_matches_reference() {
        let probes = [
            "",
            "   ",
            "go",
            "🙂",
            "🙂!!",
            "图",
            "图片",
            "风景",
            "photo",
            "Budget",
            "banner_img123.jpg",
            "https://example.com/image.png",
            "/assets/img/logo.svg",
            "www.example.com",
            "search",
            "닫기",
            "icon",
            "btn-submit",
            "nav_menu",
            "navbarToggle",
            "slide 3",
            "figure 5",
            "2 of 10",
            "3/5",
            "10 / 20 / 30",
            "img123",
            "icon2",
            "a1b2c3",
            "1234",
            "carousel-1",
            "chrysanthemum",
            "Thiruvananthapuram",
            "ตลาดน้ำดำเนินสะดวก",
            "รูป",
            "แผนที่",
            "歴史博物館の入口",
            "경복궁의 가을 풍경",
            "finance minister presents annual budget",
            "শিক্ষার্থীরা গাছ লাগাচ্ছে",
            "नदी के किनारे मेला",
            "see https://example.com for details",
            "2 of the best",
            "of 5",
            " ok ",
            "x",
            "read more",
            "click here",
            "التاريخ القديم",
            "ছবি",
            "→",
            "• • •",
            "מפה",
            "ไอคอน",
        ];
        for probe in probes {
            assert_eq!(classify(probe), reference::classify(probe), "{probe:?}");
        }
    }

    #[test]
    fn paper_examples_discard() {
        // Appendix H examples, one per category.
        assert_eq!(cat("🙂"), Some(DiscardCategory::Emoji));
        assert_eq!(cat("go"), Some(DiscardCategory::TooShort));
        assert_eq!(cat("图"), Some(DiscardCategory::TooShort));
        assert_eq!(cat("banner_img123.jpg"), Some(DiscardCategory::FileName));
        assert_eq!(
            cat("https://example.com/image.png"),
            Some(DiscardCategory::UrlOrFilePath)
        );
        assert_eq!(
            cat("/assets/img/logo.svg"),
            Some(DiscardCategory::UrlOrFilePath)
        );
        assert_eq!(cat("search"), Some(DiscardCategory::GenericAction));
        assert_eq!(cat("닫기"), Some(DiscardCategory::GenericAction));
        assert_eq!(cat("icon"), Some(DiscardCategory::Placeholder));
        assert_eq!(cat("图像"), Some(DiscardCategory::Placeholder));
        assert_eq!(cat("btn-submit"), Some(DiscardCategory::DevLabel));
        assert_eq!(cat("nav_menu"), Some(DiscardCategory::DevLabel));
        assert_eq!(cat("slide 3"), Some(DiscardCategory::LabelNumberPattern));
        assert_eq!(cat("figure 5"), Some(DiscardCategory::LabelNumberPattern));
        assert_eq!(cat("photo"), Some(DiscardCategory::SingleWord));
        assert_eq!(cat("img123"), Some(DiscardCategory::MixedAlnum));
        assert_eq!(cat("icon2"), Some(DiscardCategory::MixedAlnum));
        assert_eq!(cat("2 of 10"), Some(DiscardCategory::OrdinalPhrase));
        assert_eq!(cat("1 of 3"), Some(DiscardCategory::OrdinalPhrase));
        assert_eq!(cat("3/5"), Some(DiscardCategory::OrdinalPhrase));
    }

    #[test]
    fn informative_text_survives() {
        assert_eq!(cat("finance minister presents annual budget"), None);
        assert_eq!(cat("students planting trees in the school garden"), None);
        assert_eq!(cat("শিক্ষার্থীরা গাছ লাগাচ্ছে"), None);
        assert_eq!(cat("नदी के किनारे मेला"), None);
        // CJK multi-char labels are informative (single-word rule exempt).
        assert_eq!(cat("歴史博物館の入口"), None);
        assert_eq!(cat("경복궁의 가을 풍경"), None);
    }

    #[test]
    fn priority_file_name_over_dev_label() {
        // Contains '-' AND '.png' → FileName wins by priority.
        assert_eq!(cat("btn-close.png"), Some(DiscardCategory::FileName));
    }

    #[test]
    fn priority_action_over_single_word() {
        assert_eq!(cat("submit"), Some(DiscardCategory::GenericAction));
        assert_eq!(cat("poodle"), Some(DiscardCategory::SingleWord));
    }

    #[test]
    fn camel_case_dev_labels() {
        assert_eq!(cat("navbarToggle"), Some(DiscardCategory::DevLabel));
        assert_eq!(cat("mainHeaderLogo"), Some(DiscardCategory::DevLabel));
        // Plain capitalised words are not dev labels (they're single words).
        assert_eq!(cat("Budget"), Some(DiscardCategory::SingleWord));
    }

    #[test]
    fn long_single_tokens_are_kept() {
        // ≥ 12 chars: assumed descriptive (compound/proper noun).
        assert_eq!(cat("chrysanthemum"), None);
        assert_eq!(cat("Thiruvananthapuram"), None);
        // Thai token of ≥ 9 chars is a phrase, keep.
        assert_eq!(cat("ตลาดน้ำดำเนินสะดวก"), None);
        // Short Thai token (3 chars: past the too-short bar, below the
        // continua keep length): single word.
        assert_eq!(cat("รูป"), Some(DiscardCategory::SingleWord));
    }

    #[test]
    fn thai_short_single_word() {
        // 4 Thai chars: above too-short (≥3), below continua keep (<9).
        assert_eq!(cat("แผนที่"), Some(DiscardCategory::SingleWord));
    }

    #[test]
    fn cjk_two_chars_not_too_short() {
        // 2 CJK chars pass the 1-char CJK limit; 图片 is a Placeholder, 风景 is useful.
        assert_eq!(cat("图片"), Some(DiscardCategory::Placeholder));
        assert_eq!(cat("风景"), None);
    }

    #[test]
    fn whitespace_and_empty() {
        assert_eq!(cat(""), Some(DiscardCategory::TooShort));
        assert_eq!(cat("   "), Some(DiscardCategory::TooShort));
        assert_eq!(cat(" ok "), Some(DiscardCategory::TooShort));
    }

    #[test]
    fn mixed_alnum_edge_cases() {
        assert_eq!(cat("a1b2c3"), Some(DiscardCategory::MixedAlnum));
        // Pure digits are not mixed-alnum; "12" is too short, "1234" is
        // non-linguistic but passes length — it falls through to None here
        // (language classification upstream buckets it as NonLinguistic).
        assert_eq!(cat("1234"), None);
        // Hyphenated alnum is DevLabel, not MixedAlnum.
        assert_eq!(cat("carousel-1"), Some(DiscardCategory::DevLabel));
    }

    #[test]
    fn url_detection_variants() {
        assert_eq!(cat("www.example.com"), Some(DiscardCategory::UrlOrFilePath));
        assert_eq!(
            cat("http://a.b/c?d=e"),
            Some(DiscardCategory::UrlOrFilePath)
        );
        // Multi-word strings containing a URL are informative enough.
        assert_eq!(cat("see https://example.com for details"), None);
    }

    #[test]
    fn ordinal_not_overtriggered() {
        assert_eq!(cat("2 of the best"), None);
        // "of 5" is word+number -> LabelNumberPattern, not ordinal.
        assert_eq!(cat("of 5"), Some(DiscardCategory::LabelNumberPattern));
        // "10 / 20 / 30" is not a simple ordinal.
        assert_eq!(cat("10 / 20 / 30"), None);
    }

    #[test]
    fn is_informative_helper() {
        assert!(is_informative("crowd at the festival"));
        assert!(!is_informative("icon"));
    }
}
