//! # langcrux-filter
//!
//! The uninformative-accessibility-text filter (paper §3, Appendix H).
//!
//! "The presence of an `alt` or `aria-label` attribute does not guarantee
//! usefulness. Labels such as *button*, *file1*, or *image1* may satisfy
//! automated checks but provide no semantic value to screen reader users."
//! This crate classifies accessibility texts into eleven discard categories
//! or retains them as informative; Figures 3 and 9 of the paper are
//! distributions over these verdicts.
//!
//! * [`category::DiscardCategory`] — the taxonomy, with the paper's
//!   definitions quoted.
//! * [`rules::classify`] — priority-ordered matching.
//! * [`stats::FilterStats`] — verdict accumulation for the analyses.

pub mod category;
pub mod rules;
pub mod stats;

pub use category::DiscardCategory;
pub use rules::{classify, is_informative, CONTINUA_KEEP_LEN, SINGLE_WORD_KEEP_LEN};
pub use stats::FilterStats;
